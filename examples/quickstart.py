"""Quickstart: provision a hadoop virtual cluster and run Wordcount.

This walks the paper's Fig. 1 execution flow end to end:

1-3. provision a 16-node hadoop virtual cluster (1 namenode + 15 datanodes)
     on one physical machine ("normal" layout);
4.   upload a text corpus to HDFS;
5-7. run the Wordcount MapReduce job;
8.   collect the output.

Run:  python examples/quickstart.py
"""

from repro import ClusterSpec, PlatformConfig, VHadoopPlatform
from repro.datasets.text import generate_corpus
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)


def main() -> None:
    # The simulated testbed: two Dell-T710-like hosts plus an NFS server.
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=42))

    # Steps 1-3: a 16-node cluster on one physical machine.
    cluster = platform.provision_cluster("quickstart", ClusterSpec.single_host(16))
    print(f"provisioned {cluster!r}")

    # Step 4: generate ~64 MB of Zipfian text and upload it.  We simulate
    # the full 64 MB while materializing a 1/100 sample (volume scaling).
    scale = 100
    lines = generate_corpus(64_000_000 // scale,
                            rng=platform.datacenter.rng.stream("corpus"))
    platform.upload(cluster, "/corpus", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(scale), timed=False)
    print(f"uploaded {len(lines)} lines "
          f"({cluster.namenode.get_file('/corpus').size / 1e6:.0f} MB "
          f"simulated)")

    # Steps 5-7: run Wordcount (paper semantics: no combiner).
    job = wordcount_job("/corpus", "/counts", n_reduces=4,
                        volume_scale=scale)
    report = platform.run_job(cluster, job)

    # Step 8: collect and inspect.
    counts = dict(platform.collect(cluster, report))
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:8]

    print(f"\njob finished in {report.elapsed:.1f} simulated seconds "
          f"({report.n_maps} maps, {report.n_reduces} reduces)")
    print(f"map phase {report.map_phase_s:.1f} s, "
          f"reduce phase {report.reduce_phase_s:.1f} s, "
          f"shuffle {report.shuffle_bytes / 1e6:.0f} MB")
    print(f"map locality: {report.locality_fractions()}")
    print(f"\ndistinct words: {len(counts)}; most frequent:")
    for word, count in top:
        print(f"  {word:>12s}  {count}")


if __name__ == "__main__":
    main()
