"""Cluster observatory: detect a gray failure, let alerts drive the tuner.

A 16-node cluster runs a Wordcount while one tracker's virtual disk
gray-fails (capped far below its fair share).  The observatory's
detectors flag the sick disk and the attempts crawling on it
(stragglers) — all online, from legitimately observable signals.
Between jobs the alert-driven tuner rules consume those alerts and
switch speculative execution on.  The same job then reruns *against the
still-sick disk* and finishes early because backup attempts outrun the
crawling ones.

Writes the observatory's self-contained HTML report to
``observatory_report.html``.

Run:  python examples/observatory_demo.py
"""

from repro import ClusterSpec, PlatformConfig, VHadoopPlatform
from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.datasets.text import generate_corpus
from repro.tuner import (MapReduceTuner, MigrateOffHotHostRule,
                         SpeculateOnStragglersRule)
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

SCALE = 100
SIZE_MB = 512          # 8 input blocks -> 8 map tasks
SEED = 11


def main() -> None:
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=SEED))
    cluster = platform.provision_cluster("obs-demo", ClusterSpec.single_host(16))
    lines = generate_corpus(SIZE_MB * 1_000_000 // SCALE,
                            rng=platform.datacenter.rng.stream("corpus"))
    platform.upload(cluster, "/wc/in", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(SCALE), timed=False)

    obs = cluster.observatory(interval=2.0).start()

    # Gray-fail the disk under the input's first block: the map reading
    # it crawls while seven siblings finish at full speed.
    f = cluster.namenode.get_file("/wc/in")
    victim = cluster.namenode.replicas[f.blocks[0].block_id][0].vm.name
    plan = FaultPlan(name="gray-disk")
    plan.add(Fault(at=platform.sim.now + 4.0, kind="disk.slow",
                   target=victim, factor=32.0))    # never heals
    print(f"injecting a permanent 32x disk slowdown on {victim}")

    runner = platform.runner(cluster)
    job1 = wordcount_job("/wc/in", "/wc/out1", n_reduces=4,
                         volume_scale=SCALE)
    job1.name = "wordcount-before"
    done = runner.submit(job1)
    ChaosInjector(cluster, plan).start()
    platform.sim.run_until(done)
    before = done.value
    print(f"job 1 (no speculation): {before.elapsed:.1f} s")
    for alert in obs.alerts():
        print(f"  alert: {alert.describe()}")

    # The alert-driven tuner rules: straggler alerts -> speculation on,
    # hot-host alerts -> migrate the busiest resident away.
    tuner = MapReduceTuner(cluster, rules=[
        SpeculateOnStragglersRule(obs), MigrateOffHotHostRule(obs)])
    applied = []
    while True:
        recommendation = tuner.step()
        if recommendation is None:
            break
        applied.append(recommendation)
        print(f"tuner applied [{recommendation.rule}]: "
              f"{recommendation.reason}")
    assert applied, "expected the alerts to drive >= 1 recommendation"

    job2 = wordcount_job("/wc/in", "/wc/out2", n_reduces=4,
                         volume_scale=SCALE)
    job2.name = "wordcount-after"
    after = platform.run_job(cluster, job2)
    obs.stop()
    print(f"job 2 (speculation on, disk still sick): "
          f"{after.elapsed:.1f} s ({before.elapsed / after.elapsed:.2f}x)")
    print(f"speculated map attempts: {after.speculated_maps}")

    report = obs.report(job=job1.name)
    print()
    print(report.describe())
    path = report.write_html("observatory_report.html")
    print(f"\nHTML report: {path}")


if __name__ == "__main__":
    main()
