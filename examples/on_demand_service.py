"""On-demand elastic vHadoop service (the paper's future work).

Three tenants submit jobs to a shared two-machine datacenter:

* a Wordcount over a text corpus,
* a Naive Bayes spam classifier training + evaluation run,
* an item-based recommender over movie preferences.

The service provisions a fresh hadoop virtual cluster per request (booting
VMs from the NFS image store), queues requests that don't fit, and tears
clusters down when jobs finish.

Run:  python examples/on_demand_service.py
"""

from repro import PlatformConfig, VHadoopPlatform
from repro.cloud import OnDemandVHadoopService, ServiceRequest
from repro.datasets.text import generate_corpus
from repro.ml import (ClusterExecutor, ItemCooccurrenceRecommender,
                      NaiveBayesDriver)
from repro.platform import ClusterSpec
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

TRAIN_DOCS = [
    (0, ("spam", ("win", "money", "now", "free"))),
    (1, ("spam", ("free", "offer", "click"))),
    (2, ("spam", ("win", "free", "prize"))),
    (3, ("ham", ("quarterly", "report", "attached"))),
    (4, ("ham", ("team", "meeting", "monday"))),
    (5, ("ham", ("please", "review", "the", "report"))),
]
TEST_DOCS = [(10, ("free", "prize", "now")), (11, ("meeting", "report"))]

PREFS = [(("u1", "matrix"), 5.0), (("u1", "inception"), 4.0),
         (("u2", "matrix"), 4.0), (("u2", "inception"), 5.0),
         (("u2", "tenet"), 4.0), (("u3", "matrix"), 5.0)]


def main() -> None:
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=11))
    service = OnDemandVHadoopService(platform)

    # Tenant 1: Wordcount as a service request.
    corpus = generate_corpus(500_000,
                             rng=platform.datacenter.rng.stream("svc"))
    wc = service.submit(ServiceRequest(
        name="wordcount",
        n_nodes=6,
        records=lines_as_records(corpus),
        make_job=lambda inp, out: wordcount_job(inp, out, n_reduces=2),
        sizeof=line_record_sizeof))

    outcomes = service.run_all([wc])
    o = outcomes[0]
    print(f"[wordcount]   waited {o.queue_wait_s:.1f}s, "
          f"total {o.total_s:.1f}s (incl. boot), "
          f"{len(o.output)} distinct words")

    # Tenants 2 and 3 use long-lived clusters through the platform API —
    # classification and recommendation, the library's other categories.
    nb_cluster = platform.provision_cluster("nb", ClusterSpec.single_host(4))
    platform.upload(nb_cluster, "/train", TRAIN_DOCS, timed=False)
    platform.upload(nb_cluster, "/test", TEST_DOCS, timed=False)
    executor = ClusterExecutor(platform.runner(nb_cluster), nb_cluster)
    driver = NaiveBayesDriver()
    model, train_s = driver.train(executor, "/train")
    predictions, classify_s = driver.classify(executor, model, "/test")
    print(f"[classifier]  trained in {train_s:.1f}s, classified in "
          f"{classify_s:.1f}s -> {predictions}")

    rec_cluster = platform.provision_cluster("rec", ClusterSpec.single_host(4))
    platform.upload(rec_cluster, "/prefs", PREFS, timed=False)
    rec_exec = ClusterExecutor(platform.runner(rec_cluster), rec_cluster)
    result = ItemCooccurrenceRecommender(top_n=2).run(rec_exec, "/prefs")
    print(f"[recommender] {result.runtime_s:.1f}s; "
          f"u3 -> {[item for item, _s in result.for_user('u3')]}")


if __name__ == "__main__":
    main()
