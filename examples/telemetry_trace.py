"""Telemetry walkthrough: spans, critical path, and exporters.

Runs a Wordcount on an 8-node cluster with nmon sampling on, then uses the
cluster's :class:`~repro.telemetry.Telemetry` facade to

* reconstruct the job's span tree (job -> phases -> attempts -> fetches),
* compute and print the critical path (which attempts gated the makespan),
* export a ``chrome://tracing`` / Perfetto JSON timeline,
* dump the metrics registry as Prometheus text and CSV.

Run:  python examples/telemetry_trace.py [trace.json]
"""

import sys

from repro import ClusterSpec, PlatformConfig, VHadoopPlatform
from repro.datasets.text import generate_corpus
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

SCALE = 100


def main(trace_path: str = "trace.json") -> None:
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=11))
    cluster = platform.provision_cluster("tel", ClusterSpec.single_host(8))
    lines = generate_corpus(64_000_000 // SCALE,
                            rng=platform.datacenter.rng.stream("corpus"))
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(SCALE), timed=False)

    telemetry = cluster.telemetry
    telemetry.start_monitor(interval=2.0)
    job = wordcount_job("/in", "/out", n_reduces=4, volume_scale=SCALE)
    report = platform.run_job(cluster, job)
    telemetry.stop_monitor()
    print(f"wordcount finished in {report.elapsed:.1f} s")

    # -- span tree + critical path ----------------------------------------
    timeline = telemetry.job_timeline(job.name)
    print(f"spans recorded: {len(timeline.spans)} "
          f"(categories: {', '.join(sorted(timeline.categories()))})")
    path = timeline.critical_path()
    print(f"critical path: makespan {path.makespan:.1f} s, "
          f"work {path.work_s:.1f} s, wait {path.wait_s:.1f} s "
          f"(coverage {path.coverage:.0%})")
    for segment in path.span_segments()[:8]:
        print(f"  {segment.start:8.2f} -> {segment.end:8.2f}  "
              f"{segment.label}")

    # -- exporters ----------------------------------------------------------
    written = telemetry.export_chrome_trace(trace_path)
    print(f"chrome trace written to {written} "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    prom = telemetry.prometheus_text()
    print(f"prometheus exposition: {len(prom.splitlines())} lines, e.g.")
    for line in prom.splitlines()[:4]:
        print(f"  {line}")
    print(f"metrics csv: {len(telemetry.metrics_csv().splitlines())} rows; "
          f"spans csv: {len(telemetry.spans_csv().splitlines())} rows")

    busiest = telemetry.bottleneck().busiest_resource
    print(f"bottleneck during the run: {busiest}")


if __name__ == "__main__":
    main(*sys.argv[1:])
