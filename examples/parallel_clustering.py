"""Parallel machine learning on the vHadoop platform (paper Section IV).

Runs all six MapReduce-based clustering algorithms — Canopy, Dirichlet,
Fuzzy k-Means, k-Means, MeanShift, MinHash — over the Synthetic Control
Chart dataset on a 16-node hadoop virtual cluster, then renders the
DisplayClustering-style panels for the 2-D sample dataset.

Run:  python examples/parallel_clustering.py
"""

from repro import PlatformConfig, VHadoopPlatform
from repro.datasets import generate_sample_data, generate_synthetic_control
from repro.experiments.common import scaled_cluster
from repro.ml import (CanopyDriver, ClusterExecutor, DirichletDriver,
                      FuzzyKMeansDriver, KMeansDriver, LocalExecutor,
                      MeanShiftDriver, MinHashDriver, points_as_records)
from repro.ml.base import stage_points
from repro.ml.display import describe_result, render_history


def control_chart_clustering() -> None:
    print("=" * 72)
    print("Synthetic Control Chart Time Series (600 charts, 60 points each)")
    print("=" * 72)
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=7))
    cluster = scaled_cluster(platform, 16)
    charts, labels = generate_synthetic_control(
        rng=platform.datacenter.rng.stream("control"))
    stage_points(platform, cluster, "/control", charts)
    executor = ClusterExecutor(platform.runner(cluster), cluster)

    drivers = {
        "canopy": CanopyDriver(t1=80.0, t2=55.0),
        "kmeans": KMeansDriver(k=6, max_iterations=10),
        "fuzzy k-means": FuzzyKMeansDriver(k=6, max_iterations=10),
        "dirichlet": DirichletDriver(n_models=10, max_iterations=5),
        "meanshift": MeanShiftDriver(t1=70.0, t2=35.0, max_iterations=5),
        "minhash": MinHashDriver(num_hashes=10, key_groups=2, bucket=25.0),
    }
    for name, driver in drivers.items():
        outcome = driver.run(executor, "/control", work_prefix=f"/{name}")
        print(f"{name:>14s}: {outcome.k:3d} clusters, "
              f"{outcome.iterations} iteration(s), "
              f"{outcome.runtime_s:7.1f} simulated s")


def display_clustering() -> None:
    print()
    print("=" * 72)
    print("DisplayClustering: 1000 samples from three symmetric Gaussians")
    print("=" * 72)
    import numpy as np
    points, _labels = generate_sample_data(np.random.default_rng(42))
    records = points_as_records(points)
    for name, driver in [
        ("kmeans", KMeansDriver(k=3, max_iterations=8)),
        ("meanshift", MeanShiftDriver(t1=2.0, t2=1.0, max_iterations=8)),
    ]:
        result = driver.run(LocalExecutor({"/in": records}, seed=42), "/in")
        print(f"\n--- {name} ---")
        print(describe_result(result))
        print(render_history(points, result))


if __name__ == "__main__":
    control_chart_clustering()
    display_clustering()
