"""Multi-tenant scheduling on one shared hadoop virtual cluster.

Two tenants share an 8-node cluster under the fair scheduler:

* "batch"       — a CPU-heavy wordcount that would happily hog every slot;
* "interactive" — a stream of small MRBench jobs with a min-share of 4 map
                  slots and preemption after 6 s of starvation.

The batch job is submitted first and grabs the whole cluster; when the
interactive jobs arrive the fair scheduler preempts the youngest batch map
attempts to honour the min-share.  Every job's output is verified
bit-identical to a solo in-process LocalJobRunner run — scheduling changes
*when* tasks run, never *what* they compute.

Run:  python examples/multi_tenant.py
"""

from repro import PlatformConfig, VHadoopPlatform
from repro.datasets.text import generate_corpus
from repro.mapreduce.local import LocalJobRunner
from repro.platform import ClusterSpec
from repro.scheduler import FairScheduler, JobScheduler, PoolConfig
from repro.workloads.mrbench import mrbench_input, mrbench_job, mrbench_sizeof
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

N_SMALL = 3


def main() -> None:
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=7))
    cluster = platform.provision_cluster("shared",
                                         ClusterSpec.spread(8, hosts=2))
    sim = platform.sim

    corpus = generate_corpus(300_000,
                             rng=platform.datacenter.rng.stream("tenants"))
    platform.upload(cluster, "/batch/input", lines_as_records(corpus),
                    sizeof=line_record_sizeof, timed=False)
    small_records = mrbench_input()
    platform.upload(cluster, "/interactive/input", small_records,
                    sizeof=mrbench_sizeof, timed=False)

    policy = FairScheduler(pools=[
        PoolConfig("interactive", weight=2.0, min_share=4,
                   preemption_timeout_s=6.0),
        PoolConfig("batch", weight=1.0),
    ], preemption_check_s=2.0)
    scheduler = JobScheduler(cluster, policy=policy,
                             runner=platform.runner(cluster))

    batch = wordcount_job("/batch/input", "/batch/output", n_reduces=4)
    batch.name = "batch-wordcount"
    batch.map_cpu_per_byte = 2.0e-3          # a CPU-heavy analytics mapper
    batch.force_num_maps = 3 * scheduler.total_slots("map")
    jobs = {batch.name: (batch, lines_as_records(corpus))}
    events = [scheduler.submit(batch, pool="batch")]

    def interactive_arrivals():
        yield sim.timeout(10.0)
        for i in range(N_SMALL):
            job = mrbench_job("/interactive/input", f"/interactive/out-{i}",
                              n_maps=4, n_reduces=2)
            job.name = f"small-{i:02d}"
            jobs[job.name] = (job, small_records)
            events.append(scheduler.submit(job, pool="interactive"))

    sim.run_until(sim.process(interactive_arrivals(), name="arrivals"))
    sim.run_until(sim.all_of(list(events)))
    report = scheduler.finalize()

    print(f"policy={report.policy}  makespan={report.makespan:.1f}s  "
          f"concurrent={report.concurrent_busy_s:.1f}s  "
          f"preemptions={report.preemptions}")
    print(f"{'job':<18}{'pool':<13}{'wait_s':>8}{'elapsed_s':>11}"
          f"{'preempted':>11}")
    for stats in report.jobs:
        print(f"{stats.job_name:<18}{stats.pool:<13}{stats.wait_s:>8.1f}"
              f"{stats.elapsed:>11.1f}{stats.preempted_tasks:>11}")
    for name in sorted(report.pools):
        pool = report.pools[name]
        print(f"pool {name}: {pool.n_jobs} jobs, mean wait "
              f"{pool.mean_wait_s:.1f}s, {pool.slot_seconds:.0f} "
              f"slot-seconds, preemptions claimed "
              f"{pool.preemptions_claimed}")

    # Scheduling must not change any job's answer: compare each output to
    # an in-process LocalJobRunner run over the same records.
    for ex_report in (e.value for e in events):
        job, records = jobs[ex_report.job_name]
        cluster_output = platform.collect(cluster, ex_report)
        local_output = LocalJobRunner().run(job, records)
        assert cluster_output == local_output, ex_report.job_name
    print(f"all {len(events)} outputs bit-identical to LocalJobRunner")


if __name__ == "__main__":
    main()
