"""The closed monitor -> tuner loop (paper Fig. 1, step 9).

A deliberately under-provisioned cluster (one map slot per tracker) runs a
Wordcount; the nmon monitor records per-VM utilization; the nmon analyser
diagnoses the bottleneck; the MapReduce Tuner raises the slot count; the
same job runs again, faster.

Also demonstrates the migration-based tuning path: a cross-domain cluster
with a hot NIC is consolidated onto one host.

Run:  python examples/tuning_loop.py
"""

from repro import ClusterSpec, HadoopConfig, PlatformConfig, VHadoopPlatform
from repro.datasets.text import generate_corpus
from repro.tuner import (ConsolidateCrossDomainRule,
                         IncreaseSlotsWhenCpuIdleRule, MapReduceTuner)
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

SCALE = 100


def reconfiguration_loop() -> None:
    print("=== tuning by reconfiguration ===")
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=3))
    cluster = platform.provision_cluster(
        "tune", ClusterSpec.single_host(8),
        hadoop_config=HadoopConfig(map_tasks_maximum=1))
    lines = generate_corpus(96_000_000 // SCALE,
                            rng=platform.datacenter.rng.stream("corpus"))
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(SCALE), timed=False)

    cluster.telemetry.start_monitor(interval=2.0)
    job = wordcount_job("/in", "/before", n_reduces=4, volume_scale=SCALE)
    before = platform.run_job(cluster, job)
    cluster.telemetry.stop_monitor()
    print(f"before tuning: {before.elapsed:.1f} s "
          f"(map slots = {cluster.config.map_tasks_maximum})")

    tuner = MapReduceTuner(cluster,
                           rules=[IncreaseSlotsWhenCpuIdleRule(max_slots=3)])
    recommendation = tuner.step()
    print(f"tuner: {recommendation.reason}")

    job = wordcount_job("/in", "/after", n_reduces=4, volume_scale=SCALE)
    after = platform.run_job(cluster, job)
    print(f"after tuning:  {after.elapsed:.1f} s "
          f"(map slots = {cluster.config.map_tasks_maximum})")
    speedup = before.elapsed / after.elapsed
    print(f"speedup: {speedup:.2f}x")


def migration_loop() -> None:
    print("\n=== tuning by live migration (consolidation) ===")
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=4))
    cluster = platform.provision_cluster("cd", ClusterSpec.packed(8, hosts=2))
    print(f"layout before: hosts used = {sorted(cluster.hosts_used())}")

    # Saturate the inter-host path so the analyser sees a hot NIC/netback.
    dc = platform.datacenter
    a = cluster.workers[0]
    b = next(vm for vm in cluster.workers if vm.host is not a.host)
    dc.fabric.transfer(a.node, b.node, 3e9)
    dc.run(until=dc.now + 30.0)

    cluster.telemetry.monitor.sample_now(dc.now)
    tuner = MapReduceTuner(cluster,
                           rules=[ConsolidateCrossDomainRule(
                               net_busy_threshold=0.3)])
    recommendation = tuner.step()
    if recommendation:
        print(f"tuner: {recommendation.reason}")
    print(f"layout after:  hosts used = {sorted(cluster.hosts_used())}")


if __name__ == "__main__":
    reconfiguration_loop()
    migration_loop()
