"""Live migration of a hadoop virtual cluster (paper Section III-C).

Provisions a 16-node cluster on physical machine pm0, starts a Wordcount
workload, then live-migrates the entire cluster to pm1 with Virt-LM,
reporting per-node migration time and downtime — the measurements behind
Fig. 5 and Table II.

Run:  python examples/live_migration.py
"""

from repro import ClusterSpec, PlatformConfig, VHadoopPlatform
from repro.datasets.text import generate_corpus
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)


def migrate(condition: str) -> None:
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=5))
    cluster = platform.provision_cluster(f"mig-{condition}",
                                         ClusterSpec.single_host(16))
    dc = platform.datacenter

    stop_load = {"flag": False}
    if condition == "wordcount":
        scale = 400
        lines = generate_corpus(512_000_000 // scale,
                                rng=dc.rng.stream("corpus"))
        platform.upload(cluster, "/wc/in", lines_as_records(lines),
                        sizeof=scaled_line_sizeof(scale), timed=False)
        runner = platform.runners[cluster.name]

        def load(sim, stream):
            # Keep Wordcount running for the entire migration window by
            # resubmitting as each job finishes.
            index = 0
            while not stop_load["flag"]:
                yield runner.submit(wordcount_job(
                    "/wc/in", f"/wc/out-{stream}-{index}", n_reduces=8,
                    volume_scale=scale))
                index += 1

        for stream in range(3):
            dc.sim.process(load(dc.sim, stream), name=f"load-{stream}")
        dc.run(until=dc.now + 15.0)  # let the jobs reach steady state

    event = dc.virtlm.migrate_cluster(cluster.vms, dc.machine(1),
                                      label=condition)
    dc.sim.run_until(event)
    report = event.value
    stop_load["flag"] = True
    dc.sim.run()  # drain the in-flight Wordcount jobs

    print(f"\n=== whole-cluster migration, {condition} ===")
    print(f"{'node':<16s} {'migration time':>14s} {'downtime':>12s} "
          f"{'rounds':>6s} {'reason':>14s}")
    for record in report.records:
        print(f"{record.vm:<16s} {record.migration_time_s:>12.1f} s "
              f"{record.downtime_s * 1000:>9.1f} ms {record.n_rounds:>6d} "
              f"{record.stop_reason:>14s}")
    print(f"overall migration time: {report.overall_migration_time_s:.1f} s")
    print(f"overall downtime:       {report.overall_downtime_s * 1000:.0f} ms")
    print(f"downtime spread:        {report.downtime_spread():.1f}x")


if __name__ == "__main__":
    migrate("idle")
    migrate("wordcount")
