"""Chaos testing: Wordcount survives crashes with zero manual repair.

The same seeded Wordcount runs twice on a cross-domain 16-node cluster:

* **clean** — nothing goes wrong;
* **chaos** — mid-job, a :class:`FaultPlan` crashes one worker VM (it
  rejoins later with a cold disk), slows another worker's disk 4x, and
  then takes down an entire physical host with 8 workers on it.

Recovery is fully automatic: heartbeat expiry reaps dead TaskTrackers,
failed task attempts retry with capped exponential backoff on surviving
trackers, and the NameNode re-replicates every block that lost a copy —
no ``repair_cluster`` call anywhere.  The output of both runs is
byte-for-byte identical.

Run:  python examples/chaos_wordcount.py
"""

from repro import ClusterSpec, PlatformConfig, VHadoopPlatform
from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.datasets.text import generate_corpus
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

SCALE = 100  # simulate 256 MB while materializing a 1/100 sample


def build() -> tuple:
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=42,
                                              trace=True))
    cluster = platform.provision_cluster("chaos-demo",
                                         ClusterSpec.packed(16, hosts=2))
    lines = generate_corpus(256_000_000 // SCALE,
                            rng=platform.datacenter.rng.stream("corpus"))
    platform.upload(cluster, "/corpus", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(SCALE), timed=False)
    job = wordcount_job("/corpus", "/counts", n_reduces=4,
                        volume_scale=SCALE)
    return platform, cluster, job


def main() -> None:
    # Clean baseline.
    platform, cluster, job = build()
    clean = platform.run_job(cluster, job)
    clean_output = sorted(platform.collect(cluster, clean))
    print(f"clean run: {clean.elapsed:.1f} s "
          f"({clean.n_maps} maps, {clean.n_reduces} reduces)")

    # Same platform, same seed — now with faults landing mid-job.
    platform, cluster, job = build()
    doomed_host = cluster.datacenter.machines[-1].name
    survivors = [vm for vm in cluster.workers
                 if vm.host.name != doomed_host]
    plan = (FaultPlan(name="demo")
            .add(Fault(at=0.2 * clean.elapsed, kind="vm.crash",
                       target=survivors[0].name,
                       duration=0.4 * clean.elapsed))
            .add(Fault(at=0.3 * clean.elapsed, kind="disk.slow",
                       target=survivors[1].name, factor=4.0,
                       duration=0.3 * clean.elapsed))
            .add(Fault(at=0.5 * clean.elapsed, kind="host.crash",
                       target=doomed_host)))
    injector = ChaosInjector(cluster, plan)

    done = platform.runner(cluster).submit(job)
    injector.start()
    platform.sim.run_until(done)
    chaos = done.value
    chaos_output = sorted(platform.collect(cluster, chaos))

    print(f"chaos run: {chaos.elapsed:.1f} s "
          f"({chaos.elapsed / clean.elapsed:.2f}x the clean run)")
    print("\ninjection timeline:")
    for t, action, target in injector.report.timeline:
        print(f"  t={t:8.2f}s  {action:<13s} {target}")
    tracer = platform.tracer
    print(f"\nautomatic recovery: "
          f"{tracer.count('recovery.task.retry')} task retries, "
          f"{tracer.count('recovery.tracker.dead')} trackers reaped, "
          f"{tracer.count('recovery.replication.start')} repair sweeps")
    assert chaos_output == clean_output, "outputs differ!"
    print(f"output identical to the clean run "
          f"({len(chaos_output)} distinct words) — "
          f"timeline digest {injector.report.digest()}")


if __name__ == "__main__":
    main()
