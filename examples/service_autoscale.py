"""Alert-driven elastic autoscaling, full fidelity (no surrogate).

A warm 6-node shared vHadoop cluster serves open-loop wordcount traffic
from a 12-tenant fleet.  Mid-run a 6x flash crowd hits; watch the
closed loop do its job:

1. the service controller's rolling SLO evaluation sees the backlog
   per slot blow past threshold and **fires** ``service-backlog`` into
   the alert book;
2. the :class:`ElasticAutoscaler` consumes the fire through its
   one-shot alert cursor and **grows** an
   :class:`ElasticWorkerPool` — real VMs are placed on the freest
   host, booted, joined as compute-only TaskTrackers and attached to
   the scheduler's slot-worker pool;
3. the backlog drains, rolling p99 **recovers**, alerts resolve;
4. sustained low utilisation lets the pool **drain and retire** the
   extra workers without killing in-flight tasks.

Run:  python examples/service_autoscale.py
"""

import dataclasses

from repro import ClusterSpec, PlatformConfig, VHadoopPlatform
from repro.cloud import (AdmissionController, BurstTraffic,
                         ElasticAutoscaler, ServiceController,
                         SharedClusterBackend, SharedVHadoopService,
                         TenantRegistry)
from repro.observatory.slo import AlertBook
from repro.platform.provisioning import ElasticWorkerPool
from repro.telemetry import events as EV

#: This tier serves *interactive* jobs: inputs above this are clamped
#: (a 6-node base cluster is no place for an 8 GB batch scan).
MAX_INPUT_MB = 128.0


def main() -> None:
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=11,
                                              trace=True))
    cluster = platform.provision_cluster("svc", ClusterSpec.spread(6, hosts=2))
    service = SharedVHadoopService(platform, cluster)
    sim = platform.sim
    rngs = platform.datacenter.rng

    tenants = TenantRegistry.synthetic(
        12, rngs.stream("svc:fleet"), latency_slo_s=180.0, quota_scale=40.0)
    # One 5x flash crowd at t=300 against a base load sized to about a
    # third of the warm cluster's measured capacity — overload is real
    # but recoverable, so the tail of the run shows p99 coming back down.
    traffic = BurstTraffic("flash", tenants, rngs.stream("svc:traffic"),
                           base_rate_per_s=0.07, burst_factor=5.0,
                           burst_every_s=1800.0, burst_duration_s=300.0,
                           first_burst_at_s=300.0)

    book = AlertBook(sim=sim, tracer=cluster.tracer)
    pool = ElasticWorkerPool(cluster, service.scheduler, max_size=8,
                             quiescence_poll_s=10.0)
    autoscaler = ElasticAutoscaler(pool, book, cooldown_s=60.0,
                                   grow_step=2, scale_in_util=0.25,
                                   scale_in_ticks=8,
                                   tracer=cluster.tracer)
    backend = SharedClusterBackend(service, pool=pool)
    default_request = backend.request_factory
    backend.request_factory = lambda arrival: default_request(
        dataclasses.replace(arrival,
                            size_mb=min(arrival.size_mb, MAX_INPUT_MB)))
    controller = ServiceController(
        sim, backend, tenants, traffic,
        admission=AdmissionController(shed_start=8.0, shed_hard=16.0),
        book=book, autoscaler=autoscaler, name="flash-demo",
        tick_s=15.0, latency_target_s=180.0,
        tracer=cluster.tracer, verbose_telemetry=True)

    report = controller.run(horizon_s=1800.0)

    counters = report.counters()
    print(f"arrivals {counters['submitted']}  completed "
          f"{counters['completed']}  rejected "
          f"{counters['rejected_quota'] + counters['rejected_overload']}  "
          f"goodput {report.goodput:.2f}")
    print(f"latency p50 {report.latency.p50:.0f} s   "
          f"p99 {report.latency.p99:.0f} s   trace {report.trace_digest}")

    print("\nalerts fired:")
    for alert in report.book.alerts:
        state = "resolved" if alert.resolved_at is not None else "active"
        print(f"  t={alert.fired_at:7.0f}  {alert.slo:<16s} "
              f"value={alert.value:8.2f}  {state}")

    print("\nautoscaler actions:")
    for action in report.actions:
        print(f"  t={action.at:7.0f}  {action.action:<7s} x{action.amount} "
              f"on {action.trigger:<15s} -> pool size {action.size_after}")

    print("\nrolling p99 / backlog / workers (one row per minute):")
    for point in report.timeline[::4]:
        bar = "#" * min(60, point.backlog)
        print(f"  t={point.at:7.0f}  workers={point.workers:2d}  "
              f"p99={point.p99:7.1f}s  backlog={point.backlog:3d} {bar}")

    joined = sum(1 for e in cluster.tracer.events
                 if e.kind == EV.CLUSTER_WORKER_JOINED)
    retired = sum(1 for e in cluster.tracer.events
                  if e.kind == EV.CLUSTER_WORKER_RETIRED)
    print(f"\nelastic workers joined {joined}, retired {retired} "
          f"(pool ends at size {pool.size})")

    # The loop must have closed: alerts fired, capacity followed, and the
    # service finished the day healthy.
    assert any(a.action == "grow" for a in report.actions), "never scaled"
    assert joined > 0, "no elastic worker ever joined the cluster"
    assert counters["completed"] > 0.8 * counters["admitted"]
    assert report.timeline[-1].backlog == 0
    peak = max(p.p99 for p in report.timeline)
    assert report.timeline[-1].p99 < peak, "p99 never recovered"
    print("\nclosed loop verified: alert -> grow -> drain -> recover")


if __name__ == "__main__":
    main()
