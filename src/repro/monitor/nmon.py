"""The distributed nmon monitor.

A :class:`NmonMonitor` attaches to a set of VMs and samples, every
``interval`` simulated seconds, the four resource classes nmon reports:

* **cpu** — the VM's VCPU utilization (load fraction on its VCPU resource);
* **memory** — resident memory fraction (static per VM in this model, plus
  the activity-driven working set);
* **disk** — bytes of virtual-disk I/O since the previous sample;
* **net** — bytes sent/received since the previous sample.

Samples are plain records; the analyser (:mod:`repro.monitor.analyser`)
aggregates them.  The monitor is itself a simulation process, so sampling
is correctly interleaved with the workload.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.errors import MonitorError
from repro.sim.kernel import Event, Interrupt, Process
from repro.virt.vm import VirtualMachine


@dataclass(frozen=True)
class NmonSample:
    """One observation of one VM."""

    time: float
    vm: str
    cpu_util: float          # 0..1 of the VM's VCPU allocation
    memory_fraction: float   # 0..1 of configured guest memory
    disk_bytes_delta: float  # since previous sample
    net_tx_delta: float
    net_rx_delta: float
    activity: int            # running tasks


@dataclass
class NodeSeries:
    """All samples of one VM, in time order."""

    vm: str
    samples: list[NmonSample] = field(default_factory=list)

    def column(self, name: str) -> list[float]:
        return [getattr(s, name) for s in self.samples]

    def __len__(self) -> int:
        return len(self.samples)


#: Memory fraction of an idle guest (kernel + daemons + Hadoop services).
_BASE_MEMORY_FRACTION = 0.35
#: Additional memory fraction per running task (JVM heap).
_TASK_MEMORY_FRACTION = 0.18


class NmonMonitor:
    """Samples a group of VMs on a fixed interval.

    .. deprecated::
        Constructing a monitor directly is deprecated — use the cluster's
        telemetry facade instead (``cluster.telemetry.monitor`` /
        ``cluster.telemetry.start_monitor()``), which owns the monitor and
        mirrors its samples into the metrics registry.
    """

    def __init__(self, vms: Sequence[VirtualMachine], interval: float = 5.0,
                 _owner: Optional[object] = None):
        if _owner is None:
            warnings.warn(
                "constructing NmonMonitor directly is deprecated; use "
                "cluster.telemetry.monitor (or .start_monitor()) instead",
                DeprecationWarning, stacklevel=2)
        if not vms:
            raise MonitorError("monitor needs at least one VM")
        if interval <= 0:
            raise MonitorError(f"interval must be > 0, got {interval}")
        self.vms = list(vms)
        self.interval = float(interval)
        self.series: dict[str, NodeSeries] = {
            vm.name: NodeSeries(vm.name) for vm in self.vms}
        self._on_sample: Optional[Callable[[NmonSample], None]] = None
        #: Additional per-sample listeners (rolling windows, detectors);
        #: these chain *after* the primary ``on_sample`` hook.
        self._listeners: list[Callable[[NmonSample], None]] = []
        self._last_disk: dict[str, float] = {}
        self._last_tx: dict[str, float] = {}
        self._last_rx: dict[str, float] = {}
        self._running = False
        self._proc: Optional[Process] = None
        self._pending: Optional[Event] = None

    # -- sample hooks --------------------------------------------------------
    @property
    def on_sample(self) -> Optional[Callable[[NmonSample], None]]:
        """Primary per-sample hook (the telemetry facade's metrics mirror).

        Assigning replaces the previous primary hook; use
        :meth:`add_listener` to *chain* additional consumers instead of
        stealing this slot.
        """
        return self._on_sample

    @on_sample.setter
    def on_sample(self, callback: Optional[Callable[[NmonSample], None]]
                  ) -> None:
        self._on_sample = callback

    def add_listener(self, callback: Callable[[NmonSample], None]) -> None:
        """Chain an additional per-sample listener (kept in add order)."""
        self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[NmonSample], None]) -> None:
        """Remove a previously added listener (no-op when absent)."""
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    # -- control -------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        sim = self.vms[0].sim
        self._proc = sim.process(self._sampler(sim), name="nmon")

    def stop(self) -> None:
        """Stop sampling and withdraw the pending wakeup.

        A stopped monitor emits no further samples, and its parked sampling
        timeout is cancelled so it neither keeps the simulation alive nor
        drags the clock to the next interval boundary.
        """
        if not self._running:
            return
        self._running = False
        if self._pending is not None and not self._pending.processed:
            self._pending.cancel()
        self._pending = None
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("monitor stopped")
        self._proc = None

    # -- sampling -----------------------------------------------------------
    def _sampler(self, sim):
        while self._running:
            self.sample_now(sim.now)
            self._pending = sim.timeout(self.interval)
            try:
                yield self._pending
            except Interrupt:
                return None
            finally:
                self._pending = None
        return None

    def sample_now(self, now: float) -> None:
        """Take one sample of every VM (also usable without start())."""
        for vm in self.vms:
            node = vm.node
            tx = node.tx_bytes if node else 0.0
            rx = node.rx_bytes if node else 0.0
            sample = NmonSample(
                time=now,
                vm=vm.name,
                cpu_util=vm.vcpu.utilization,
                memory_fraction=min(
                    1.0, _BASE_MEMORY_FRACTION
                    + _TASK_MEMORY_FRACTION * vm.activity),
                disk_bytes_delta=vm.disk_bytes
                - self._last_disk.get(vm.name, 0.0),
                net_tx_delta=tx - self._last_tx.get(vm.name, 0.0),
                net_rx_delta=rx - self._last_rx.get(vm.name, 0.0),
                activity=vm.activity,
            )
            self.series[vm.name].samples.append(sample)
            self._last_disk[vm.name] = vm.disk_bytes
            self._last_tx[vm.name] = tx
            self._last_rx[vm.name] = rx
            if self._on_sample is not None:
                self._on_sample(sample)
            for listener in self._listeners:
                listener(sample)

    # -- access -----------------------------------------------------------------
    def node(self, vm_name: str) -> NodeSeries:
        try:
            return self.series[vm_name]
        except KeyError:
            raise MonitorError(f"no series for VM {vm_name!r}") from None

    def all_samples(self) -> list[NmonSample]:
        out: list[NmonSample] = []
        for series in self.series.values():
            out.extend(series.samples)
        out.sort(key=lambda s: (s.time, s.vm))
        return out
