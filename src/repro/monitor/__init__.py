"""nmon Monitor: per-VM resource monitoring plus the analyser.

The paper extends the single-node ``nmon`` Linux monitor to the distributed
vHadoop platform: every master/worker VM is sampled in parallel and the
``nmon analyser`` turns the samples into summaries that reveal the
performance bottleneck (their conclusion: network I/O and NFS disk I/O).
"""

from repro.monitor.nmon import NmonMonitor, NmonSample, NodeSeries
from repro.monitor.analyser import (BottleneckReport, NmonAnalyser,
                                    SeriesSummary)

__all__ = ["BottleneckReport", "NmonAnalyser", "NmonMonitor", "NmonSample",
           "NodeSeries", "SeriesSummary"]
