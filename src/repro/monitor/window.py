"""Incremental rolling-window view over the nmon sample stream.

The streaming detectors (:mod:`repro.observatory`) need bounded recent
aggregates — "CPU over the last 30 s", "disk bytes over the last 30 s" —
every tick.  Re-aggregating a node's *full* sample history each tick (what
:meth:`NmonAnalyser.summarize` does, by design: it reproduces the paper's
whole-run nmon workbook) is O(run length) per query and grows without
bound, so the facade instead exposes this incremental view
(:meth:`Telemetry.rolling_window`).

A :class:`RollingWindow` registers itself as a monitor listener: each new
sample is folded into per-VM running sums in O(1), and samples older than
``seconds`` are evicted (their contribution subtracted) as the window
slides.  Every aggregate query is O(evicted) amortized — each sample is
added once and removed once, regardless of how often detectors poll.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.monitor.nmon import NmonMonitor, NmonSample


@dataclass(frozen=True)
class WindowSummary:
    """Aggregates of one VM over the current window."""

    vm: str
    n_samples: int
    span_s: float            # window span actually covered by samples
    cpu_mean: float
    disk_bytes: float
    net_bytes: float
    activity_mean: float

    @property
    def disk_rate(self) -> float:
        """Bytes/s of virtual-disk I/O over the window."""
        return self.disk_bytes / self.span_s if self.span_s > 0 else 0.0

    @property
    def net_rate(self) -> float:
        return self.net_bytes / self.span_s if self.span_s > 0 else 0.0


class _VmWindow:
    """Running sums of one VM's in-window samples."""

    __slots__ = ("samples", "cpu_sum", "disk_sum", "net_sum",
                 "activity_sum")

    def __init__(self) -> None:
        self.samples: deque[NmonSample] = deque()
        self.cpu_sum = 0.0
        self.disk_sum = 0.0
        self.net_sum = 0.0
        self.activity_sum = 0.0

    def push(self, sample: NmonSample) -> None:
        self.samples.append(sample)
        self.cpu_sum += sample.cpu_util
        self.disk_sum += sample.disk_bytes_delta
        self.net_sum += sample.net_tx_delta + sample.net_rx_delta
        self.activity_sum += sample.activity

    def evict_before(self, cutoff: float) -> None:
        samples = self.samples
        while samples and samples[0].time < cutoff:
            old = samples.popleft()
            self.cpu_sum -= old.cpu_util
            self.disk_sum -= old.disk_bytes_delta
            self.net_sum -= old.net_tx_delta + old.net_rx_delta
            self.activity_sum -= old.activity


class RollingWindow:
    """A bounded, incrementally maintained view of recent nmon samples.

    Obtain one from the telemetry facade
    (``cluster.telemetry.rolling_window(seconds)``) rather than
    constructing it directly — the facade owns the monitor and reuses one
    window per requested span.
    """

    def __init__(self, monitor: NmonMonitor, seconds: float):
        if seconds <= 0:
            raise ValueError(f"window must be > 0 seconds, got {seconds}")
        self.monitor = monitor
        self.seconds = float(seconds)
        self._vms: dict[str, _VmWindow] = {}
        self._now = 0.0
        monitor.add_listener(self._push)

    def detach(self) -> None:
        """Stop receiving samples (keeps current window contents)."""
        self.monitor.remove_listener(self._push)

    # -- maintenance -------------------------------------------------------
    def _push(self, sample: NmonSample) -> None:
        window = self._vms.get(sample.vm)
        if window is None:
            window = self._vms[sample.vm] = _VmWindow()
        window.push(sample)
        self.advance(sample.time)

    def advance(self, now: float) -> None:
        """Slide the window forward to ``now`` (evicts aged samples)."""
        if now < self._now:
            return
        self._now = now
        cutoff = now - self.seconds
        for window in self._vms.values():
            window.evict_before(cutoff)

    # -- queries -----------------------------------------------------------
    def vms(self) -> list[str]:
        return sorted(self._vms)

    def n_samples(self, vm: str) -> int:
        window = self._vms.get(vm)
        return len(window.samples) if window is not None else 0

    def summary(self, vm: str) -> WindowSummary:
        window = self._vms.get(vm)
        if window is None or not window.samples:
            return WindowSummary(vm=vm, n_samples=0, span_s=0.0,
                                 cpu_mean=0.0, disk_bytes=0.0,
                                 net_bytes=0.0, activity_mean=0.0)
        n = len(window.samples)
        # Span covered by the samples: from just before the oldest kept
        # sample (its delta covers the preceding interval) to "now".
        span = min(self.seconds,
                   max(self._now - window.samples[0].time,
                       self.monitor.interval))
        return WindowSummary(
            vm=vm, n_samples=n, span_s=span,
            cpu_mean=window.cpu_sum / n,
            disk_bytes=window.disk_sum,
            net_bytes=window.net_sum,
            activity_mean=window.activity_sum / n)

    def summaries(self) -> list[WindowSummary]:
        return [self.summary(vm) for vm in self.vms()]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<RollingWindow {self.seconds:g}s vms={len(self._vms)} "
                f"now={self._now:g}>")
