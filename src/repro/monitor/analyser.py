"""nmon analyser: summaries and bottleneck classification.

The original ``nmon analyser`` is an Excel workbook that charts nmon output
files; what the paper uses it for is finding the platform bottleneck.  This
module computes the same aggregates programmatically:

* per-node summaries (mean/peak of each resource class);
* a platform-level :class:`BottleneckReport` that also folds in the shared
  resources (host NICs, netback, NFS) and names the busiest one —
  reproducing the paper's conclusion that network I/O and NFS disk I/O are
  vHadoop's main bottlenecks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import MonitorError
from repro.monitor.nmon import NmonMonitor, NodeSeries


@dataclass(frozen=True)
class SeriesSummary:
    """Aggregate of one node's series."""

    vm: str
    n_samples: int
    cpu_mean: float
    cpu_peak: float
    memory_mean: float
    disk_bytes_total: float
    net_bytes_total: float

    @property
    def dominant(self) -> str:
        """Which class dominated this node: 'cpu', 'disk' or 'net'."""
        scores = {"cpu": self.cpu_mean,
                  "disk": self.disk_bytes_total,
                  "net": self.net_bytes_total}
        # CPU is a fraction; compare I/O classes by bytes, then prefer CPU
        # only when it is plainly saturated.
        if self.cpu_mean > 0.85:
            return "cpu"
        return max(("disk", "net"), key=lambda k: scores[k])


@dataclass(frozen=True)
class BottleneckReport:
    """Platform-level diagnosis."""

    busiest_resource: str
    busy_fractions: dict
    node_summaries: list

    def top(self, n: int = 3) -> list[tuple[str, float]]:
        ranked = sorted(self.busy_fractions.items(), key=lambda kv: -kv[1])
        return ranked[:n]


class NmonAnalyser:
    """Turns monitor series (and shared-resource counters) into reports."""

    def __init__(self, monitor: NmonMonitor):
        self.monitor = monitor

    def summarize(self, vm_name: str) -> SeriesSummary:
        series = self.monitor.node(vm_name)
        return self._summarize(series)

    @staticmethod
    def _summarize(series: NodeSeries) -> SeriesSummary:
        if not series.samples:
            raise MonitorError(f"no samples collected for {series.vm}")
        cpu = np.asarray(series.column("cpu_util"))
        memory = np.asarray(series.column("memory_fraction"))
        disk = np.asarray(series.column("disk_bytes_delta"))
        tx = np.asarray(series.column("net_tx_delta"))
        rx = np.asarray(series.column("net_rx_delta"))
        return SeriesSummary(
            vm=series.vm,
            n_samples=len(series),
            cpu_mean=float(cpu.mean()),
            cpu_peak=float(cpu.max()),
            memory_mean=float(memory.mean()),
            disk_bytes_total=float(disk.sum()),
            net_bytes_total=float((tx + rx).sum()),
        )

    def summaries(self) -> list[SeriesSummary]:
        return [self._summarize(s) for s in self.monitor.series.values()
                if s.samples]

    def bottleneck(self, shared_resources: Optional[Sequence] = None,
                   now: Optional[float] = None) -> BottleneckReport:
        """Diagnose the platform bottleneck.

        ``shared_resources`` are :class:`~repro.sim.fairshare.SharedResource`
        objects (host NICs, netback, NFS vnic, CPUs); their time-integrated
        busy fractions are compared and the busiest wins.
        """
        summaries = self.summaries()
        busy: dict[str, float] = {}
        if shared_resources and now is not None and now > 0:
            for res in shared_resources:
                busy[res.name] = res.busy_time(now) / now
        if busy:
            busiest = max(busy, key=busy.get)  # type: ignore[arg-type]
        else:
            # Fall back to the per-node dominant classes.
            if not summaries:
                raise MonitorError("nothing to analyse")
            votes: dict[str, int] = {}
            for summary in summaries:
                votes[summary.dominant] = votes.get(summary.dominant, 0) + 1
            busiest = max(votes, key=votes.get)  # type: ignore[arg-type]
        return BottleneckReport(busiest_resource=busiest,
                                busy_fractions=busy,
                                node_summaries=summaries)

    def imbalance(self) -> float:
        """Coefficient of variation of per-node CPU means — the tuner's
        signal for load-balancing migrations."""
        means = [s.cpu_mean for s in self.summaries()]
        if not means:
            raise MonitorError("nothing to analyse")
        arr = np.asarray(means)
        if arr.mean() == 0:
            return 0.0
        return float(arr.std() / arr.mean())
