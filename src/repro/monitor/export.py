"""nmon-format export and parsing.

The real workflow the paper describes is file-based: ``nmon`` writes
section-per-metric CSV files on every node, and the ``nmon analyser``
workbook reads them back to draw graphs.  This module serializes a
:class:`~repro.monitor.nmon.NodeSeries` into the same sectioned layout and
parses it back, so monitoring data can leave the simulation and re-enter
the analyser:

::

    AAA,host,vm-03
    ZZZZ,T0001,0.00
    CPU_ALL,T0001,37.50
    MEM,T0001,53.00
    DISKREAD,T0001,10485760
    NET,T0001,524288,1048576
    ...

(A simplified but faithful subset of nmon's sections: snapshot markers
``ZZZZ``, total CPU, memory, disk bytes, net tx/rx.)
"""

from __future__ import annotations

from repro.errors import MonitorError
from repro.monitor.nmon import NmonSample, NodeSeries


def write_nmon(series: NodeSeries) -> str:
    """Serialize one node's samples into nmon-style sectioned CSV."""
    if not series.samples:
        raise MonitorError(f"no samples to export for {series.vm}")
    lines = [f"AAA,host,{series.vm}",
             f"AAA,samples,{len(series.samples)}"]
    for index, sample in enumerate(series.samples, start=1):
        tag = f"T{index:04d}"
        lines.append(f"ZZZZ,{tag},{sample.time:.3f}")
        lines.append(f"CPU_ALL,{tag},{sample.cpu_util * 100.0:.2f}")
        lines.append(f"MEM,{tag},{sample.memory_fraction * 100.0:.2f}")
        lines.append(f"DISKREAD,{tag},{sample.disk_bytes_delta:.0f}")
        lines.append(f"NET,{tag},{sample.net_tx_delta:.0f},"
                     f"{sample.net_rx_delta:.0f}")
        lines.append(f"PROC,{tag},{sample.activity}")
    return "\n".join(lines) + "\n"


def parse_nmon(text: str) -> NodeSeries:
    """Parse nmon-style CSV back into a :class:`NodeSeries`.

    Raises :class:`MonitorError` when the ``AAA,host`` header is missing,
    when a snapshot lacks a required section, or when the ``AAA,samples``
    count (if present) disagrees with the snapshots actually found.
    """
    vm = None
    declared_samples = None
    snapshots: dict[str, dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        fields = line.split(",")
        section = fields[0]
        if section == "AAA":
            if fields[1] == "host":
                vm = fields[2]
            elif fields[1] == "samples":
                try:
                    declared_samples = int(fields[2])
                except (IndexError, ValueError):
                    raise MonitorError(
                        f"malformed AAA,samples header: {line!r}") from None
            continue
        tag = fields[1]
        snap = snapshots.setdefault(tag, {})
        if section == "ZZZZ":
            snap["time"] = float(fields[2])
        elif section == "CPU_ALL":
            snap["cpu"] = float(fields[2]) / 100.0
        elif section == "MEM":
            snap["mem"] = float(fields[2]) / 100.0
        elif section == "DISKREAD":
            snap["disk"] = float(fields[2])
        elif section == "NET":
            snap["tx"] = float(fields[2])
            snap["rx"] = float(fields[3])
        elif section == "PROC":
            snap["activity"] = int(fields[2])
    if vm is None:
        raise MonitorError("nmon text has no AAA,host header")
    series = NodeSeries(vm)
    for tag in sorted(snapshots):
        snap = snapshots[tag]
        try:
            series.samples.append(NmonSample(
                time=snap["time"], vm=vm, cpu_util=snap["cpu"],
                memory_fraction=snap["mem"],
                disk_bytes_delta=snap["disk"],
                net_tx_delta=snap["tx"], net_rx_delta=snap["rx"],
                activity=snap.get("activity", 0)))
        except KeyError as missing:
            raise MonitorError(
                f"snapshot {tag} is missing section {missing}") from None
    if declared_samples is not None and declared_samples != len(series.samples):
        raise MonitorError(
            f"nmon header declares {declared_samples} samples but "
            f"{len(series.samples)} snapshots were found")
    return series
