"""nmon-analyser graphics, terminal edition.

The real nmon analyser is an Excel workbook that turns nmon output files
into utilization charts.  This module renders the same views as text:

* :func:`sparkline` — one metric of one node as a unicode sparkline;
* :func:`render_node_timeline` — the four resource classes of one node,
  stacked;
* :func:`render_cluster_heatmap` — one metric across all nodes over time
  (rows = nodes, columns = samples) — the view that makes imbalance and
  cross-domain hotspots visible at a glance.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MonitorError
from repro.monitor.nmon import NmonMonitor, NodeSeries

_TICKS = " ▁▂▃▄▅▆▇█"
_HEAT = " .:-=+*#%@"


def _scale(values: Sequence[float], levels: int) -> list[int]:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise MonitorError("nothing to plot")
    top = arr.max()
    if top <= 0:
        return [0] * arr.size
    return [min(levels - 1, int(v / top * (levels - 1) + 0.5)) for v in arr]


def sparkline(values: Sequence[float]) -> str:
    """One metric as a sparkline, scaled to its own maximum."""
    return "".join(_TICKS[i] for i in _scale(values, len(_TICKS)))


def render_node_timeline(series: NodeSeries) -> str:
    """cpu / memory / disk / net sparklines for one node."""
    if not series.samples:
        raise MonitorError(f"no samples for {series.vm}")
    rows = [
        ("cpu", series.column("cpu_util")),
        ("mem", series.column("memory_fraction")),
        ("disk", series.column("disk_bytes_delta")),
        ("net", [tx + rx for tx, rx in zip(series.column("net_tx_delta"),
                                           series.column("net_rx_delta"))]),
    ]
    width = max(len(name) for name, _v in rows)
    lines = [f"== {series.vm} =="]
    for name, values in rows:
        peak = max(values) if values else 0.0
        lines.append(f"{name:>{width}s} |{sparkline(values)}| "
                     f"peak={peak:.3g}")
    return "\n".join(lines)


def render_cluster_heatmap(monitor: NmonMonitor, metric: str = "cpu_util"
                           ) -> str:
    """Node x time heatmap of one metric across the whole cluster."""
    names = sorted(monitor.series)
    columns = []
    for name in names:
        series = monitor.series[name]
        if not series.samples:
            raise MonitorError(f"no samples for {name}")
        columns.append(series.column(metric))
    n_samples = min(len(c) for c in columns)
    matrix = np.asarray([c[:n_samples] for c in columns], dtype=float)
    top = matrix.max()
    lines = [f"== cluster heatmap: {metric} (peak={top:.3g}) =="]
    width = max(len(n) for n in names)
    for name, row in zip(names, matrix):
        if top > 0:
            glyphs = "".join(
                _HEAT[min(len(_HEAT) - 1,
                          int(v / top * (len(_HEAT) - 1) + 0.5))]
                for v in row)
        else:
            glyphs = " " * n_samples
        lines.append(f"{name:>{width}s} |{glyphs}|")
    return "\n".join(lines)
