"""HadoopVirtualCluster: one namenode VM plus N datanode/worker VMs.

This is the object the paper calls a "hadoop virtual cluster": the VMs, the
HDFS services bound to them (NameNode on the master, DataNode on each
worker), the per-worker TaskTracker slot resources, and a DfsClient.  It is
built by :class:`~repro.platform.vhadoop.VHadoopPlatform` from a
:class:`~repro.platform.provisioning.Placement`.

Hadoop convention of the paper's figures: an *n-node* cluster is 1 namenode
+ (n-1) datanodes; MapReduce tasks run on the datanode VMs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import HadoopConfig
from repro.errors import ConfigError
from repro.hdfs import DataNode, DfsClient, NameNode
from repro.hdfs.replication import ReplicationMonitor
from repro.sim import Resource
from repro.telemetry import events as EV
from repro.telemetry.facade import Telemetry
from repro.virt.datacenter import Datacenter
from repro.virt.vm import VirtualMachine, VMState


class TaskTracker:
    """Map/reduce slot bookkeeping for one worker VM."""

    def __init__(self, vm: VirtualMachine, config: HadoopConfig):
        self.vm = vm
        self.map_slots = Resource(vm.sim, config.map_tasks_maximum,
                                  name=f"{vm.name}.map_slots")
        self.reduce_slots = Resource(vm.sim, config.reduce_tasks_maximum,
                                     name=f"{vm.name}.reduce_slots")
        #: A draining tracker takes no new tasks (elastic scale-in: the
        #: autoscaler marks it, waits for quiescence, then retires the VM).
        self.draining = False

    @property
    def name(self) -> str:
        return self.vm.name


class HadoopVirtualCluster:
    """A provisioned, running hadoop virtual cluster."""

    def __init__(self, name: str, datacenter: Datacenter,
                 master: VirtualMachine, workers: Sequence[VirtualMachine],
                 config: Optional[HadoopConfig] = None):
        if not workers:
            raise ConfigError("a hadoop cluster needs at least one worker")
        self.name = name
        self.datacenter = datacenter
        self.sim = datacenter.sim
        self.tracer = datacenter.tracer
        self.config = config or datacenter.config.hadoop
        self.master = master
        self.workers = list(workers)
        self.namenode = NameNode(rng=datacenter.rng.stream(
            f"hdfs/placement/{name}"))
        self.datanodes: list[DataNode] = []
        self.trackers: list[TaskTracker] = []
        for vm in self.workers:
            dn = DataNode(vm)
            self.namenode.register_datanode(dn)
            self.datanodes.append(dn)
            self.trackers.append(TaskTracker(vm, self.config))
        #: The cluster's observability handle: tracer + metrics + monitor.
        self.telemetry = Telemetry(self.sim, self.tracer,
                                   metrics=datacenter.metrics,
                                   vms=self.vms, datacenter=datacenter)
        self.dfs = DfsClient(self.sim, datacenter.fabric, self.namenode,
                             self.config, tracer=self.tracer,
                             metrics=datacenter.metrics)
        #: Background failure detection + repair; armed by
        #: :meth:`arm_recovery` (the chaos injector and the job scheduler
        #: both arm it; standalone runner tests stay untouched).
        self.recovery: Optional[ReplicationMonitor] = None
        self._watched_trackers: set[str] = set()
        #: Correlated failures arm many identical heartbeat-expiry grace
        #: timers at one instant; the wheel batches them into one event.
        self._expiry_wheel = self.sim.timer_wheel()

    # -- convenience -----------------------------------------------------
    @property
    def vms(self) -> list[VirtualMachine]:
        return [self.master] + self.workers

    @property
    def n_nodes(self) -> int:
        """Paper counting: namenode + datanodes."""
        return 1 + len(self.workers)

    def tracker_of(self, vm_name: str) -> Optional[TaskTracker]:
        for tracker in self.trackers:
            if tracker.name == vm_name:
                return tracker
        return None

    def hosts_used(self) -> set[str]:
        return {vm.host.name for vm in self.vms if vm.host is not None}

    @property
    def cross_domain(self) -> bool:
        return len(self.hosts_used()) > 1

    @property
    def multi_rack(self) -> bool:
        """True when the datacenter has ToR/aggregation tiers (never on
        the flat or degenerate one-rack topologies)."""
        return self.datacenter.fabric.agg is not None

    def racks_used(self) -> set[str]:
        return {vm.host.rack_name for vm in self.vms
                if vm.host is not None and vm.host.rack_name is not None}

    # -- elastic membership ------------------------------------------------
    def add_worker(self, vm: VirtualMachine,
                   with_datanode: bool = False) -> TaskTracker:
        """Join a running VM to the cluster as a new worker.

        By default the worker is *compute-only* (a TaskTracker without a
        DataNode) — the elastic-autoscaling contract: scaled-out capacity
        carries tasks, while HDFS replicas stay on the stable core
        workers, so scale-in never forces a re-replication sweep.  Pass
        ``with_datanode=True`` to grow the HDFS tier too (permanent
        expansion rather than elastic burst capacity).
        """
        self.workers.append(vm)
        tracker = TaskTracker(vm, self.config)
        self.trackers.append(tracker)
        if with_datanode:
            dn = DataNode(vm)
            self.namenode.register_datanode(dn)
            self.datanodes.append(dn)
            if self.recovery is not None:
                self.recovery.watch(dn)
        if self.recovery is not None:
            self.watch_tracker(tracker)
        self.telemetry.add_vm(vm)
        self.tracer.emit(self.sim.now, EV.CLUSTER_WORKER_JOINED, vm.name,
                         cluster=self.name, datanode=with_datanode,
                         n_nodes=self.n_nodes)
        return tracker

    def retire_worker(self, tracker: TaskTracker) -> None:
        """Detach a (drained) elastic worker and stop its VM.

        The caller is responsible for quiescence — no running tasks and no
        live shuffle inputs on the tracker (see
        :meth:`~repro.scheduler.JobScheduler.tracker_quiescent`).  Only
        compute-only workers should be retired; retiring a datanode VM
        would strand replicas.
        """
        if tracker in self.trackers:
            self.trackers = [t for t in self.trackers if t is not tracker]
        self.workers = [w for w in self.workers if w is not tracker.vm]
        self._watched_trackers.discard(tracker.name)
        if tracker.vm.host is not None:
            tracker.vm.stop()
        self.tracer.emit(self.sim.now, EV.CLUSTER_WORKER_RETIRED,
                         tracker.name, cluster=self.name,
                         n_nodes=self.n_nodes)

    # -- observability -----------------------------------------------------
    def observatory(self, **kwargs):
        """Build a :class:`~repro.observatory.core.Observatory` on this
        cluster (detectors, SLO alerting, per-job attribution).  The
        caller owns its lifecycle: ``start()`` it before the workload and
        ``stop()`` it after."""
        return self.telemetry.observatory(cluster=self, **kwargs)

    # -- failure detection & recovery -------------------------------------
    def arm_recovery(self) -> ReplicationMonitor:
        """Arm heartbeat-based failure detection and background repair.

        Idempotent.  A :class:`~repro.hdfs.replication.ReplicationMonitor`
        watches every datanode VM and re-replicates lost blocks when one
        dies; a reaper per TaskTracker declares it dead after
        ``missed_heartbeats_dead`` silent heartbeats and removes it from
        the scheduling pool.  All watchers wait on pending failure events
        (no heap slots), so a bare ``sim.run()`` still drains.
        """
        if self.recovery is None:
            self.recovery = ReplicationMonitor(
                self.sim, self.datacenter.fabric, self.namenode,
                self.config, tracer=self.tracer,
                metrics=self.telemetry.metrics)
        for dn in self.datanodes:
            self.recovery.watch(dn)
        for tracker in self.trackers:
            self.watch_tracker(tracker)
        return self.recovery

    def watch_tracker(self, tracker: TaskTracker) -> None:
        """Arm (or re-arm, after a rejoin) one tracker's dead-reaper."""
        if tracker.name in self._watched_trackers:
            return
        self._watched_trackers.add(tracker.name)
        self.sim.process(self._tracker_reaper(tracker),
                         name=f"{self.name}:reaper:{tracker.name}")

    def _tracker_reaper(self, tracker: TaskTracker):
        vm = tracker.vm
        yield vm.failure_event()
        self._watched_trackers.discard(tracker.name)
        # The JobTracker only notices after several silent heartbeats.
        grace = self.config.missed_heartbeats_dead * self.config.heartbeat_s
        if grace > 0:
            yield self._expiry_wheel.sleep(grace)
        if vm.state is not VMState.FAILED:
            return  # rejoined within the grace window
        if tracker not in self.trackers:
            return  # already detached (manual fail_worker path)
        self.trackers = [t for t in self.trackers if t is not tracker]
        self.tracer.emit(self.sim.now, EV.RECOVERY_TRACKER_DEAD, vm.name,
                         cluster=self.name)
        self.telemetry.metrics.counter(
            "recovery.trackers.dead",
            "trackers declared dead after missed heartbeats").inc()

    def reconfigure(self, config: HadoopConfig) -> None:
        """Apply a new Hadoop configuration (the MapReduce Tuner's hook).

        Slot resources are rebuilt; jobs submitted afterwards use the new
        limits.  Must not be called while a job is running.
        """
        self.config = config
        self.trackers = [TaskTracker(vm, config) for vm in self.workers]
        self.dfs.config = config
        self.tracer.emit(self.sim.now, EV.CLUSTER_RECONFIGURE, self.name,
                         map_slots=config.map_tasks_maximum,
                         reduce_slots=config.reduce_tasks_maximum)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<HadoopVirtualCluster {self.name} nodes={self.n_nodes} "
                f"{'cross-domain' if self.cross_domain else 'normal'}>")
