"""Fault injection and recovery orchestration.

The paper's conclusion (iii) relies on Hadoop's fault tolerance: "the
hadoop fault tolerance mechanism will re-run the job or restore from other
available backup data".  This module makes that testable:

* :func:`fail_worker` crashes a worker VM and declares its DataNode and
  TaskTracker dead to the cluster;
* :func:`repair_cluster` runs an HDFS re-replication sweep restoring every
  under-replicated block from the surviving copies.

Task-level recovery (re-running map tasks whose outputs died with their
VM) lives in the MapReduce runner itself, which consults the tracker's VM
state before scheduling and recovers lost map outputs during the shuffle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import VMStateError
from repro.hdfs.replication import (RepairReport, ReplicationRepairer,
                                    mark_datanode_dead)
from repro.telemetry import events as EV
from repro.virt.vm import VirtualMachine, VMState

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import HadoopVirtualCluster


def fail_worker(cluster: "HadoopVirtualCluster", vm: VirtualMachine) -> None:
    """Crash a worker VM and detach its services from the cluster."""
    if vm not in cluster.workers:
        raise VMStateError(f"{vm.name} is not a worker of {cluster.name}")
    vm.fail()
    datanode = cluster.namenode.datanode_of(vm.name)
    if datanode is not None:
        mark_datanode_dead(cluster.namenode, datanode)
        cluster.datanodes = [dn for dn in cluster.datanodes
                             if dn is not datanode]
    cluster.trackers = [t for t in cluster.trackers if t.vm is not vm]
    cluster.tracer.emit(cluster.sim.now, EV.CLUSTER_WORKER_FAILED,
                        cluster.name, vm=vm.name)


def alive_workers(cluster: "HadoopVirtualCluster") -> list[VirtualMachine]:
    return [vm for vm in cluster.workers if vm.state is VMState.RUNNING]


def repair_cluster(cluster: "HadoopVirtualCluster") -> RepairReport:
    """Run one re-replication sweep to completion; returns its report."""
    repairer = ReplicationRepairer(cluster.sim,
                                   cluster.datacenter.fabric,
                                   cluster.namenode,
                                   tracer=cluster.tracer)
    event = repairer.repair(cluster.config.dfs_replication)
    cluster.sim.run_until(event)
    return event.value
