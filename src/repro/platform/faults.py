"""Fault injection and recovery orchestration.

The paper's conclusion (iii) relies on Hadoop's fault tolerance: "the
hadoop fault tolerance mechanism will re-run the job or restore from other
available backup data".  This module makes that testable:

* :func:`fail_worker` crashes a worker VM and declares its DataNode and
  TaskTracker dead to the cluster;
* :func:`repair_cluster` runs an HDFS re-replication sweep restoring every
  under-replicated block from the surviving copies.

Task-level recovery (re-running map tasks whose outputs died with their
VM) lives in the MapReduce runner itself, which consults the tracker's VM
state before scheduling and recovers lost map outputs during the shuffle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import VMStateError
from repro.hdfs.replication import (RepairReport, ReplicationRepairer,
                                    mark_datanode_dead)
from repro.telemetry import events as EV
from repro.virt.vm import VirtualMachine, VMState

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import HadoopVirtualCluster


def fail_worker(cluster: "HadoopVirtualCluster", vm: VirtualMachine) -> None:
    """Crash a worker VM and detach its services from the cluster."""
    if vm not in cluster.workers:
        raise VMStateError(f"{vm.name} is not a worker of {cluster.name}")
    vm.fail()
    datanode = cluster.namenode.datanode_of(vm.name)
    if datanode is not None:
        mark_datanode_dead(cluster.namenode, datanode)
        cluster.datanodes = [dn for dn in cluster.datanodes
                             if dn is not datanode]
    cluster.trackers = [t for t in cluster.trackers if t.vm is not vm]
    cluster.tracer.emit(cluster.sim.now, EV.CLUSTER_WORKER_FAILED,
                        cluster.name, vm=vm.name)


def crash_worker(cluster: "HadoopVirtualCluster", vm: VirtualMachine) -> None:
    """Crash a worker VM *without* declaring its services dead.

    Unlike :func:`fail_worker` (the oracle's view: services are detached
    the same instant), this models what the platform can actually observe:
    the VM just stops answering.  Detection is left to the armed recovery
    monitors — heartbeat expiry reaps the TaskTracker, the replication
    monitor reaps the DataNode and re-replicates its blocks — so in-flight
    tasks fail, retry elsewhere, and the cluster heals itself.  Arm them
    with :meth:`~repro.platform.cluster.HadoopVirtualCluster.arm_recovery`.
    """
    if vm not in cluster.workers:
        raise VMStateError(f"{vm.name} is not a worker of {cluster.name}")
    vm.fail()
    cluster.tracer.emit(cluster.sim.now, EV.CLUSTER_WORKER_FAILED,
                        cluster.name, vm=vm.name)


def rejoin_worker(cluster: "HadoopVirtualCluster", vm: VirtualMachine,
                  host=None) -> None:
    """Bring a crashed worker back into the cluster (delayed recovery).

    The VM reboots with a cold, empty disk: its old replicas are scrubbed
    from the namespace (they died with the guest), a fresh DataNode
    re-registers, and a new TaskTracker joins the scheduling pool.  When
    recovery is armed the rejoined services are re-watched and a repair
    sweep is kicked so any block that lost its last copy to the scrub is
    restored (or reported) promptly.
    """
    if vm not in cluster.workers:
        raise VMStateError(f"{vm.name} is not a worker of {cluster.name}")
    vm.recover(host)
    old = cluster.namenode.datanode_of(vm.name)
    if old is not None:
        # Never reaped (rejoin beat the expiry window): scrub its stale
        # replica entries — the data did not survive the crash.
        mark_datanode_dead(cluster.namenode, old)
    cluster.datanodes = [dn for dn in cluster.datanodes if dn.vm is not vm]
    from repro.hdfs import DataNode
    fresh = DataNode(vm)
    cluster.namenode.register_datanode(fresh)
    cluster.datanodes.append(fresh)
    tracker = cluster.tracker_of(vm.name)
    if tracker is None:
        from repro.platform.cluster import TaskTracker
        tracker = TaskTracker(vm, cluster.config)
        cluster.trackers.append(tracker)
    if cluster.recovery is not None:
        cluster.recovery.watch(fresh)
        cluster.watch_tracker(tracker)
        cluster.recovery.sweep()
    cluster.tracer.emit(cluster.sim.now, EV.RECOVERY_WORKER_REJOINED,
                        cluster.name, vm=vm.name)


def alive_workers(cluster: "HadoopVirtualCluster") -> list[VirtualMachine]:
    return [vm for vm in cluster.workers if vm.state is VMState.RUNNING]


def repair_cluster(cluster: "HadoopVirtualCluster") -> RepairReport:
    """Run one re-replication sweep to completion; returns its report."""
    repairer = ReplicationRepairer(cluster.sim,
                                   cluster.datacenter.fabric,
                                   cluster.namenode,
                                   tracer=cluster.tracer)
    event = repairer.repair(cluster.config.dfs_replication)
    cluster.sim.run_until(event)
    return event.value
