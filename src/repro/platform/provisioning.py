"""Placement strategies for hadoop virtual clusters.

The paper's static analysis compares two layouts of a 16-VM cluster:

* **normal** — all 16 VMs on one physical machine (intra-host bridge
  carries all Hadoop traffic);
* **cross-domain** — VMs distributed equally across the two physical
  machines (half of all HDFS/shuffle pairs cross the physical NICs).

``balanced`` generalizes cross-domain to any host count (round-robin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PlacementError
from repro.virt.machine import PhysicalMachine


@dataclass(frozen=True)
class Placement:
    """VM index -> physical machine assignment for an n-VM cluster."""

    label: str
    assignment: tuple[int, ...]  # host index per VM index

    @property
    def n_vms(self) -> int:
        return len(self.assignment)

    def host_of(self, vm_index: int) -> int:
        return self.assignment[vm_index]

    def hosts_used(self) -> set[int]:
        return set(self.assignment)


def normal_placement(n_vms: int, host_index: int = 0) -> Placement:
    """All VMs on a single host (the paper's 'normal' case)."""
    if n_vms < 1:
        raise PlacementError("need at least one VM")
    return Placement("normal", tuple([host_index] * n_vms))


def cross_domain_placement(n_vms: int, n_hosts: int = 2) -> Placement:
    """VMs distributed equally across ``n_hosts`` physical machines in
    contiguous groups (paper: 8 VMs per host for the 16-VM cluster)."""
    if n_vms < 1:
        raise PlacementError("need at least one VM")
    if n_hosts < 2:
        raise PlacementError("cross-domain needs at least two hosts")
    per_host = -(-n_vms // n_hosts)  # ceil division
    assignment = tuple(min(i // per_host, n_hosts - 1) for i in range(n_vms))
    return Placement("cross-domain", assignment)


def balanced_placement(n_vms: int, n_hosts: int) -> Placement:
    """Round-robin across hosts (interleaved, unlike cross-domain's
    contiguous split)."""
    if n_vms < 1:
        raise PlacementError("need at least one VM")
    if n_hosts < 1:
        raise PlacementError("need at least one host")
    return Placement("balanced", tuple(i % n_hosts for i in range(n_vms)))


def validate_placement(placement: Placement,
                       machines: Sequence[PhysicalMachine]) -> None:
    """Check every referenced host exists."""
    for host_index in placement.hosts_used():
        if host_index < 0 or host_index >= len(machines):
            raise PlacementError(
                f"placement {placement.label!r} references host "
                f"{host_index} but only {len(machines)} exist")
