"""Resolved placements and elastic capacity for hadoop virtual clusters.

:class:`Placement` is the *resolved* VM→host assignment consumed by the
datacenter.  Callers should not build placements by hand any more: the
declarative :class:`~repro.platform.spec.ClusterSpec` resolves to one.
The legacy helpers (``normal_placement``, ``cross_domain_placement``,
``balanced_placement``) remain as deprecated shims over the equivalent
specs:

* **normal** — all 16 VMs on one physical machine (intra-host bridge
  carries all Hadoop traffic) → ``ClusterSpec.single_host``;
* **cross-domain** — VMs distributed equally across the two physical
  machines → ``ClusterSpec.packed``;
* **balanced** — round-robin generalization → ``ClusterSpec.spread``.

:class:`ElasticWorkerPool` is the *dynamic* counterpart: the actuator the
service autoscaler drives to grow a running cluster with compute-only
workers (boot, join, attach to the scheduler) and to shrink it again
(drain, wait for quiescence, retire) — without disturbing jobs in flight.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass
from typing import Collection, Optional, Sequence

from repro.config import VMConfig
from repro.errors import ConfigError, PlacementError
from repro.virt.machine import PhysicalMachine


@dataclass(frozen=True)
class Placement:
    """VM index -> physical machine assignment for an n-VM cluster."""

    label: str
    assignment: tuple[int, ...]  # host index per VM index

    @property
    def n_vms(self) -> int:
        return len(self.assignment)

    def host_of(self, vm_index: int) -> int:
        return self.assignment[vm_index]

    def hosts_used(self) -> set[int]:
        return set(self.assignment)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(f"{old} is deprecated; build clusters with "
                  f"repro.platform.ClusterSpec.{new} instead",
                  DeprecationWarning, stacklevel=3)


def normal_placement(n_vms: int, host_index: int = 0) -> Placement:
    """Deprecated shim: all VMs on a single host (the paper's 'normal'
    case).  Use :meth:`ClusterSpec.single_host`."""
    from repro.platform.spec import ClusterSpec
    _deprecated("normal_placement", "single_host")
    if n_vms < 1:
        raise PlacementError("need at least one VM")
    return ClusterSpec.single_host(n_vms, host=host_index) \
        .placement(host_index + 1)


def cross_domain_placement(n_vms: int, n_hosts: int = 2) -> Placement:
    """Deprecated shim: VMs distributed equally across ``n_hosts``
    physical machines in contiguous groups (paper: 8 VMs per host for
    the 16-VM cluster).  Use :meth:`ClusterSpec.packed`."""
    from repro.platform.spec import ClusterSpec
    _deprecated("cross_domain_placement", "packed")
    if n_vms < 1:
        raise PlacementError("need at least one VM")
    if n_hosts < 2:
        raise PlacementError("cross-domain needs at least two hosts")
    return ClusterSpec.packed(n_vms, hosts=n_hosts).placement(n_hosts)


def balanced_placement(n_vms: int, n_hosts: int) -> Placement:
    """Deprecated shim: round-robin across hosts (interleaved, unlike
    cross-domain's contiguous split).  Use :meth:`ClusterSpec.spread`."""
    from repro.platform.spec import ClusterSpec
    _deprecated("balanced_placement", "spread")
    if n_vms < 1:
        raise PlacementError("need at least one VM")
    if n_hosts < 1:
        raise PlacementError("need at least one host")
    return ClusterSpec.spread(n_vms, hosts=n_hosts).placement(n_hosts)


def validate_placement(placement: Placement,
                       machines: Sequence[PhysicalMachine]) -> None:
    """Check every referenced host exists."""
    for host_index in placement.hosts_used():
        if host_index < 0 or host_index >= len(machines):
            raise PlacementError(
                f"placement {placement.label!r} references host "
                f"{host_index} but only {len(machines)} exist")


class ElasticWorkerPool:
    """Grow/shrink a running cluster with compute-only elastic workers.

    The autoscaler's actuator.  :meth:`grow` defines and places a VM on
    the freest eligible host (DRAM reserved synchronously, so concurrent
    grows cannot double-book), boots it through the timed NFS image
    fetch, joins it to the cluster as a TaskTracker-only worker (no
    DataNode — see :meth:`HadoopVirtualCluster.add_worker
    <repro.platform.cluster.HadoopVirtualCluster.add_worker>`) and
    attaches it to the scheduler's slot-worker pool.  :meth:`shrink`
    retires the youngest pool workers *gracefully*: mark draining (no new
    tasks), wait until the tracker is quiescent — nothing running and no
    live shuffle inputs on it — then stop the VM and return its DRAM.

    ``size`` counts committed capacity: booted workers not yet draining
    plus boots in flight.  It never goes below ``min_size`` or above
    ``max_size``; the floor makes a clean (never-scaled-out) run
    structurally unable to shrink below its provisioned base.
    """

    def __init__(self, cluster, scheduler,
                 vm_config: Optional[VMConfig] = None,
                 min_size: int = 0, max_size: int = 64,
                 quiescence_poll_s: float = 5.0):
        if min_size < 0 or max_size < min_size:
            raise ConfigError("need 0 <= min_size <= max_size")
        self.cluster = cluster
        self.scheduler = scheduler
        self.datacenter = cluster.datacenter
        self.sim = cluster.sim
        self.vm_config = vm_config
        self.min_size = min_size
        self.max_size = max_size
        self.quiescence_poll_s = quiescence_poll_s
        self._seq = itertools.count()
        #: Trackers this pool booted and attached, oldest first.
        self.workers: list = []
        self.booting = 0
        self.retired = 0

    # -- ScalingTarget -----------------------------------------------------
    @property
    def size(self) -> int:
        """Committed elastic capacity (attached + booting − draining)."""
        attached = sum(1 for t in self.workers if not t.draining)
        return attached + self.booting

    def grow(self, n: int = 1,
             avoid_hosts: Collection[str] = ()) -> int:
        """Start up to ``n`` new workers; returns how many were started.

        Hosts named in ``avoid_hosts`` (e.g. the targets of active
        hot-host alerts) are skipped while any other host has room.
        Stops early when the cap or the datacenter's DRAM is reached.
        """
        memory = (self.vm_config or self.datacenter.config.vm).memory
        started = 0
        for _ in range(n):
            if self.size >= self.max_size:
                break
            machines = self.datacenter.machines
            candidates = [m for m in machines
                          if m.name not in avoid_hosts
                          and m.dram_free >= memory]
            if not candidates:  # fall back: an avoided host beats no host
                candidates = [m for m in machines if m.dram_free >= memory]
            if not candidates:
                break  # datacenter is full
            host = max(candidates, key=lambda m: m.dram_free)
            vm = self.datacenter.create_vm(
                f"{self.cluster.name}-es{next(self._seq):03d}", host,
                config=self.vm_config)
            self.booting += 1
            self.sim.process(self._bring_up(vm),
                             name=f"elastic:boot:{vm.name}")
            started += 1
        return started

    def _bring_up(self, vm):
        yield self.datacenter.boot_vm(vm)
        self.booting -= 1
        tracker = self.cluster.add_worker(vm, with_datanode=False)
        self.workers.append(tracker)
        self.scheduler.attach_tracker(tracker)

    def shrink(self, n: int = 1) -> int:
        """Gracefully retire up to ``n`` workers (youngest first);
        returns how many drains were initiated."""
        stopped = 0
        for tracker in reversed(self.workers):
            if stopped >= n or self.size <= self.min_size:
                break
            if tracker.draining:
                continue
            tracker.draining = True
            self.sim.process(self._drain_and_retire(tracker),
                             name=f"elastic:drain:{tracker.name}")
            stopped += 1
        if stopped:
            # Parked slot workers re-check draining on wake-up.
            self.scheduler._signal("map")
            self.scheduler._signal("reduce")
        return stopped

    def _drain_and_retire(self, tracker):
        while not self.scheduler.tracker_quiescent(tracker):
            yield self.sim.timeout(self.quiescence_poll_s)
        self.workers = [t for t in self.workers if t is not tracker]
        self.cluster.retire_worker(tracker)
        self.retired += 1
