"""Declarative cluster specification.

:class:`ClusterSpec` replaces hand-built index-list placements: callers
say *what* cluster they want — how many VMs, over which topology, packed
or spread — and :meth:`VHadoopPlatform.provision_cluster
<repro.platform.vhadoop.VHadoopPlatform.provision_cluster>` resolves it
against the datacenter it runs on.  The legacy helpers
(``normal_placement`` & co.) survive as deprecated shims over the
equivalent specs.

Layouts
-------
``single``
    every VM on one host (the paper's *normal* case);
``packed``
    contiguous fill — host 0 gets the first ``vms_per_host`` VMs, host 1
    the next, ... (the paper's *cross-domain* split, and the natural
    rack-locality layout for multi-rack topologies);
``spread``
    round-robin across hosts (the *balanced* growth pattern of Figs. 6-7).

Named overrides pin individual VMs to explicit hosts on top of any
layout: ``ClusterSpec.packed(16, hosts=2, pin={0: 1})`` puts the master
on host 1 while the rest fill contiguously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro.config import HadoopConfig, TopologySpec, VMConfig
from repro.errors import ConfigError
from repro.platform.provisioning import Placement

_LAYOUTS = ("single", "packed", "spread")


@dataclass(frozen=True)
class ClusterSpec:
    """What cluster to build, declaratively.

    Resolve against a concrete datacenter with :meth:`placement`; most
    callers go through the named constructors (:meth:`single_host`,
    :meth:`packed`, :meth:`spread`, :meth:`racked`).
    """

    n_vms: int
    layout: str = "packed"
    #: Use only the first ``hosts`` machines (``None`` = all available).
    hosts: Optional[int] = None
    #: Host index for the ``single`` layout.
    host: int = 0
    #: Declarative shape the spec was built from (sets ``vms_per_host``
    #: for the packed layout; informational otherwise).
    topology: Optional[TopologySpec] = None
    #: Placement label recorded in traces (defaults per layout).
    label: Optional[str] = None
    #: Per-cluster VM template / Hadoop config overrides.
    vm: Optional[VMConfig] = None
    hadoop: Optional[HadoopConfig] = None
    #: Named overrides: ``(vm_index, host_index)`` pins applied on top of
    #: the layout.
    pin: tuple[tuple[int, int], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.n_vms < 1:
            raise ConfigError("a ClusterSpec needs at least one VM")
        if self.layout not in _LAYOUTS:
            raise ConfigError(f"unknown layout {self.layout!r}; "
                              f"expected one of {_LAYOUTS}")
        if self.hosts is not None and self.hosts < 1:
            raise ConfigError("hosts must be >= 1")
        if isinstance(self.pin, Mapping):  # accept dicts for convenience
            object.__setattr__(self, "pin",
                               tuple(sorted(self.pin.items())))
        for vm_index, host_index in self.pin:
            if vm_index < 0 or vm_index >= self.n_vms:
                raise ConfigError(f"pin references VM {vm_index} but the "
                                  f"spec has {self.n_vms} VMs")
            if host_index < 0:
                raise ConfigError("pinned host index must be >= 0")

    # -- named constructors ------------------------------------------------
    @classmethod
    def single_host(cls, n_vms: int, host: int = 0, **kw) -> "ClusterSpec":
        """All VMs on one host (the paper's 'normal' layout)."""
        return cls(n_vms=n_vms, layout="single", host=host, **kw)

    @classmethod
    def packed(cls, n_vms: int, hosts: Optional[int] = None,
               **kw) -> "ClusterSpec":
        """Contiguous equal split over ``hosts`` machines (the paper's
        'cross-domain' layout)."""
        return cls(n_vms=n_vms, layout="packed", hosts=hosts, **kw)

    @classmethod
    def spread(cls, n_vms: int, hosts: Optional[int] = None,
               **kw) -> "ClusterSpec":
        """Round-robin over ``hosts`` machines (the 'balanced' layout)."""
        return cls(n_vms=n_vms, layout="spread", hosts=hosts, **kw)

    @classmethod
    def racked(cls, topology: Union[TopologySpec, str],
               n_vms: Optional[int] = None, layout: str = "packed",
               **kw) -> "ClusterSpec":
        """A cluster over a declarative topology (``TopologySpec`` or its
        ``"RxHxV"`` string form); defaults to filling it completely."""
        topo = (TopologySpec.parse(topology) if isinstance(topology, str)
                else topology)
        return cls(n_vms=n_vms if n_vms is not None else topo.n_vms,
                   layout=layout, topology=topo, **kw)

    # -- resolution --------------------------------------------------------
    @property
    def resolved_label(self) -> str:
        if self.label is not None:
            return self.label
        if self.topology is not None:
            return f"{self.topology.spec_str()}-{self.layout}"
        return {"single": "normal", "packed": "cross-domain",
                "spread": "balanced"}[self.layout]

    def placement(self, n_hosts: int) -> Placement:
        """Resolve to a concrete VM→host assignment on an
        ``n_hosts``-machine datacenter."""
        if n_hosts < 1:
            raise ConfigError("need at least one host")
        hosts = self.hosts if self.hosts is not None else n_hosts
        if hosts > n_hosts:
            raise ConfigError(f"spec wants {hosts} hosts but the "
                              f"datacenter has only {n_hosts}")
        if self.layout == "single":
            assignment = [self.host] * self.n_vms
        elif self.layout == "spread":
            assignment = [i % hosts for i in range(self.n_vms)]
        else:  # packed
            if self.topology is not None:
                per_host = self.topology.vms_per_host
            else:
                per_host = -(-self.n_vms // hosts)  # ceil division
            assignment = [min(i // per_host, hosts - 1)
                          for i in range(self.n_vms)]
        for vm_index, host_index in self.pin:
            assignment[vm_index] = host_index
        return Placement(self.resolved_label, tuple(assignment))
