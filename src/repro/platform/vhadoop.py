"""VHadoopPlatform: the Fig. 1 facade.

The paper's execution flow:

1. the Machine Learning Algorithm Library sends a cluster request;
2. the Virtualization Module starts a hadoop virtual cluster;
3. the Hadoop Module configures master and workers;
4. input data is uploaded to HDFS;
5–7. the master assigns maps/reduces and the workers run them;
8. output is collected;
9. the nmon Monitor watches every VM throughout, and the MapReduce Tuner
   adjusts the configuration from the monitoring data.

:class:`VHadoopPlatform` implements steps 1–8 directly (provision →
upload → run_job → collect); the monitor and tuner attach through
:meth:`attach_monitor` from :mod:`repro.monitor` / :mod:`repro.tuner`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.config import HadoopConfig, PlatformConfig, VMConfig
from repro.errors import ConfigError
from repro.hdfs.client import default_sizeof
from repro.mapreduce.job import Job
from repro.mapreduce.runner import JobReport, MapReduceRunner
from repro.platform.cluster import HadoopVirtualCluster
from repro.platform.provisioning import Placement, validate_placement
from repro.platform.spec import ClusterSpec
from repro.telemetry import events as EV
from repro.virt.datacenter import Datacenter


class VHadoopPlatform:
    """Top-level entry point of the reproduction."""

    def __init__(self, config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self.datacenter = Datacenter(self.config)
        self.clusters: dict[str, HadoopVirtualCluster] = {}
        self.runners: dict[str, MapReduceRunner] = {}

    # -- step 1-3: provision -----------------------------------------------
    def provision_cluster(self, name: str,
                          spec: "ClusterSpec | Placement",
                          vm_config: Optional[VMConfig] = None,
                          hadoop_config: Optional[HadoopConfig] = None,
                          boot: bool = False) -> HadoopVirtualCluster:
        """Create a hadoop virtual cluster: VM 0 is the namenode/master,
        the rest are datanode/workers (paper: n-node = 1 + (n-1)).

        ``spec`` is normally a declarative :class:`ClusterSpec`, resolved
        here against this datacenter's machines; a pre-resolved
        :class:`Placement` is accepted for low-level callers.  Per-spec
        ``vm``/``hadoop`` configs apply unless overridden by the explicit
        keyword arguments.

        ``boot=True`` simulates the NFS image fetch and guest boot for every
        VM; the default places the cluster already running, which is how
        every steady-state experiment in the paper starts.
        """
        if name in self.clusters:
            raise ConfigError(f"cluster {name!r} already exists")
        if isinstance(spec, ClusterSpec):
            placement = spec.placement(len(self.datacenter.machines))
            vm_config = vm_config or spec.vm
            hadoop_config = hadoop_config or spec.hadoop
        else:
            placement = spec
        if placement.n_vms < 2:
            raise ConfigError("a cluster needs >= 2 VMs (master + worker)")
        validate_placement(placement, self.datacenter.machines)
        vms = []
        for i in range(placement.n_vms):
            host = self.datacenter.machine(placement.host_of(i))
            vms.append(self.datacenter.create_vm(
                f"{name}-vm{i:02d}", host, config=vm_config))
        if boot:
            events = [self.datacenter.boot_vm(vm) for vm in vms]
            gate = self.datacenter.sim.all_of(events)
            self.datacenter.sim.run_until(gate)
        else:
            for vm in vms:
                self.datacenter.instant_boot(vm)
        cluster = HadoopVirtualCluster(name, self.datacenter, vms[0], vms[1:],
                                       config=hadoop_config)
        self.clusters[name] = cluster
        self.runners[name] = MapReduceRunner(cluster)
        self.datacenter.tracer.emit(
            self.datacenter.now, EV.CLUSTER_PROVISIONED, name,
            nodes=cluster.n_nodes, placement=placement.label)
        return cluster

    def runner(self, cluster: HadoopVirtualCluster) -> MapReduceRunner:
        return self.runners[cluster.name]

    # -- step 4: upload ----------------------------------------------------------
    def upload(self, cluster: HadoopVirtualCluster, path: str,
               records: Sequence[Any],
               sizeof: Callable[[Any], int] = default_sizeof,
               timed: bool = True) -> None:
        """Put input data into the cluster's HDFS from the master VM.

        ``timed=False`` stages the data without charging simulated time
        (for experiments that measure only job runtime, the paper's usual
        protocol)."""
        if timed:
            event = cluster.dfs.write_file(cluster.master, path, records,
                                           sizeof=sizeof)
            self.datacenter.sim.run_until(event)
            assert event.triggered
        else:
            self._stage_untimed(cluster, path, records, sizeof)

    def _stage_untimed(self, cluster, path, records, sizeof) -> None:
        namenode = cluster.namenode
        f = namenode.create_file(path)
        client = cluster.dfs
        for block, payload in client._pack_blocks(records, sizeof):
            targets = namenode.choose_write_targets(
                cluster.master.name, cluster.config.dfs_replication)
            namenode.block_store.put(block, payload)
            namenode.commit_block(f, block, targets)

    # -- steps 5-8: run and collect ---------------------------------------------
    def run_job(self, cluster: HadoopVirtualCluster, job: Job) -> JobReport:
        """Run a job to completion; returns its report."""
        return self.runners[cluster.name].run_to_completion(job)

    def submit_jobs(self, cluster: HadoopVirtualCluster,
                    jobs: Sequence[Any], policy: Any = None
                    ) -> tuple[list[JobReport], Any]:
        """Run several jobs *concurrently* on one cluster under a scheduler
        policy (default FIFO).

        ``jobs`` is a sequence of :class:`Job` or ``(Job, pool)`` pairs.
        Returns ``(job reports in submission order, SchedulerReport)``.
        """
        from repro.scheduler import JobScheduler
        scheduler = JobScheduler(cluster, policy=policy,
                                 runner=self.runners[cluster.name])
        events = []
        for item in jobs:
            job, pool = item if isinstance(item, tuple) else (item, "default")
            events.append(scheduler.submit(job, pool=pool))
        sched_report = scheduler.run_all()
        return [event.value for event in events], sched_report

    def collect(self, cluster: HadoopVirtualCluster, report: JobReport
                ) -> list[tuple[Any, Any]]:
        """Step 8: gather the job's output records."""
        return self.runners[cluster.name].read_output(report)

    # -- shortcuts ------------------------------------------------------------
    @property
    def sim(self):
        return self.datacenter.sim

    @property
    def tracer(self):
        return self.datacenter.tracer

    @property
    def telemetry(self):
        """The datacenter-wide :class:`~repro.telemetry.Telemetry` handle."""
        return self.datacenter.telemetry
