"""The vHadoop platform: provisioning, clusters, and the Fig. 1 facade."""

from repro.platform.cluster import HadoopVirtualCluster
from repro.platform.provisioning import (Placement, cross_domain_placement,
                                         normal_placement, balanced_placement)
from repro.platform.spec import ClusterSpec
from repro.platform.vhadoop import VHadoopPlatform

__all__ = [
    "ClusterSpec",
    "HadoopVirtualCluster",
    "Placement",
    "VHadoopPlatform",
    "balanced_placement",
    "cross_domain_placement",
    "normal_placement",
]
