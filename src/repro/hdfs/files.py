"""Logical files and input splits."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.hdfs.block import Block


@dataclass
class DfsFile:
    """A file in the simulated namespace: an ordered list of blocks."""

    path: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(b.size for b in self.blocks)

    @property
    def n_records(self) -> int:
        return sum(b.n_records for b in self.blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)


@dataclass(frozen=True)
class FileSplit:
    """One map task's input: a block of a file (splits == blocks here,
    which is Hadoop's default when block size == split size)."""

    path: str
    block: Block
    index: int

    @property
    def size(self) -> int:
        return self.block.size
