"""Replication repair: HDFS's answer to datanode loss.

The paper leans on exactly this mechanism in its dynamic analysis:
"The unavailable service during the period of downtime can be restored by
re-sending the requests or obtaining from other available data block
copies" (Section III-C).  When a datanode dies, the NameNode notices the
missing replicas and re-replicates every under-replicated block from a
surviving holder to a fresh target.

:class:`ReplicationRepairer` performs one repair sweep as a simulation
process: for each under-replicated block it charges a disk read at the
source, a network transfer, and a disk write at the new target — the same
data path as a client write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import ReplicationError
from repro.hdfs.block import Block
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.sim import Simulator, Tracer
from repro.telemetry import events as EV
from repro.sim.kernel import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.net import NetworkFabric


@dataclass
class RepairReport:
    """Outcome of one repair sweep."""

    started_at: float
    finished_at: float = 0.0
    repaired: list[str] = field(default_factory=list)      # block ids
    unrecoverable: list[str] = field(default_factory=list)  # no live replica
    bytes_copied: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


def mark_datanode_dead(namenode: NameNode, datanode: DataNode) -> list[Block]:
    """Remove a dead datanode from the cluster metadata.

    Returns the blocks that lost a replica (and therefore need repair).
    """
    if datanode in namenode.datanodes:
        namenode.datanodes.remove(datanode)
    lost: list[Block] = []
    for block_id, holders in namenode.replicas.items():
        if datanode in holders:
            holders.remove(datanode)
            lost.append(datanode.blocks.get(block_id)
                        or _find_block(namenode, block_id))
    return [b for b in lost if b is not None]


def _find_block(namenode: NameNode, block_id: str) -> Optional[Block]:
    for f in namenode.files.values():
        for block in f.blocks:
            if block.block_id == block_id:
                return block
    return None


def under_replicated(namenode: NameNode, replication: int
                     ) -> list[tuple[Block, int]]:
    """Blocks with fewer live replicas than the (clamped) target."""
    target = min(replication, len(namenode.datanodes))
    found = []
    for f in namenode.files.values():
        for block in f.blocks:
            live = len(namenode.replicas.get(block.block_id, []))
            if live < target:
                found.append((block, live))
    return found


class ReplicationRepairer:
    """Re-replication sweeps over one namespace."""

    def __init__(self, sim: Simulator, fabric: "NetworkFabric",
                 namenode: NameNode, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.fabric = fabric
        self.namenode = namenode
        self.tracer = tracer or Tracer(enabled=False)

    def repair(self, replication: int) -> Event:
        """Run one sweep; event value is a :class:`RepairReport`."""
        return self.sim.process(self._repair_proc(replication),
                                name="hdfs:repair")

    def _repair_proc(self, replication: int):
        report = RepairReport(started_at=self.sim.now)
        for block, live in under_replicated(self.namenode, replication):
            holders = self.namenode.replicas.get(block.block_id, [])
            if not holders:
                report.unrecoverable.append(block.block_id)
                self.tracer.emit(self.sim.now, EV.HDFS_REPAIR_LOST,
                                 block.block_id)
                continue
            target = min(replication, len(self.namenode.datanodes))
            while len(self.namenode.replicas[block.block_id]) < target:
                yield from self._copy_replica(block, report)
        report.finished_at = self.sim.now
        self.tracer.emit(self.sim.now, EV.HDFS_REPAIR_DONE, "namenode",
                         repaired=len(report.repaired),
                         unrecoverable=len(report.unrecoverable))
        return report

    def _copy_replica(self, block: Block, report: RepairReport):
        holders = self.namenode.replicas[block.block_id]
        source = holders[0]
        candidates = [dn for dn in self.namenode.datanodes
                      if dn not in holders]
        if not candidates:
            raise ReplicationError(
                f"no candidate datanode for {block.block_id}")
        # Prefer an off-host target, mirroring the write placement policy.
        off_host = [dn for dn in candidates
                    if dn.vm.host is not source.vm.host]
        target = (off_host or candidates)[0]
        pending = [source.read_from_disk(block),
                   target.write_to_disk(block)]
        if source.vm.node is not target.vm.node:
            pending.append(self.fabric.transfer(
                source.vm.node, target.vm.node, block.size,
                name=f"hdfs:repair:{block.block_id}"))
        yield self.sim.all_of(pending)
        holders.append(target)
        target.add_replica(block)
        report.repaired.append(block.block_id)
        report.bytes_copied += block.size
