"""Replication repair: HDFS's answer to datanode loss.

The paper leans on exactly this mechanism in its dynamic analysis:
"The unavailable service during the period of downtime can be restored by
re-sending the requests or obtaining from other available data block
copies" (Section III-C).  When a datanode dies, the NameNode notices the
missing replicas and re-replicates every under-replicated block from a
surviving holder to a fresh target.

:class:`ReplicationRepairer` performs one repair sweep as a simulation
process: for each under-replicated block it charges a disk read at the
source, a network transfer, and a disk write at the new target — the same
data path as a client write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.hdfs.block import Block
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.sim import Simulator, Tracer
from repro.telemetry import events as EV
from repro.sim.kernel import Event
from repro.virt.vm import VMState

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import HadoopConfig
    from repro.net import NetworkFabric


@dataclass
class RepairReport:
    """Outcome of one repair sweep."""

    started_at: float
    finished_at: float = 0.0
    repaired: list[str] = field(default_factory=list)      # block ids
    unrecoverable: list[str] = field(default_factory=list)  # no live replica
    bytes_copied: float = 0.0
    #: The replication factor the sweep aimed for (as configured, before
    #: any clamping to the surviving cluster size).
    configured_replication: int = 0
    #: Blocks still below ``configured_replication`` when the sweep ended,
    #: mapped to how many replicas they are short.  A sweep on a shrunken
    #: cluster can "finish" with every block at the clamped target yet
    #: still under-replicated relative to the configuration — this field
    #: makes that shortfall visible instead of silently reporting a fully
    #: repaired cluster.
    shortfall: dict[str, int] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    @property
    def fully_replicated(self) -> bool:
        """True only if every block meets the *configured* replication."""
        return not self.shortfall and not self.unrecoverable


def mark_datanode_dead(namenode: NameNode, datanode: DataNode) -> list[Block]:
    """Remove a dead datanode from the cluster metadata.

    Returns the blocks that lost a replica (and therefore need repair).
    """
    if datanode in namenode.datanodes:
        namenode.datanodes.remove(datanode)
    lost: list[Block] = []
    for block_id, holders in namenode.replicas.items():
        if datanode in holders:
            holders.remove(datanode)
            lost.append(datanode.blocks.get(block_id)
                        or _find_block(namenode, block_id))
    return [b for b in lost if b is not None]


def _find_block(namenode: NameNode, block_id: str) -> Optional[Block]:
    for f in namenode.files.values():
        for block in f.blocks:
            if block.block_id == block_id:
                return block
    return None


def under_replicated(namenode: NameNode, replication: int
                     ) -> list[tuple[Block, int]]:
    """Blocks with fewer live replicas than the (clamped) target."""
    target = min(replication, len(namenode.datanodes))
    found = []
    for f in namenode.files.values():
        for block in f.blocks:
            live = len(namenode.replicas.get(block.block_id, []))
            if live < target:
                found.append((block, live))
    return found


class ReplicationRepairer:
    """Re-replication sweeps over one namespace."""

    def __init__(self, sim: Simulator, fabric: "NetworkFabric",
                 namenode: NameNode, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.fabric = fabric
        self.namenode = namenode
        self.tracer = tracer or Tracer(enabled=False)

    def repair(self, replication: int) -> Event:
        """Run one sweep; event value is a :class:`RepairReport`."""
        return self.sim.process(self._repair_proc(replication),
                                name="hdfs:repair")

    def _repair_proc(self, replication: int):
        report = RepairReport(started_at=self.sim.now,
                              configured_replication=replication)
        for block, live in under_replicated(self.namenode, replication):
            holders = self.namenode.replicas.get(block.block_id, [])
            if not holders:
                self._mark_lost(block, report)
                continue
            # The achievable target is clamped to the surviving cluster
            # size; the gap to the configured replication is reported in
            # ``report.shortfall`` below rather than silently dropped.
            target = min(replication, len(self.namenode.datanodes))
            while len(self.namenode.replicas[block.block_id]) < target:
                progressed = yield from self._copy_replica(block, report)
                if not progressed:
                    break
        self._record_shortfall(report, replication)
        report.finished_at = self.sim.now
        self.tracer.emit(self.sim.now, EV.HDFS_REPAIR_DONE, "namenode",
                         repaired=len(report.repaired),
                         unrecoverable=len(report.unrecoverable),
                         shortfall=len(report.shortfall))
        return report

    def _record_shortfall(self, report: RepairReport, replication: int) -> None:
        for f in self.namenode.files.values():
            for block in f.blocks:
                live = len(self.namenode.replicas.get(block.block_id, []))
                if live < replication:
                    report.shortfall[block.block_id] = replication - live

    def _mark_lost(self, block: Block, report: RepairReport) -> None:
        if block.block_id not in report.unrecoverable:
            report.unrecoverable.append(block.block_id)
            self.tracer.emit(self.sim.now, EV.HDFS_REPAIR_LOST,
                             block.block_id)

    @staticmethod
    def _is_live(dn: DataNode) -> bool:
        state = getattr(dn.vm, "state", None)
        return state is None or state in (VMState.RUNNING, VMState.MIGRATING)

    def _copy_replica(self, block: Block, report: RepairReport):
        """Copy one replica; returns True if a replica was added.

        Datanodes can die *mid-sweep* under fault injection, so both the
        source and the target are picked from the currently-live holders
        and datanodes (a dead holder may still sit in a stale ``holders``
        list until the monitor reaps it).  When no live source remains the
        block is degraded to unrecoverable instead of raising; when no
        live target exists the block is simply left short (the shortfall
        is recorded at the end of the sweep).
        """
        holders = self.namenode.replicas[block.block_id]
        live_sources = [dn for dn in holders if self._is_live(dn)]
        if not live_sources:
            self._mark_lost(block, report)
            return False
        source = live_sources[0]
        candidates = [dn for dn in self.namenode.datanodes
                      if dn not in holders and self._is_live(dn)]
        if not candidates:
            return False
        # Prefer a target that restores rack diversity (all surviving
        # replicas on one rack -> copy off-rack), then fall back to
        # off-host, mirroring the write placement policy.  Flat/one-rack
        # topologies skip straight to the off-host preference.
        target = None
        if self.namenode._is_multi_rack(candidates + live_sources):
            holder_racks = {self.namenode._rack_of(dn)
                            for dn in live_sources}
            if len(holder_racks) == 1:
                off_rack = [dn for dn in candidates
                            if self.namenode._rack_of(dn)
                            not in holder_racks]
                if off_rack:
                    target = off_rack[0]
        if target is None:
            off_host = [dn for dn in candidates
                        if dn.vm.host is not source.vm.host]
            target = (off_host or candidates)[0]
        pending = [source.read_from_disk(block),
                   target.write_to_disk(block)]
        if source.vm.node is not target.vm.node:
            pending.append(self.fabric.transfer(
                source.vm.node, target.vm.node, block.size,
                name=f"hdfs:repair:{block.block_id}"))
        yield self.sim.all_of(pending)
        holders.append(target)
        target.add_replica(block)
        report.repaired.append(block.block_id)
        report.bytes_copied += block.size
        return True


class ReplicationMonitor:
    """NameNode-triggered background re-replication.

    One watcher process per datanode waits on its VM's
    :meth:`~repro.virt.vm.VirtualMachine.failure_event` (pending events
    occupy no heap slot, so a bare ``sim.run()`` still drains).  When a VM
    fails, the watcher waits ``replication_repair_delay_s`` (coalescing
    correlated failures, e.g. a whole host going down), reaps the datanode
    from the namespace, and kicks a repair sweep.  Concurrent death
    notifications fold into one extra sweep rather than racing.
    """

    def __init__(self, sim: Simulator, fabric: "NetworkFabric",
                 namenode: NameNode, config: "HadoopConfig",
                 tracer: Optional[Tracer] = None, metrics=None):
        self.sim = sim
        self.fabric = fabric
        self.namenode = namenode
        self.config = config
        self.tracer = tracer or Tracer(enabled=False)
        self.metrics = metrics
        self.repairer = ReplicationRepairer(sim, fabric, namenode,
                                            tracer=self.tracer)
        self.reports: list[RepairReport] = []
        self._watched: set[str] = set()
        #: Correlated failures (host/rack kills) arm many identical
        #: repair-delay timers at one instant; the wheel folds them into
        #: one queue entry without changing the simulated timeline.
        self._wheel = sim.timer_wheel()
        self._sweeping = False
        self._resweep = False

    def sweep(self) -> None:
        """Kick a background repair sweep (coalesced while one runs)."""
        self.sim.process(self._sweep_proc(), name="hdfs:sweep")

    def watch(self, datanode: DataNode) -> None:
        """Arm (or re-arm, after a rejoin) the watcher for one datanode."""
        if datanode.vm.name in self._watched:
            return
        self._watched.add(datanode.vm.name)
        self.sim.process(self._watch_proc(datanode),
                         name=f"hdfs:watch:{datanode.vm.name}")

    def _watch_proc(self, datanode: DataNode):
        vm = datanode.vm
        yield vm.failure_event()
        self._watched.discard(vm.name)
        delay = self.config.replication_repair_delay_s
        if delay > 0:
            yield self._wheel.sleep(delay)
        if vm.state is not VMState.FAILED:
            return  # rejoined before the expiry window elapsed
        if datanode not in self.namenode.datanodes:
            return  # already reaped (manual fail_worker path)
        lost = mark_datanode_dead(self.namenode, datanode)
        self.tracer.emit(self.sim.now, EV.RECOVERY_DATANODE_DEAD, vm.name,
                         lost_blocks=len(lost))
        if self.metrics is not None:
            self.metrics.counter(
                "recovery.datanodes.dead",
                "datanodes reaped by the replication monitor").inc()
        yield from self._sweep_proc()

    def _sweep_proc(self):
        if self._sweeping:
            self._resweep = True
            return
        self._sweeping = True
        try:
            while True:
                self._resweep = False
                self.tracer.emit(self.sim.now, EV.RECOVERY_REPLICATION_START,
                                 "namenode")
                report = yield self.repairer.repair(
                    self.config.dfs_replication)
                self.reports.append(report)
                self.tracer.emit(self.sim.now, EV.RECOVERY_REPLICATION_DONE,
                                 "namenode",
                                 repaired=len(report.repaired),
                                 unrecoverable=len(report.unrecoverable),
                                 shortfall=len(report.shortfall))
                if self.metrics is not None:
                    self.metrics.counter(
                        "recovery.blocks.repaired",
                        "block replicas restored by auto repair"
                    ).inc(len(report.repaired))
                if not self._resweep:
                    return
        finally:
            self._sweeping = False
