"""Blocks and the block payload store.

A :class:`Block` is pure metadata: identity, byte size, record count.  The
actual payload — a list of real records — lives exactly once in the
:class:`BlockStore`, no matter how many datanodes hold replicas.  This keeps
the simulation functional (jobs read real data) without multiplying memory
by the replication factor.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import BlockNotFound

_block_ids = itertools.count()


def next_block_id() -> str:
    return f"blk_{next(_block_ids):08d}"


@dataclass(frozen=True)
class Block:
    """Metadata of one HDFS block."""

    block_id: str
    size: int          # serialized bytes (simulated)
    n_records: int

    def __post_init__(self) -> None:
        if self.size < 0 or self.n_records < 0:
            raise ValueError("block size and record count must be >= 0")


class BlockStore:
    """Single-copy payload storage for all blocks of a cluster."""

    def __init__(self) -> None:
        self._payloads: dict[str, tuple[Any, ...]] = {}

    def put(self, block: Block, records: Sequence[Any]) -> None:
        self._payloads[block.block_id] = tuple(records)

    def get(self, block: Block) -> tuple[Any, ...]:
        try:
            return self._payloads[block.block_id]
        except KeyError:
            raise BlockNotFound(f"no payload for {block.block_id}") from None

    def drop(self, block: Block) -> None:
        self._payloads.pop(block.block_id, None)

    def __contains__(self, block: Block) -> bool:
        return block.block_id in self._payloads

    def __len__(self) -> int:
        return len(self._payloads)
