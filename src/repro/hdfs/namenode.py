"""The NameNode: namespace and block placement.

Placement follows Hadoop's default policy.  On multi-rack topologies it
is fully rack-aware:

1. first replica on the writer's own datanode when it has one, otherwise a
   random datanode;
2. second replica on a datanode of a *different rack* when one exists
   (falling back to a different host);
3. third replica on the second replica's rack but a different node
   (Hadoop's default `BlockPlacementPolicy`);
4. further replicas on random remaining datanodes.

On flat/one-rack topologies (the paper's testbed) physical hosts stand in
for racks — the host boundary *is* the interesting topology boundary —
and the decision sequence (including every RNG draw) is bit-identical to
the pre-rack model.

Replica choice for reads prefers the closest copy: writer-local datanode >
same-host datanode > same-rack datanode > any — HDFS's `NetworkTopology`
distances.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import (FileAlreadyExists, FileNotFoundInDfs,
                          ReplicationError)
from repro.hdfs.block import Block, BlockStore
from repro.hdfs.datanode import DataNode
from repro.hdfs.files import DfsFile, FileSplit


class NameNode:
    """Namespace plus placement decisions (control plane only)."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self.files: dict[str, DfsFile] = {}
        self.datanodes: list[DataNode] = []
        self.block_store = BlockStore()
        #: block_id -> datanodes holding a replica
        self.replicas: dict[str, list[DataNode]] = {}
        self._rng = rng or np.random.default_rng(0)

    # -- membership ----------------------------------------------------------
    def register_datanode(self, datanode: DataNode) -> None:
        self.datanodes.append(datanode)

    def datanode_of(self, vm_name: str) -> Optional[DataNode]:
        for dn in self.datanodes:
            if dn.vm.name == vm_name:
                return dn
        return None

    # -- namespace ----------------------------------------------------------
    def create_file(self, path: str) -> DfsFile:
        if path in self.files:
            raise FileAlreadyExists(path)
        f = DfsFile(path)
        self.files[path] = f
        return f

    def get_file(self, path: str) -> DfsFile:
        try:
            return self.files[path]
        except KeyError:
            raise FileNotFoundInDfs(path) from None

    def exists(self, path: str) -> bool:
        return path in self.files

    def delete_file(self, path: str) -> None:
        f = self.files.pop(path, None)
        if f is None:
            raise FileNotFoundInDfs(path)
        for block in f.blocks:
            for dn in self.replicas.pop(block.block_id, []):
                dn.drop_replica(block)
            self.block_store.drop(block)

    def list_files(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self.files if p.startswith(prefix))

    def splits(self, path: str) -> list[FileSplit]:
        f = self.get_file(path)
        return [FileSplit(path=path, block=b, index=i)
                for i, b in enumerate(f.blocks)]

    # -- placement ----------------------------------------------------------
    @staticmethod
    def _is_live(dn: DataNode) -> bool:
        """A datanode whose VM can still serve I/O.

        A crashed VM may linger in ``self.datanodes`` until the recovery
        monitor's expiry window elapses; placement must never pick it.
        """
        from repro.virt.vm import VMState
        state = getattr(dn.vm, "state", None)
        return state is None or state in (VMState.RUNNING, VMState.MIGRATING)

    @staticmethod
    def _rack_of(dn: DataNode):
        """The datanode's rack (``None`` on flat topologies)."""
        host = dn.vm.host
        return host.rack if host is not None else None

    @classmethod
    def _is_multi_rack(cls, pool: Sequence[DataNode]) -> bool:
        """More than one distinct rack among the datanodes."""
        racks = {cls._rack_of(dn) for dn in pool}
        racks.discard(None)
        return len(racks) > 1

    def choose_write_targets(self, writer_vm_name: str, replication: int
                             ) -> list[DataNode]:
        """Pick ``replication`` *live* datanodes for a new block."""
        if replication < 1:
            raise ReplicationError("replication must be >= 1")
        pool = [dn for dn in self.datanodes if self._is_live(dn)]
        if not pool:
            raise ReplicationError("no live datanodes registered")
        # HDFS under-replicates (with a warning) when the cluster is smaller
        # than the requested factor — a 2-node cluster stores one replica.
        replication = min(replication, len(pool))
        targets: list[DataNode] = []
        local = self.datanode_of(writer_vm_name)
        if local is not None and self._is_live(local):
            targets.append(local)
        else:
            targets.append(self._pick(pool, exclude=targets))
        if self._is_multi_rack(pool):
            self._add_rack_aware_targets(pool, targets, replication)
        elif len(targets) < replication:
            # Flat topology: hosts stand in for racks (bit-identical to
            # the pre-rack policy, same RNG draw sequence).
            first_host = targets[0].vm.host
            off_host = [dn for dn in pool
                        if dn.vm.host is not first_host and dn not in targets]
            if off_host:
                targets.append(self._pick(off_host, exclude=targets))
        while len(targets) < replication:
            targets.append(self._pick(pool, exclude=targets))
        return targets

    def _add_rack_aware_targets(self, pool: Sequence[DataNode],
                                targets: list[DataNode],
                                replication: int) -> None:
        """Hadoop's default rack policy for replicas 2 and 3: second
        replica off-rack, third on the second's rack but off-node."""
        if len(targets) < replication:
            first_rack = self._rack_of(targets[0])
            off_rack = [dn for dn in pool
                        if self._rack_of(dn) is not first_rack
                        and dn not in targets]
            if off_rack:
                targets.append(self._pick(off_rack, exclude=targets))
            else:  # no other rack has capacity: degrade to off-host
                first_host = targets[0].vm.host
                off_host = [dn for dn in pool
                            if dn.vm.host is not first_host
                            and dn not in targets]
                if off_host:
                    targets.append(self._pick(off_host, exclude=targets))
        if len(targets) < replication and len(targets) >= 2:
            second_rack = self._rack_of(targets[1])
            same_rack = [dn for dn in pool
                         if self._rack_of(dn) is second_rack
                         and dn not in targets]
            if same_rack:
                targets.append(self._pick(same_rack, exclude=targets))

    def choose_read_replica(self, reader_vm_name: str, block: Block,
                            prefer_local: bool = True) -> DataNode:
        """A datanode holding the block.

        ``prefer_local=True`` is HDFS's NetworkTopology choice (same node >
        same host > any); ``prefer_local=False`` picks a random replica —
        the effective behaviour when the reading task was scheduled without
        regard to this block's placement (TestDFSIO's read pattern).
        """
        holders = self.replicas.get(block.block_id, [])
        if not holders:
            raise ReplicationError(f"no replica of {block.block_id}")
        live = [dn for dn in holders if self._is_live(dn)]
        if not live:
            raise ReplicationError(
                f"no live replica of {block.block_id}")
        holders = live
        if prefer_local:
            reader = self.datanode_of(reader_vm_name)
            if reader is not None and reader in holders:
                return reader
            if reader is not None:
                same_host = [dn for dn in holders
                             if dn.vm.host is reader.vm.host]
                if same_host:
                    return self._pick(same_host, exclude=[])
                reader_rack = self._rack_of(reader)
                if reader_rack is not None:
                    same_rack = [dn for dn in holders
                                 if self._rack_of(dn) is reader_rack]
                    if same_rack:
                        return self._pick(same_rack, exclude=[])
        return self._pick(holders, exclude=[])

    def commit_block(self, f: DfsFile, block: Block,
                     targets: Sequence[DataNode]) -> None:
        """Record a fully written block (called by the client)."""
        f.blocks.append(block)
        self.replicas[block.block_id] = list(targets)
        for dn in targets:
            dn.add_replica(block)

    def _pick(self, pool: Sequence[DataNode], exclude: Sequence[DataNode]
              ) -> DataNode:
        candidates = [dn for dn in pool if dn not in exclude]
        if not candidates:
            raise ReplicationError("datanode pool exhausted")
        return candidates[int(self._rng.integers(len(candidates)))]

    # -- stats -----------------------------------------------------------------
    def total_bytes(self) -> int:
        return sum(f.size for f in self.files.values())

    def replica_count(self, block: Block) -> int:
        return len(self.replicas.get(block.block_id, []))
