"""DfsClient: the data plane of the simulated HDFS.

Writes run the replication *pipeline*: the writer streams a block to the
first datanode, which forwards to the second, and so on.  Because the hops
stream concurrently, a block's write time is governed by the slowest hop
plus the replica disk writes; we model this by opening all hop transfers
and disk writes at once and waiting for them all.

Reads pick the closest replica (NameNode policy) and charge the source
disk plus the network hop to the reader.  A reader that is itself a holder
pays only its own disk.

All byte sizes are supplied by the caller through a ``sizeof`` function so
that datasets control their own serialized density (text vs vectors vs
100-byte TeraSort records).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, TYPE_CHECKING

from repro.config import HadoopConfig
from repro.hdfs.block import Block, next_block_id
from repro.hdfs.files import DfsFile
from repro.hdfs.namenode import NameNode
from repro.sim import Simulator, Tracer
from repro.sim.kernel import Event
from repro.telemetry import events as EV

if TYPE_CHECKING:  # pragma: no cover
    from repro.net import NetworkFabric
    from repro.virt.vm import VirtualMachine

#: Default serialized-size estimator: callers usually pass their own.
def default_sizeof(record: Any) -> int:
    if isinstance(record, (bytes, bytearray)):
        return len(record)
    if isinstance(record, str):
        return len(record.encode("utf-8", "ignore")) + 1
    return 64


class DfsClient:
    """File-level read/write API bound to one cluster."""

    def __init__(self, sim: Simulator, fabric: "NetworkFabric",
                 namenode: NameNode, config: HadoopConfig,
                 tracer: Optional[Tracer] = None, metrics=None):
        self.sim = sim
        self.fabric = fabric
        self.namenode = namenode
        self.config = config
        self.tracer = tracer or Tracer(enabled=False)
        self.metrics = metrics

    # -- write -------------------------------------------------------------
    def write_file(self, writer: "VirtualMachine", path: str,
                   records: Sequence[Any],
                   sizeof: Callable[[Any], int] = default_sizeof,
                   replication: Optional[int] = None) -> Event:
        """Write ``records`` as a new file; event value is the DfsFile.

        Records are packed into blocks of at most ``dfs.block.size``
        serialized bytes (at least one record per block).
        """
        return self.sim.process(
            self._write_proc(writer, path, records, sizeof, replication),
            name=f"dfs:write:{path}")

    def _pack_blocks(self, records: Sequence[Any],
                     sizeof: Callable[[Any], int]
                     ) -> list[tuple[Block, list[Any]]]:
        blocks: list[tuple[Block, list[Any]]] = []
        current: list[Any] = []
        current_bytes = 0
        limit = self.config.dfs_block_size
        for record in records:
            nbytes = sizeof(record)
            if current and current_bytes + nbytes > limit:
                blocks.append((Block(next_block_id(), current_bytes,
                                     len(current)), current))
                current, current_bytes = [], 0
            current.append(record)
            current_bytes += nbytes
        if current:
            blocks.append((Block(next_block_id(), current_bytes,
                                 len(current)), current))
        return blocks

    def _write_proc(self, writer, path, records, sizeof, replication):
        replication = replication or self.config.dfs_replication
        f = self.namenode.create_file(path)
        packed = self._pack_blocks(records, sizeof)
        span = self.tracer.begin_span(self.sim.now, EV.DFS_WRITE, path,
                                      writer=writer.name,
                                      blocks=len(packed))
        for block, payload in packed:
            yield from self._write_block(writer, f, block, payload,
                                         replication)
        self.tracer.end_span(span, self.sim.now, bytes=f.size)
        self.tracer.emit(self.sim.now, EV.DFS_FILE_WRITTEN, path,
                         blocks=len(packed), bytes=f.size)
        if self.metrics is not None:
            self.metrics.counter("hdfs.bytes.written",
                                 "file bytes committed to HDFS").inc(f.size)
            self.metrics.counter("hdfs.files.written",
                                 "files committed to HDFS").inc()
        return f

    def _write_block(self, writer, f: DfsFile, block: Block,
                     payload: Sequence[Any], replication: int):
        targets = self.namenode.choose_write_targets(writer.name, replication)
        pending = []
        # Pipeline hops: writer -> dn0 -> dn1 -> ... (concurrent streaming).
        previous = writer.node
        for dn in targets:
            if dn.vm.node is not previous:
                pending.append(self.fabric.transfer(
                    previous, dn.vm.node, block.size,
                    name=f"dfs:pipe:{block.block_id}"))
            pending.append(dn.write_to_disk(block))
            previous = dn.vm.node
        if pending:
            yield self.sim.all_of(pending)
        self.namenode.block_store.put(block, payload)
        self.namenode.commit_block(f, block, targets)

    def append_records(self, writer: "VirtualMachine", path: str,
                       records: Sequence[Any],
                       sizeof: Callable[[Any], int] = default_sizeof) -> Event:
        """Append records to an existing file as new blocks."""
        return self.sim.process(
            self._append_proc(writer, path, records, sizeof),
            name=f"dfs:append:{path}")

    def _append_proc(self, writer, path, records, sizeof):
        f = self.namenode.get_file(path)
        for block, payload in self._pack_blocks(records, sizeof):
            yield from self._write_block(writer, f, block, payload,
                                         self.config.dfs_replication)
        return f

    # -- read ---------------------------------------------------------------
    def read_block(self, reader: "VirtualMachine", block: Block,
                   prefer_local: bool = True) -> Event:
        """Read one block to ``reader``; event value is the payload tuple."""
        return self.sim.process(
            self._read_block_proc(reader, block, prefer_local),
            name=f"dfs:read:{block.block_id}")

    def _read_block_proc(self, reader, block: Block, prefer_local: bool = True):
        source = self.namenode.choose_read_replica(reader.name, block,
                                                   prefer_local=prefer_local)
        pending = [source.read_from_disk(block)]
        if source.vm.node is not reader.node:
            pending.append(self.fabric.transfer(
                source.vm.node, reader.node, block.size,
                name=f"dfs:fetch:{block.block_id}"))
        yield self.sim.all_of(pending)
        return self.namenode.block_store.get(block)

    def read_file(self, reader: "VirtualMachine", path: str,
                  prefer_local: bool = True) -> Event:
        """Read a whole file; event value is the tuple of all records."""
        return self.sim.process(self._read_file_proc(reader, path,
                                                     prefer_local),
                                name=f"dfs:read:{path}")

    def _read_file_proc(self, reader, path: str, prefer_local: bool = True):
        f = self.namenode.get_file(path)
        out: list[Any] = []
        for block in f.blocks:
            payload = yield self.read_block(reader, block,
                                            prefer_local=prefer_local)
            out.extend(payload)
        return tuple(out)

    # -- convenience ------------------------------------------------------------
    def peek_records(self, path: str) -> tuple[Any, ...]:
        """All records of a file without charging any simulated time
        (test/debug helper — the control plane looking at its own data)."""
        f = self.namenode.get_file(path)
        out: list[Any] = []
        for block in f.blocks:
            out.extend(self.namenode.block_store.get(block))
        return tuple(out)
