"""HDFS substrate: a functional simulator of the Hadoop Distributed File
System as configured by the paper (hadoop-0.20 era).

The namespace, block placement, replication and locality logic are real;
payloads are real Python records held once in simulator memory (replicas
are metadata).  Reads and writes charge the disk and network resources of
the VMs involved, so HDFS traffic contends with shuffle traffic and
migration streams — the contention the paper identifies as vHadoop's main
bottleneck.
"""

from repro.hdfs.block import Block, BlockStore
from repro.hdfs.datanode import DataNode
from repro.hdfs.files import DfsFile, FileSplit
from repro.hdfs.namenode import NameNode
from repro.hdfs.client import DfsClient

__all__ = ["Block", "BlockStore", "DataNode", "DfsClient", "DfsFile",
           "FileSplit", "NameNode"]
