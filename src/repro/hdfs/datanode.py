"""DataNodes.

A :class:`DataNode` runs on one VM and holds block *replicas* (metadata —
payloads live in the shared :class:`~repro.hdfs.block.BlockStore`).  Its
read/write primitives charge the VM's virtual disk, which fair-shares the
host's physical disk with every co-resident VM — one of the two contended
resources the paper blames for vHadoop's bottlenecks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import HdfsError
from repro.hdfs.block import Block
from repro.sim.kernel import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.virt.vm import VirtualMachine


class DataNode:
    """Block storage service on one VM."""

    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm
        self.blocks: dict[str, Block] = {}

    @property
    def name(self) -> str:
        return self.vm.name

    @property
    def used_bytes(self) -> int:
        return sum(b.size for b in self.blocks.values())

    def holds(self, block: Block) -> bool:
        return block.block_id in self.blocks

    def add_replica(self, block: Block) -> None:
        self.blocks[block.block_id] = block

    def drop_replica(self, block: Block) -> None:
        self.blocks.pop(block.block_id, None)

    def write_to_disk(self, block: Block) -> Event:
        """Charge the local-disk write of one replica."""
        return self.vm.disk_io(block.size, name=f"dfs:write:{block.block_id}")

    def read_from_disk(self, block: Block) -> Event:
        """Charge the local-disk read of one replica."""
        if not self.holds(block):
            raise HdfsError(f"{self.name} does not hold {block.block_id}")
        return self.vm.disk_io(block.size, name=f"dfs:read:{block.block_id}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DataNode {self.name} blocks={len(self.blocks)}>"
