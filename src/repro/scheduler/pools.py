"""Pool and queue declarations for the fair and capacity schedulers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class PoolConfig:
    """One fair-scheduler pool (Hadoop's ``mapred.fairscheduler`` pools).

    ``min_share`` is a per-task-kind slot guarantee: a pool with demand is
    entitled to that many map slots *and* that many reduce slots before
    weighted sharing distributes the rest.  When ``preemption_timeout_s``
    is set, a pool kept below its min-share for that long may kill young
    map tasks of over-share pools to claim its guarantee.
    """

    name: str
    weight: float = 1.0
    min_share: int = 0
    preemption_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("pool name must be non-empty")
        if self.weight <= 0:
            raise ConfigError(f"pool {self.name!r}: weight must be > 0")
        if self.min_share < 0:
            raise ConfigError(f"pool {self.name!r}: min_share must be >= 0")
        if (self.preemption_timeout_s is not None
                and self.preemption_timeout_s <= 0):
            raise ConfigError(
                f"pool {self.name!r}: preemption_timeout_s must be > 0")


@dataclass(frozen=True)
class QueueConfig:
    """One capacity-scheduler queue.

    ``capacity`` is the fraction of the *parent's* capacity guaranteed to
    this queue; ``max_capacity`` is an absolute ceiling (fraction of the
    whole cluster) the queue may elastically grow into when siblings are
    idle.  Jobs are submitted to leaf queues by name.
    """

    name: str
    capacity: float
    parent: Optional[str] = None
    max_capacity: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("queue name must be non-empty")
        if not 0.0 < self.capacity <= 1.0:
            raise ConfigError(
                f"queue {self.name!r}: capacity must be in (0, 1]")
        if not 0.0 < self.max_capacity <= 1.0:
            raise ConfigError(
                f"queue {self.name!r}: max_capacity must be in (0, 1]")
