"""Pluggable slot-arbitration policies.

A policy answers one question: *given the jobs that currently have
dispatchable work of a kind, which job gets the free slot?*  The three
implementations mirror Hadoop 0.20's contrib schedulers.

All tie-breaks are deterministic (sequence number, then name) so scheduled
runs stay bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.errors import ConfigError
from repro.scheduler.pools import PoolConfig, QueueConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduler.jobtracker import JobExecution


def _pool_running(active: Sequence["JobExecution"], pool: str,
                  kind: str) -> int:
    return sum(ex.running[kind] for ex in active if ex.pool == pool)


def _pool_demand(active: Sequence["JobExecution"], pool: str,
                 kind: str) -> int:
    return sum(ex.running[kind] + ex.pending_count(kind)
               for ex in active if ex.pool == pool)


class SchedulingPolicy:
    """Base policy: FIFO with no pools and no preemption."""

    name = "policy"

    def register_job(self, ex: "JobExecution") -> None:
        """Hook called at submission (pool auto-creation / validation)."""

    def select(self, candidates: Sequence["JobExecution"], kind: str, *,
               active: Sequence["JobExecution"],
               total_slots: int) -> Optional["JobExecution"]:
        raise NotImplementedError

    def shares(self, active: Sequence["JobExecution"], kind: str,
               total_slots: int) -> dict[str, float]:
        """Per-pool entitled share of ``total_slots`` (metrics hook).

        Policies without a share concept return ``{}``.
        """
        return {}

    @property
    def preemption_enabled(self) -> bool:
        return False


class FifoScheduler(SchedulingPolicy):
    """Hadoop 0.20's default: strict submission order."""

    name = "fifo"

    def select(self, candidates, kind, *, active, total_slots):
        if not candidates:
            return None
        return min(candidates, key=lambda ex: ex.seq)


class FairScheduler(SchedulingPolicy):
    """Fair sharing across pools (Zaharia et al.'s fair scheduler).

    Pools below their min-share are served first (most starved relative to
    the guarantee); the rest are ordered by running-per-weight.  Unknown
    pools are auto-created with defaults, matching Hadoop's behaviour.
    Preemption (when any pool sets ``preemption_timeout_s``) kills the
    *youngest* over-share map tasks; reduces are never killed — their
    shuffled state is too expensive to redo, so min-share enforcement for
    reduces happens at assignment time only.
    """

    name = "fair"

    def __init__(self, pools: Iterable[PoolConfig] = (),
                 preemption_check_s: float = 1.0):
        self.pools: dict[str, PoolConfig] = {p.name: p for p in pools}
        if preemption_check_s <= 0:
            raise ConfigError("preemption_check_s must be > 0")
        self.preemption_check_s = preemption_check_s

    def pool(self, name: str) -> PoolConfig:
        if name not in self.pools:
            self.pools[name] = PoolConfig(name=name)
        return self.pools[name]

    def register_job(self, ex):
        self.pool(ex.pool)

    def select(self, candidates, kind, *, active, total_slots):
        if not candidates:
            return None
        by_pool: dict[str, list] = {}
        for ex in candidates:
            by_pool.setdefault(ex.pool, []).append(ex)

        def pool_key(name: str):
            cfg = self.pool(name)
            running = _pool_running(active, name, kind)
            if cfg.min_share > 0 and running < cfg.min_share:
                # Starved pools first, most starved relative to guarantee.
                return (0, running / cfg.min_share, name)
            return (1, running / cfg.weight, name)

        winner = min(by_pool, key=pool_key)
        return min(by_pool[winner], key=lambda ex: ex.seq)

    def shares(self, active, kind, total_slots):
        """Weighted max-min fair shares with min-share floors, capped by
        demand (water-filling)."""
        demands = {}
        for ex in active:
            d = ex.running[kind] + ex.pending_count(kind)
            if d > 0:
                demands[ex.pool] = demands.get(ex.pool, 0) + d
        if not demands or total_slots <= 0:
            return {pool: 0.0 for pool in demands}
        alloc = {pool: float(min(self.pool(pool).min_share, demands[pool]))
                 for pool in demands}
        granted = sum(alloc.values())
        if granted > total_slots:
            scale = total_slots / granted
            return {pool: a * scale for pool, a in alloc.items()}
        left = total_slots - granted
        open_pools = {p for p in demands if alloc[p] < demands[p]}
        while left > 1e-9 and open_pools:
            weight_sum = sum(self.pool(p).weight for p in open_pools)
            gave = 0.0
            for p in list(open_pools):
                slice_ = left * self.pool(p).weight / weight_sum
                take = min(slice_, demands[p] - alloc[p])
                alloc[p] += take
                gave += take
                if alloc[p] >= demands[p] - 1e-9:
                    open_pools.discard(p)
            left -= gave
            if gave <= 1e-12:
                break
        return alloc

    @property
    def preemption_enabled(self) -> bool:
        return any(p.preemption_timeout_s is not None
                   for p in self.pools.values())


class CapacityScheduler(SchedulingPolicy):
    """Hierarchical queues with guaranteed capacities + elastic overflow.

    A leaf queue's *guaranteed* fraction of the cluster is the product of
    ``capacity`` values up its ancestor chain; ``max_capacity`` bounds how
    far it may overflow into idle sibling capacity.  The most underserved
    queue relative to its guarantee is served first; within a queue, FIFO.
    """

    name = "capacity"

    def __init__(self, queues: Iterable[QueueConfig]):
        self.queues: dict[str, QueueConfig] = {}
        for q in queues:
            if q.name in self.queues:
                raise ConfigError(f"duplicate queue {q.name!r}")
            self.queues[q.name] = q
        if not self.queues:
            raise ConfigError("CapacityScheduler needs at least one queue")
        children: dict[Optional[str], list[QueueConfig]] = {}
        for q in self.queues.values():
            if q.parent is not None and q.parent not in self.queues:
                raise ConfigError(
                    f"queue {q.name!r}: unknown parent {q.parent!r}")
            children.setdefault(q.parent, []).append(q)
        for parent, kids in children.items():
            total = sum(k.capacity for k in kids)
            if total > 1.0 + 1e-9:
                where = parent or "<root>"
                raise ConfigError(
                    f"children of {where} overcommit capacity ({total:.2f})")
        self._children = children
        self.guaranteed: dict[str, float] = {}
        for q in self.queues.values():
            frac, node = q.capacity, q
            while node.parent is not None:
                node = self.queues[node.parent]
                frac *= node.capacity
            self.guaranteed[q.name] = frac

    def is_leaf(self, name: str) -> bool:
        return not self._children.get(name)

    def register_job(self, ex):
        if ex.pool not in self.queues or not self.is_leaf(ex.pool):
            leaves = sorted(n for n in self.queues if self.is_leaf(n))
            raise ConfigError(
                f"job {ex.job.name!r}: queue {ex.pool!r} is not a leaf "
                f"queue (choose one of {leaves})")

    def select(self, candidates, kind, *, active, total_slots):
        if not candidates:
            return None
        by_queue: dict[str, list] = {}
        for ex in candidates:
            by_queue.setdefault(ex.pool, []).append(ex)

        eligible = []
        for name in by_queue:
            running = _pool_running(active, name, kind)
            ceiling = self.queues[name].max_capacity * total_slots
            if running >= ceiling:
                continue  # at the elastic cap; may not grow further
            used = running / max(self.guaranteed[name] * total_slots, 1e-9)
            eligible.append((used, name))
        if not eligible:
            return None
        _used, winner = min(eligible)
        return min(by_queue[winner], key=lambda ex: ex.seq)

    def shares(self, active, kind, total_slots):
        out = {}
        for name in self.queues:
            if not self.is_leaf(name):
                continue
            demand = _pool_demand(active, name, kind)
            if demand > 0:
                out[name] = min(float(demand),
                                self.guaranteed[name] * total_slots)
        return out
