"""JobScheduler: the JobTracker's multi-job slot arbiter.

Execution model
---------------
The scheduler owns one pool of slot workers per cluster — one perpetual
process per (TaskTracker, kind, slot), exactly Hadoop's slot model.  Each
worker loops: park while no job has dispatchable work of its kind, pay a
heartbeat latency, ask the policy which job gets the slot, pick a task
(locality-aware for maps, via the runner's own selection code) and run it.
Per-job task execution is delegated to :class:`MapReduceRunner` internals,
so the functional output of every job is bit-identical to a solo
:class:`~repro.mapreduce.local.LocalJobRunner` run.

Determinism: workers draw heartbeat latencies from their *own* named RNG
stream (``scheduler/heartbeat/<cluster>``), so single-job runs through the
plain runner keep their exact timing.

Preemption (fair scheduler with ``preemption_timeout_s`` pools) kills the
youngest *map* tasks of over-share pools: the killed attempt's in-flight
flows are cancelled (the virt/net layers catch :class:`Interrupt` and bill
only the work actually done) and the task returns to its job's pending
queue.  Reduce tasks are never killed — re-shuffling is too expensive, as
in Hadoop — so reduce min-shares are enforced at assignment time only.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import SimulationError, TaskFailure, VMStateError
from repro.mapreduce.job import Job
from repro.mapreduce.runner import (JobReport, MapReduceRunner, TaskAttempt,
                                    _MapOutput, _MapSpec, _cancel_wait,
                                    _drive_racing)
from repro.scheduler.policies import (FifoScheduler, SchedulingPolicy,
                                      _pool_demand, _pool_running)
from repro.scheduler.report import JobStats, SchedulerReport
from repro.sim.kernel import Event
from repro.sim.trace import Span
from repro.telemetry import events as EV

_STAGE_OF = {"map": "maps", "reduce": "reduces"}


class JobExecution:
    """Scheduler-side state of one submitted job."""

    def __init__(self, job: Job, pool: str, seq: int, report: JobReport):
        self.job = job
        self.pool = pool
        self.seq = seq
        self.report = report
        self.stage = "init"        # init -> maps -> reduces/writing -> done
        self.map_state: Optional[dict] = None
        self.map_outputs: list[_MapOutput] = []
        self.map_remaining = {"n": 0}
        self.reduce_state: Optional[dict] = None
        self.reduce_remaining = {"n": 0}
        self.maps_done: Optional[Event] = None
        self.reduces_done: Optional[Event] = None
        self.running = {"map": 0, "reduce": 0}
        self.done: Optional[Event] = None
        self.job_span: Optional[Span] = None
        self.map_span: Optional[Span] = None
        self.reduce_span: Optional[Span] = None

    def stage_accepts(self, kind: str) -> bool:
        return self.stage == _STAGE_OF[kind]

    def pending_count(self, kind: str) -> int:
        if not self.stage_accepts(kind):
            return 0
        state = self.map_state if kind == "map" else self.reduce_state
        return len(state["pending"]) if state else 0

    def remaining(self, kind: str) -> int:
        return (self.map_remaining if kind == "map"
                else self.reduce_remaining)["n"]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<JobExecution {self.job.name} pool={self.pool} "
                f"stage={self.stage}>")


class _RunningTask:
    """Registry entry for one in-flight (preemptible) map attempt."""

    __slots__ = ("ex", "task_id", "start", "kill", "speculative")

    def __init__(self, ex: JobExecution, task_id: str, start: float,
                 kill: Event, speculative: bool):
        self.ex = ex
        self.task_id = task_id
        self.start = start
        self.kill = kill
        self.speculative = speculative


class JobScheduler:
    """Concurrent job admission + slot arbitration for one cluster."""

    def __init__(self, cluster, policy: Optional[SchedulingPolicy] = None,
                 runner: Optional[MapReduceRunner] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.tracer = cluster.tracer
        self.policy = policy or FifoScheduler()
        self.runner = runner or MapReduceRunner(cluster)
        self._rng = cluster.datacenter.rng.stream(
            f"scheduler/heartbeat/{cluster.name}")
        self.report = SchedulerReport(policy=self.policy.name,
                                      cluster=cluster.name)
        self._jobs: list[JobExecution] = []
        self._active: list[JobExecution] = []
        self._seq = 0
        self._wake: dict[str, Event] = {"map": self.sim.event(),
                                        "reduce": self.sim.event()}
        self._parked = {"map": 0, "reduce": 0}
        self._running_maps: list[_RunningTask] = []
        self._workers_started = False
        self._monitor_alive = False
        self._stamp = self.sim.now

    # -- public ------------------------------------------------------------
    def submit(self, job: Job, pool: str = "default") -> Event:
        """Admit ``job`` into ``pool``; the returned event's value is its
        :class:`JobReport` once the job finishes."""
        ex = JobExecution(job, pool, self._seq,
                          JobReport(job_name=job.name,
                                    submitted_at=self.sim.now,
                                    n_reduces=job.n_reduces, pool=pool))
        self._seq += 1
        self.policy.register_job(ex)
        self._accrue()
        self._jobs.append(ex)
        self._active.append(ex)
        if self.report.started_at is None:
            self.report.started_at = self.sim.now
        self._ensure_workers()
        self._ensure_monitor()
        ex.done = self.sim.process(self._job_driver(ex),
                                   name=f"sched:{job.name}")
        self.tracer.emit(self.sim.now, EV.SCHEDULER_SUBMIT, job.name,
                         pool=pool, policy=self.policy.name)
        return ex.done

    def run_all(self) -> SchedulerReport:
        """Drive the simulator until every submitted job has finished."""
        for ex in list(self._jobs):
            self.sim.run_until(ex.done)
        return self.finalize()

    def finalize(self) -> SchedulerReport:
        if self._active:
            raise SimulationError(
                f"{len(self._active)} jobs still active; run_all() first")
        self._accrue()
        self.report.finished_at = max(
            (ex.report.finished_at for ex in self._jobs),
            default=self.sim.now)
        return self.report

    # -- live metrics (tuner hooks) ---------------------------------------
    def total_slots(self, kind: str) -> int:
        from repro.virt.vm import VMState
        total = 0
        for tracker in self.cluster.trackers:
            if tracker.vm.state in (VMState.FAILED, VMState.STOPPED):
                continue
            if tracker.draining:
                continue  # scale-in: no longer part of the schedulable pool
            slots = (tracker.map_slots if kind == "map"
                     else tracker.reduce_slots)
            total += slots.capacity
        return total

    def backlog(self, kind: str) -> int:
        """Dispatchable-but-unassigned tasks of ``kind`` right now."""
        return sum(ex.pending_count(kind) for ex in self._active)

    @property
    def active_jobs(self) -> int:
        return len(self._active)

    # -- elastic membership ------------------------------------------------
    def attach_tracker(self, tracker) -> None:
        """Start slot workers for a tracker joined after the first submit
        (elastic scale-out).  Before workers exist this is a no-op — the
        tracker is picked up by :meth:`_ensure_workers` with the rest.
        """
        if not self._workers_started:
            return
        arm = getattr(self.cluster, "watch_tracker", None)
        if arm is not None and self.cluster.recovery is not None:
            arm(tracker)
        for slot in range(tracker.map_slots.capacity):
            self.sim.process(
                self._slot_worker(tracker, "map"),
                name=f"sched:mapslot:{tracker.name}:{slot}")
        for slot in range(tracker.reduce_slots.capacity):
            self.sim.process(
                self._slot_worker(tracker, "reduce"),
                name=f"sched:reduceslot:{tracker.name}:{slot}")

    def tracker_quiescent(self, tracker) -> bool:
        """True when the tracker can be retired without disturbing any
        active job: nothing running on its VM and no active job still
        holds shuffle inputs (map outputs) produced there."""
        if tracker.vm.activity > 0:
            return False
        for ex in self._active:
            for output in ex.map_outputs:
                if output.tracker is tracker:
                    return False
        return True

    # -- job lifecycle -----------------------------------------------------
    def _job_driver(self, ex: JobExecution):
        config = self.cluster.config
        job, report = ex.job, ex.report
        self.tracer.emit(self.sim.now, EV.JOB_SUBMIT, job.name,
                         n_reduces=job.n_reduces)
        ex.job_span = self.tracer.begin_span(
            self.sim.now, EV.JOB_RUN, job.name, n_reduces=job.n_reduces,
            pool=ex.pool, policy=self.policy.name)
        yield self.sim.timeout(config.job_overhead_s / 2)
        yield from self.runner._localize(job)

        specs = self.runner._make_map_specs(job)
        report.n_maps = len(specs)
        report.input_bytes = sum(s.nbytes for s in specs)
        ex.map_span = self.tracer.begin_span(
            self.sim.now, EV.PHASE_MAP, job.name, parent=ex.job_span,
            n_maps=len(specs))
        ex.map_state = {
            "pending": list(specs),
            "running": {},
            "finished": set(),
            "duplicated": set(),
            "durations": [],
            "span": ex.map_span,
            "retrying": {"n": 0},
            "attempts": {},
        }
        ex.map_remaining = {"n": len(specs)}
        ex.maps_done = self.sim.event()
        if not specs:
            ex.maps_done.succeed(None)
        self._accrue()
        ex.stage = "maps"
        self._signal("map")
        yield ex.maps_done
        ex.map_outputs.sort(key=lambda o: o.spec.index)
        report.map_phase_end = self.sim.now
        self.tracer.end_span(ex.map_span, self.sim.now)
        self.tracer.emit(self.sim.now, EV.JOB_MAPS_DONE, job.name,
                         n_maps=len(specs))

        if job.map_only:
            self._accrue()
            ex.stage = "writing"
            yield from self.runner._write_map_only_output(
                job, ex.map_outputs, report)
        else:
            ex.reduce_state = MapReduceRunner._make_reduce_state(job)
            ex.reduce_span = self.tracer.begin_span(
                self.sim.now, EV.PHASE_REDUCE, job.name, parent=ex.job_span,
                n_reduces=job.n_reduces)
            ex.reduce_state["span"] = ex.reduce_span
            ex.reduce_remaining = {"n": job.n_reduces}
            ex.reduces_done = self.sim.event()
            if job.n_reduces == 0:
                ex.reduces_done.succeed(None)
            self._accrue()
            ex.stage = "reduces"
            self._signal("reduce")
            yield ex.reduces_done
            self.tracer.end_span(ex.reduce_span, self.sim.now)

        yield self.sim.timeout(config.job_overhead_s / 2)
        self._accrue()
        ex.stage = "done"
        report.finished_at = self.sim.now
        self._active.remove(ex)
        self._record(ex)
        self.tracer.end_span(ex.job_span, self.sim.now,
                             elapsed=report.elapsed)
        self.tracer.emit(self.sim.now, EV.JOB_DONE, job.name,
                         elapsed=report.elapsed)
        self.runner._record_job_metrics(job, report)
        return report

    def _record(self, ex: JobExecution) -> None:
        r = ex.report
        self.report.jobs.append(JobStats(
            job_name=r.job_name, pool=ex.pool, submitted_at=r.submitted_at,
            finished_at=r.finished_at, wait_s=r.wait_s, elapsed=r.elapsed,
            slot_seconds=r.slot_seconds, preempted_tasks=r.preempted_tasks,
            speculated_tasks=r.speculated_maps + r.speculated_reduces))
        stats = self.report.pool(ex.pool)
        stats.n_jobs += 1
        stats.wait_s_total += r.wait_s
        stats.elapsed_total += r.elapsed
        stats.slot_seconds += r.slot_seconds
        stats.wait_samples.append(r.wait_s)
        stats.latency_samples.append(r.elapsed)

    # -- slot workers ------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._workers_started:
            return
        self._workers_started = True
        # Heartbeat-based failure detection: dead trackers are reaped and
        # their datanodes' blocks re-replicated in the background.
        arm = getattr(self.cluster, "arm_recovery", None)
        if arm is not None:
            arm()
        for tracker in self.cluster.trackers:
            for slot in range(tracker.map_slots.capacity):
                self.sim.process(
                    self._slot_worker(tracker, "map"),
                    name=f"sched:mapslot:{tracker.name}:{slot}")
            for slot in range(tracker.reduce_slots.capacity):
                self.sim.process(
                    self._slot_worker(tracker, "reduce"),
                    name=f"sched:reduceslot:{tracker.name}:{slot}")

    def _signal(self, kind: str) -> None:
        wake = self._wake[kind]
        self._wake[kind] = self.sim.event()
        if not wake.triggered:
            wake.succeed(None)

    def _dispatchable(self, kind: str) -> tuple[list, list]:
        """(jobs with pending tasks, jobs with only speculation left)."""
        config = self.cluster.config
        pending, spec_only = [], []
        for ex in self._active:
            if not ex.stage_accepts(kind):
                continue
            if ex.pending_count(kind) > 0:
                pending.append(ex)
            elif config.speculative_execution and ex.remaining(kind) > 0:
                spec_only.append(ex)
        return pending, spec_only

    def _slot_worker(self, tracker, kind: str):
        from repro.virt.vm import VMState
        config = self.cluster.config
        while True:
            if tracker.vm.state in (VMState.FAILED, VMState.STOPPED):
                break  # dead trackers take no more tasks
            if tracker.draining:
                break  # scale-in: finish nothing new, let the pool retire us
            pending, spec_only = self._dispatchable(kind)
            if not pending and not spec_only:
                self._accrue()
                self._parked[kind] += 1
                wake = self._wake[kind]
                yield wake
                self._accrue()
                self._parked[kind] -= 1
                continue
            # Tasks are handed out on tracker heartbeats: whichever tracker
            # heartbeats next gets the slot's assignment.
            yield self.sim.timeout(
                float(self._rng.uniform(0.0, config.heartbeat_s)))
            pending, spec_only = self._dispatchable(kind)
            total = self.total_slots(kind)
            if pending:
                ex = self.policy.select(pending, kind, active=self._active,
                                        total_slots=total)
                if ex is None:
                    continue
                yield from self._run_slot(ex, tracker, kind)
                continue
            # No queued tasks anywhere: offer the slot for backup attempts
            # of stragglers, in submission order.
            for ex in sorted(spec_only, key=lambda e: e.seq):
                ran = yield from self._run_slot(ex, tracker, kind)
                if ran:
                    break

    def _run_slot(self, ex: JobExecution, tracker, kind: str):
        if kind == "map":
            ran = yield from self._run_map_slot(ex, tracker)
        else:
            ran = yield from self._run_reduce_slot(ex, tracker)
        return ran

    # -- map slot ----------------------------------------------------------
    def _run_map_slot(self, ex: JobExecution, tracker):
        config = self.cluster.config
        state = ex.map_state
        self._accrue()
        if self.runner._is_blacklisted(ex.job, tracker):
            return False  # too many failures: sit this job out
        spec, locality = self.runner._pick_map_task(tracker, state["pending"])
        speculative = False
        if spec is None:
            spec = self.runner._pick_speculative(state, ex.report, "map")
            if spec is None:
                return False
            speculative = True
            locality = self.runner._locality_of(tracker, spec)
        yield tracker.map_slots.acquire()
        self._accrue()
        ex.running["map"] += 1
        tracker.vm.activity += 1
        claimed = self.sim.now
        if ex.report.first_task_at is None:
            ex.report.first_task_at = claimed
        record = None
        try:
            yield self.sim.timeout(config.task_startup_s)
            start = self.sim.now
            if not speculative:
                state["running"][spec.index] = (start, spec)
            kill = self.sim.event()
            record = _RunningTask(ex, spec.task_id, start, kill, speculative)
            self._running_maps.append(record)
            attempt_span = self.tracer.begin_span(
                start, EV.TASK_MAP, spec.task_id, parent=ex.map_span,
                tracker=tracker.name, locality=locality,
                speculative=speculative, job=ex.job.name)
            gen = self.runner._run_map_task(ex.job, tracker, spec, locality,
                                            ex.report)
            # The attempt stops early on a preemption kill *or* its own
            # tracker dying; which one fired decides revert vs retry.
            stop = self.sim.any_of([kill, tracker.vm.failure_event()])
            failure = None
            try:
                output, stopped = yield from self._drive(gen, stop)
                if stopped and not kill.triggered:
                    failure = VMStateError(
                        f"{tracker.name}: tracker died mid-attempt")
            except (VMStateError, TaskFailure) as exc:
                output, stopped, failure = None, False, exc
            if failure is not None:
                self.tracer.end_span(attempt_span, self.sim.now,
                                     failed=True)
                self.runner._handle_task_failure(
                    ex.job, "map", state, spec, spec.task_id, speculative,
                    tracker, ex.report, ex.map_remaining, ex.maps_done,
                    failure, on_requeue=lambda: self._signal("map"))
                return True
            self.tracer.end_span(attempt_span, self.sim.now,
                                 preempted=stopped)
            self.runner.metrics.histogram(
                "mapreduce.task.duration", "task attempt duration",
                {"phase": "map", "job": ex.job.name}).observe(
                    self.sim.now - start)
            if stopped:
                self._revert_map(ex, spec, speculative)
                return True
            if spec.index in state["finished"]:
                return True  # the other attempt won the race
            self.runner._count_speculation_win(ex.job, "map", speculative)
            state["finished"].add(spec.index)
            state["running"].pop(spec.index, None)
            state["durations"].append(self.sim.now - start)
            ex.map_outputs.append(output)
            spilled = sum(output.partition_bytes.values())
            ex.report.tasks.append(TaskAttempt(
                task_id=spec.task_id, kind="map", tracker=tracker.name,
                start=start, end=self.sim.now, input_bytes=spec.nbytes,
                output_bytes=spilled, locality=locality))
            self.tracer.emit(self.sim.now, EV.TASK_MAP_DONE, spec.task_id,
                             tracker=tracker.name, locality=locality,
                             speculative=speculative)
            ex.map_remaining["n"] -= 1
            if ex.map_remaining["n"] == 0 and not ex.maps_done.triggered:
                ex.maps_done.succeed(None)
            return True
        finally:
            if record is not None and record in self._running_maps:
                self._running_maps.remove(record)
            self._accrue()
            ex.running["map"] -= 1
            tracker.vm.activity -= 1
            tracker.map_slots.release()

    def _revert_map(self, ex: JobExecution, spec: _MapSpec,
                    speculative: bool) -> None:
        """Put a killed map attempt back where the scheduler found it."""
        state = ex.map_state
        if speculative:
            state["duplicated"].discard(spec.index)
        elif spec.index not in state["finished"]:
            state["running"].pop(spec.index, None)
            state["pending"].insert(0, spec)
        ex.report.preempted_tasks += 1
        self.report.preemptions += 1
        self.report.pool(ex.pool).preemptions_suffered += 1
        self.runner.metrics.counter(
            "scheduler.preemptions", "map attempts killed by preemption",
            {"pool": ex.pool}).inc()
        self.tracer.emit(self.sim.now, EV.TASK_MAP_PREEMPTED, spec.task_id,
                         job=ex.job.name, pool=ex.pool)
        self._signal("map")

    # -- reduce slot -------------------------------------------------------
    def _run_reduce_slot(self, ex: JobExecution, tracker):
        config = self.cluster.config
        state = ex.reduce_state
        self._accrue()
        if self.runner._is_blacklisted(ex.job, tracker):
            return False  # too many failures: sit this job out
        speculative = False
        if state["pending"]:
            partition = state["pending"].pop(0)
        else:
            partition = self.runner._pick_speculative(state, ex.report,
                                                      "reduce")
            if partition is None:
                return False
            speculative = True
        yield tracker.reduce_slots.acquire()
        self._accrue()
        ex.running["reduce"] += 1
        tracker.vm.activity += 1
        claimed = self.sim.now
        if ex.report.first_task_at is None:
            ex.report.first_task_at = claimed
        try:
            yield self.sim.timeout(config.task_startup_s)
            start = self.sim.now
            if not speculative:
                state["running"][partition] = (start, partition)
            token = object()
            attempt_span = self.tracer.begin_span(
                start, EV.TASK_REDUCE, f"r-{partition:05d}",
                parent=ex.reduce_span, tracker=tracker.name,
                speculative=speculative, job=ex.job.name)
            gen = self.runner._run_reduce_task(
                ex.job, tracker, partition, ex.map_outputs, ex.report,
                state, token, attempt_span)
            failure = None
            try:
                # An attempt holding the commit token has (partially)
                # written its output file; it must run to completion even
                # if its tracker dies — single-writer commit.
                result, died = yield from _drive_racing(
                    self.sim, gen, tracker.vm.failure_event(),
                    abortable=lambda:
                        state["committing"].get(partition) is not token)
                if died:
                    failure = VMStateError(
                        f"{tracker.name}: tracker died mid-attempt")
            except (VMStateError, TaskFailure) as exc:
                result, failure = None, exc
            if failure is not None:
                if state["committing"].get(partition) is token:
                    del state["committing"][partition]
                self.tracer.end_span(attempt_span, self.sim.now,
                                     failed=True)
                self.runner._handle_task_failure(
                    ex.job, "reduce", state, partition,
                    f"r-{partition:05d}", speculative, tracker, ex.report,
                    ex.reduce_remaining, ex.reduces_done, failure,
                    on_requeue=lambda: self._signal("reduce"))
                return True
            self.tracer.end_span(attempt_span, self.sim.now,
                                 won=result is not None)
            self.runner.metrics.histogram(
                "mapreduce.task.duration", "task attempt duration",
                {"phase": "reduce", "job": ex.job.name}).observe(
                    self.sim.now - start)
            if result is None or partition in state["finished"]:
                return True  # the other attempt won the race
            self.runner._count_speculation_win(ex.job, "reduce", speculative)
            state["finished"].add(partition)
            state["running"].pop(partition, None)
            state["durations"].append(self.sim.now - start)
            nbytes_in, nbytes_out = result
            ex.report.tasks.append(TaskAttempt(
                task_id=f"r-{partition:05d}", kind="reduce",
                tracker=tracker.name, start=start, end=self.sim.now,
                input_bytes=nbytes_in, output_bytes=nbytes_out,
                locality="-"))
            self.tracer.emit(self.sim.now, EV.TASK_REDUCE_DONE,
                             f"r-{partition:05d}", tracker=tracker.name,
                             speculative=speculative)
            ex.reduce_remaining["n"] -= 1
            if (ex.reduce_remaining["n"] == 0
                    and not ex.reduces_done.triggered):
                ex.reduces_done.succeed(None)
            return True
        finally:
            self._accrue()
            ex.running["reduce"] -= 1
            tracker.vm.activity -= 1
            tracker.reduce_slots.release()

    # -- preemptible task driving -----------------------------------------
    def _drive(self, gen, kill: Event):
        """Run task generator ``gen``, racing every wait against ``kill``.

        Returns ``(result, stopped)``.  Thin wrapper over the runner's
        :func:`~repro.mapreduce.runner._drive_racing`, kept as the
        scheduler's historical entry point.
        """
        result, stopped = yield from _drive_racing(self.sim, gen, kill)
        return result, stopped

    @staticmethod
    def _cancel(event: Event) -> None:
        """Interrupt the live process(es) behind an abandoned wait."""
        _cancel_wait(event, "preempted")

    # -- preemption monitor ------------------------------------------------
    def _ensure_monitor(self) -> None:
        if self._monitor_alive or not self.policy.preemption_enabled:
            return
        self._monitor_alive = True
        self.sim.process(self._preemption_monitor(),
                         name=f"sched:preemption:{self.cluster.name}")

    def _preemption_monitor(self):
        interval = getattr(self.policy, "preemption_check_s", 1.0)
        starved_since: dict[str, float] = {}
        while self._active:
            yield self.sim.timeout(interval)
            self._check_preemption(starved_since)
        self._monitor_alive = False

    def _check_preemption(self, starved_since: dict[str, float]) -> None:
        now = self.sim.now
        active = self._active
        total = self.total_slots("map")
        fair = self.policy.shares(active, "map", total)
        for pool in sorted({ex.pool for ex in active}):
            cfg = self.policy.pool(pool)
            if cfg.preemption_timeout_s is None:
                starved_since.pop(pool, None)
                continue
            running = _pool_running(active, pool, "map")
            demand = _pool_demand(active, pool, "map")
            target = min(cfg.min_share, demand)
            if running >= target:
                starved_since.pop(pool, None)
                continue
            since = starved_since.setdefault(pool, now)
            if now - since < cfg.preemption_timeout_s:
                continue
            if self._kill_for(pool, target - running, fair, active):
                starved_since[pool] = now  # give the kills time to land

    def _kill_for(self, beneficiary: str, need: int, fair: dict[str, float],
                  active: list[JobExecution]) -> int:
        """Kill up to ``need`` youngest over-share map tasks.

        A victim pool is never driven below ``max(min_share,
        ceil(fair_share))`` — a pool at its guarantee is inviolable, which
        is the fair-share dominance invariant the property tests check.
        """
        victims = [rec for rec in self._running_maps
                   if rec.ex.pool != beneficiary and not rec.kill.triggered]
        allowance: dict[str, int] = {}
        floor: dict[str, int] = {}
        for pool in {rec.ex.pool for rec in victims}:
            cfg = self.policy.pool(pool)
            running = _pool_running(active, pool, "map")
            keep = max(cfg.min_share,
                       math.ceil(fair.get(pool, 0.0) - 1e-9))
            floor[pool] = keep
            allowance[pool] = max(0, running - keep)
        victims.sort(key=lambda rec: (-rec.start, rec.ex.seq, rec.task_id))
        killed = 0
        for rec in victims:
            if killed >= need:
                break
            pool = rec.ex.pool
            if allowance.get(pool, 0) <= 0:
                continue
            allowance[pool] -= 1
            killed += 1
            rec.kill.succeed(beneficiary)
            self.report.pool(beneficiary).preemptions_claimed += 1
            self.tracer.emit(
                self.sim.now, EV.SCHEDULER_PREEMPT, rec.task_id,
                victim_pool=pool, for_pool=beneficiary,
                victim_running=_pool_running(active, pool, "map"),
                victim_floor=floor[pool],
                victim_min_share=self.policy.pool(pool).min_share,
                speculative=rec.speculative)
        return killed

    # -- accounting --------------------------------------------------------
    def _accrue(self) -> None:
        """Integrate time-weighted metrics up to now.

        Called *before* every scheduler-state mutation so each interval is
        charged under the state that actually held during it.
        """
        now = self.sim.now
        dt = now - self._stamp
        self._stamp = now
        if dt <= 0 or not self._jobs:
            return
        active = self._active
        busy = 0
        for ex in active:
            running = ex.running["map"] + ex.running["reduce"]
            busy += running
            # Accrue per-job slot occupancy from the same integral that
            # feeds busy_slot_seconds, so job, pool and cluster-wide
            # accounting agree by construction.  (Charging attempts as a
            # lump sum in the slot workers' ``finally`` broke
            # conservation: a speculative loser still running when its
            # job finishes landed its slot time *after* the JobStats
            # snapshot, so per-pool totals silently under-counted.)
            ex.report.slot_seconds += running * dt
        self.report.busy_slot_seconds += busy * dt
        n_running_jobs = sum(
            1 for ex in active
            if ex.running["map"] + ex.running["reduce"] > 0)
        if n_running_jobs >= 2:
            self.report.concurrent_busy_s += dt
        for kind in ("map", "reduce"):
            if (self._parked[kind] > 0
                    and any(ex.pending_count(kind) > 0 for ex in active)):
                self.report.idle_while_pending_s += dt
            shares = self.policy.shares(active, kind, self.total_slots(kind))
            for pool, share in shares.items():
                running = _pool_running(active, pool, kind)
                if share > running:
                    self.report.pool(pool).deficit_slot_seconds += (
                        (share - running) * dt)
