"""JobTracker-level multi-tenant scheduling.

The paper's platform assumes many users sharing virtual clusters, but the
base engine (:class:`repro.mapreduce.runner.MapReduceRunner`) runs one job
at a time.  This package adds the missing JobTracker: concurrent job
submissions against one :class:`~repro.platform.cluster.HadoopVirtualCluster`
arbitrated by pluggable policies —

* :class:`FifoScheduler` — Hadoop 0.20's default job queue;
* :class:`FairScheduler` — pools with weights, min-shares and optional
  preemption of over-share map tasks after a timeout;
* :class:`CapacityScheduler` — hierarchical queues with guaranteed
  capacities and elastic overflow.

Entry point: :class:`JobScheduler` (``submit(job, pool)`` → report event,
``run_all()`` → :class:`SchedulerReport`).
"""

from repro.scheduler.jobtracker import JobExecution, JobScheduler
from repro.scheduler.policies import (CapacityScheduler, FairScheduler,
                                      FifoScheduler, SchedulingPolicy)
from repro.scheduler.pools import PoolConfig, QueueConfig
from repro.scheduler.report import JobStats, PoolStats, SchedulerReport

__all__ = [
    "CapacityScheduler",
    "FairScheduler",
    "FifoScheduler",
    "JobExecution",
    "JobScheduler",
    "JobStats",
    "PoolConfig",
    "PoolStats",
    "QueueConfig",
    "SchedulerReport",
    "SchedulingPolicy",
]
