"""Scheduler-level accounting: per-job, per-pool and cluster-wide."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of ``values``.

    Deterministic and exact: no interpolation, so two same-seed runs
    produce byte-identical numbers.  Returns 0.0 for an empty sample.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class JobStats:
    """One finished job as the scheduler saw it."""

    job_name: str
    pool: str
    submitted_at: float
    finished_at: float
    wait_s: float                 # submission -> first task on a slot
    elapsed: float
    slot_seconds: float
    preempted_tasks: int = 0
    speculated_tasks: int = 0


@dataclass
class PoolStats:
    """Aggregate accounting for one pool/queue."""

    name: str
    n_jobs: int = 0
    wait_s_total: float = 0.0
    elapsed_total: float = 0.0
    slot_seconds: float = 0.0
    #: Integral of max(0, fair_share - running) over time (slot-seconds the
    #: pool was owed under the policy's own share definition).
    deficit_slot_seconds: float = 0.0
    #: Tasks of *this* pool killed to serve a starved pool.
    preemptions_suffered: int = 0
    #: Kills triggered on this pool's behalf.
    preemptions_claimed: int = 0
    #: Per-job queue waits (submission → first task), recorded at job end.
    wait_samples: list = field(default_factory=list)
    #: Per-job completion latencies (submission → finish).
    latency_samples: list = field(default_factory=list)

    @property
    def mean_wait_s(self) -> float:
        return self.wait_s_total / self.n_jobs if self.n_jobs else 0.0

    @property
    def wait_p50(self) -> float:
        return percentile(self.wait_samples, 0.50)

    @property
    def wait_p99(self) -> float:
        return percentile(self.wait_samples, 0.99)

    @property
    def latency_p50(self) -> float:
        return percentile(self.latency_samples, 0.50)

    @property
    def latency_p99(self) -> float:
        return percentile(self.latency_samples, 0.99)


@dataclass
class SchedulerReport:
    """Everything measured about one multi-job scheduling run."""

    policy: str
    cluster: str
    started_at: Optional[float] = None
    finished_at: float = 0.0
    jobs: list[JobStats] = field(default_factory=list)
    pools: dict[str, PoolStats] = field(default_factory=dict)
    #: Integral of (running tasks) over time, across all jobs.
    busy_slot_seconds: float = 0.0
    #: Wall time during which >= 2 jobs had tasks running simultaneously.
    concurrent_busy_s: float = 0.0
    #: Wall time a slot worker sat *parked* while dispatchable tasks were
    #: pending — the work-conservation residual; 0 when the scheduler never
    #: sleeps on available work (heartbeat assignment latency excluded).
    idle_while_pending_s: float = 0.0
    preemptions: int = 0

    def pool(self, name: str) -> PoolStats:
        if name not in self.pools:
            self.pools[name] = PoolStats(name=name)
        return self.pools[name]

    @property
    def makespan(self) -> float:
        """First submission to last completion."""
        if self.started_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def mean_wait_s(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.wait_s for j in self.jobs) / len(self.jobs)

    def wait_percentile(self, q: float) -> float:
        """Cluster-wide queue-wait percentile over all finished jobs."""
        return percentile([j.wait_s for j in self.jobs], q)

    def latency_percentile(self, q: float) -> float:
        """Cluster-wide completion-latency percentile (submit → finish)."""
        return percentile([j.elapsed for j in self.jobs], q)

    @property
    def wait_p99(self) -> float:
        return self.wait_percentile(0.99)

    @property
    def latency_p50(self) -> float:
        return self.latency_percentile(0.50)

    @property
    def latency_p99(self) -> float:
        return self.latency_percentile(0.99)

    def wait_of(self, *job_names: str) -> list[float]:
        wanted = set(job_names)
        return [j.wait_s for j in self.jobs if j.job_name in wanted]
