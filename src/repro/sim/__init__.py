"""Discrete-event simulation substrate.

The kernel (:mod:`repro.sim.kernel`) is a small generator-coroutine
discrete-event simulator in the style of SimPy: *processes* are Python
generators that ``yield`` events; the :class:`~repro.sim.kernel.Simulator`
advances virtual time from event to event.

On top of the kernel:

* :mod:`repro.sim.fairshare` — fluid-flow max-min fair sharing of capacitated
  resources, the single mechanism used for CPU, NIC, disk and NFS contention;
* :mod:`repro.sim.resources` — counting semaphores and FIFO stores;
* :mod:`repro.sim.rng` — named deterministic random streams;
* :mod:`repro.sim.trace` — structured event tracing.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
    TimerWheel,
)
from repro.sim.fairshare import FairShareSystem, FluidFlow, SharedResource
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.trace import Span, TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FairShareSystem",
    "FluidFlow",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "SharedResource",
    "Simulator",
    "Span",
    "Store",
    "Timeout",
    "TimerWheel",
    "TraceEvent",
    "Tracer",
]
