"""Named deterministic random streams.

Every stochastic decision in the simulator draws from a *named* stream so
that adding randomness to one subsystem never perturbs another: the stream
for ``"migration/dirty"`` is independent of ``"datasets/control"`` and both
are fully determined by the registry seed and the stream name.

Streams are :class:`numpy.random.Generator` instances seeded by
``SeedSequence(seed).spawn`` keyed on a stable hash of the name.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _name_entropy(name: str) -> int:
    """Stable 64-bit entropy derived from a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of independent, reproducible random generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``; created on first use, then cached.

        Repeated calls return the *same* generator object, so consecutive
        draws continue the stream rather than restarting it.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.seed, _name_entropy(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """A brand-new generator for ``name`` (restarts the stream)."""
        seq = np.random.SeedSequence([self.seed, _name_entropy(name)])
        gen = np.random.default_rng(seq)
        self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams
