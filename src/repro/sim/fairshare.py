"""Max-min fair fluid-flow sharing of capacitated resources.

This module is the single contention mechanism of the simulator.  A
:class:`SharedResource` is anything with a capacity in *units per second*:
a physical NIC (bytes/s), a software bridge, a disk, an NFS server, a
physical CPU package (core-seconds/s == cores), or a VM's VCPU allocation.

A :class:`FluidFlow` is a demand of a given *size* that traverses an ordered
*path* of resources — e.g. a network transfer crosses ``(src VM NIC, src
host NIC, dst host NIC, dst VM NIC)``, while a burst of CPU work crosses
``(vm.vcpu, host.cpu)``.  At any instant every active flow receives a rate;
the rates are the *max-min fair allocation* with optional per-flow caps,
computed by progressive filling:

1. all unfrozen flows share one common rate *level* that rises from 0;
2. the level stops at the first constraint — a flow cap, or a resource whose
   capacity is exhausted by its frozen load plus its unfrozen flows at the
   level;
3. the constrained flows freeze at that level; repeat with the rest.

Whenever the flow set changes, all flows' progress is advanced to *now*,
rates are recomputed, and the next completion is scheduled.  The result is
an event-driven fluid simulation whose cost is independent of transfer sizes.

Resources keep a time-integrated load so monitors can report utilization.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Sequence

from repro.errors import ResourceError, SimulationError
from repro.sim.kernel import Event, Simulator

_EPS = 1e-12
#: Smallest scheduling horizon (seconds); see FairShareSystem._advance.
_MIN_DT = 1e-9


class SharedResource:
    """A capacity shared max-min fairly among the flows crossing it."""

    __slots__ = ("name", "capacity", "_flows", "current_load",
                 "_busy_integral", "_last_change")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ResourceError(f"resource {name!r} needs capacity > 0, "
                                f"got {capacity}")
        self.name = name
        self.capacity = float(capacity)
        self._flows: set["FluidFlow"] = set()
        self.current_load = 0.0
        self._busy_integral = 0.0
        self._last_change = 0.0

    @property
    def utilization(self) -> float:
        """Instantaneous load fraction in [0, 1]."""
        return min(1.0, self.current_load / self.capacity)

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    def _set_load(self, load: float, now: float) -> None:
        self._busy_integral += self.current_load * (now - self._last_change)
        self._last_change = now
        self.current_load = load

    def busy_time(self, now: float) -> float:
        """Integral of the load fraction up to ``now`` (resource-seconds)."""
        return (self._busy_integral
                + self.current_load * (now - self._last_change)) / self.capacity

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<SharedResource {self.name} cap={self.capacity:g} "
                f"load={self.current_load:g}>")


class FluidFlow:
    """A demand of ``size`` units crossing a path of shared resources."""

    __slots__ = ("name", "path", "size", "remaining", "rate", "cap",
                 "done", "start_time", "end_time", "meta", "_moved")

    def __init__(self, name: str, path: Sequence[SharedResource], size: float,
                 cap: Optional[float], done: Event, start_time: float,
                 meta: Any = None):
        self.name = name
        self.path = tuple(path)
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.cap = float(cap) if cap is not None else math.inf
        self.done = done
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.meta = meta
        self._moved = 0.0

    @property
    def transferred(self) -> float:
        """Units moved so far (works for open-ended flows too)."""
        return self._moved

    @property
    def active(self) -> bool:
        return self.end_time is None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FluidFlow {self.name} remaining={self.remaining:g} "
                f"rate={self.rate:g}>")


class FairShareSystem:
    """Manages all fluid flows of one simulation and their fair rates."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._flows: set[FluidFlow] = set()
        self._last_update = 0.0
        self._timer_version = 0
        self.completed_count = 0

    # -- public API ------------------------------------------------------
    def open(self, path: Sequence[SharedResource], size: float,
             cap: Optional[float] = None, name: str = "flow",
             meta: Any = None) -> FluidFlow:
        """Start a flow; ``flow.done`` triggers with the flow on completion.

        ``size`` may be ``math.inf`` for an open-ended background load that
        is ended with :meth:`close`.
        """
        if size < 0:
            raise ResourceError(f"flow size must be >= 0, got {size}")
        if not path:
            raise ResourceError("flow path must contain at least one resource")
        if cap is not None and cap <= 0:
            raise ResourceError(f"flow cap must be > 0, got {cap}")
        flow = FluidFlow(name, path, size, cap, self.sim.event(),
                         self.sim.now, meta=meta)
        self._advance()
        if size <= _EPS and math.isfinite(size):
            flow.remaining = 0.0
            flow.end_time = self.sim.now
            flow.done.succeed(flow)
            self._rebalance()
            return flow
        self._flows.add(flow)
        for res in flow.path:
            res._flows.add(flow)
        self._rebalance()
        return flow

    def close(self, flow: FluidFlow) -> float:
        """End an open-ended (or any active) flow early.

        Returns the amount transferred.  The flow's ``done`` event triggers
        with the flow.
        """
        if flow not in self._flows:
            raise ResourceError(f"flow {flow.name!r} is not active")
        self._advance()
        self._detach(flow)
        flow.done.succeed(flow)
        self._rebalance()
        return flow.transferred

    def set_capacity(self, resource: SharedResource, capacity: float) -> None:
        """Change a resource's capacity mid-simulation (fault injection).

        All in-flight progress is advanced to *now* at the old rates first,
        then rates are recomputed under the new capacity — so a network
        degradation only affects bytes still to be moved.
        """
        if capacity <= 0:
            raise ResourceError(
                f"resource {resource.name!r} needs capacity > 0, "
                f"got {capacity}")
        self._advance()
        resource.capacity = float(capacity)
        self._rebalance()

    @property
    def active_flows(self) -> frozenset[FluidFlow]:
        return frozenset(self._flows)

    def flows_through(self, resource: SharedResource) -> frozenset[FluidFlow]:
        return frozenset(resource._flows)

    # -- internals ---------------------------------------------------------
    def _detach(self, flow: FluidFlow) -> None:
        self._flows.discard(flow)
        now = self.sim.now
        for res in flow.path:
            res._flows.discard(flow)
            if not res._flows:
                res._set_load(0.0, now)
        flow.rate = 0.0
        flow.end_time = now

    def _advance(self) -> None:
        """Progress every active flow from the last update time to now."""
        now = self.sim.now
        dt = now - self._last_update
        if dt < 0:  # pragma: no cover - defensive
            raise SimulationError("fair-share clock went backwards")
        if dt > 0:
            finished: list[FluidFlow] = []
            for flow in self._flows:
                if flow.rate > 0:
                    flow._moved += flow.rate * dt
                    if math.isfinite(flow.remaining):
                        flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
                        # A flow is done when the residue is negligible
                        # relative to its size *or* would take less than a
                        # nanosecond to drain — the latter absorbs float
                        # subtraction residues that are above the size
                        # epsilon but below the clock's resolution.
                        if (flow.remaining <= _EPS * max(1.0, flow.size)
                                or flow.remaining <= flow.rate * _MIN_DT):
                            flow.remaining = 0.0
                            flow._moved = flow.size
                            finished.append(flow)
            for flow in finished:
                self._detach(flow)
                self.completed_count += 1
                flow.done.succeed(flow)
        self._last_update = now

    def _rebalance(self) -> None:
        """Recompute max-min fair rates and schedule the next completion."""
        now = self.sim.now
        rates = _maxmin_rates(self._flows)
        resources: set[SharedResource] = set()
        for flow in self._flows:
            flow.rate = rates[flow]
            resources.update(flow.path)
        for res in resources:
            res._set_load(sum(f.rate for f in res._flows), now)
        self._schedule_next()

    def _schedule_next(self) -> None:
        self._timer_version += 1
        version = self._timer_version
        horizon = math.inf
        for flow in self._flows:
            if flow.rate > _EPS and math.isfinite(flow.remaining):
                horizon = min(horizon, flow.remaining / flow.rate)
        if not math.isfinite(horizon):
            return
        timer = self.sim.timeout(max(horizon, _MIN_DT))
        timer.callbacks.append(lambda _ev: self._on_timer(version))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # superseded by a later rebalance
        self._advance()
        self._rebalance()


def _maxmin_rates(flows: Iterable[FluidFlow]) -> dict[FluidFlow, float]:
    """Progressive-filling max-min fair allocation with per-flow caps."""
    unfrozen = set(flows)
    rates: dict[FluidFlow, float] = {f: 0.0 for f in unfrozen}
    if not unfrozen:
        return rates
    frozen_load: dict[SharedResource, float] = {}
    for flow in unfrozen:
        for res in flow.path:
            frozen_load.setdefault(res, 0.0)
    level = 0.0
    while unfrozen:
        # How high can the common level rise before a constraint binds?
        sat_levels: dict[SharedResource, float] = {}
        for res, loaded in frozen_load.items():
            n = sum(1 for f in res._flows if f in unfrozen)
            if n:
                sat_levels[res] = (res.capacity - loaded) / n
        res_level = min(sat_levels.values(), default=math.inf)
        min_cap = min((f.cap for f in unfrozen), default=math.inf)
        next_level = min(res_level, min_cap)
        if not math.isfinite(next_level):  # pragma: no cover - defensive
            raise ResourceError("unbounded fair-share level")
        level = max(level, next_level)
        newly_frozen: set[FluidFlow] = set()
        if min_cap <= next_level + _EPS:
            newly_frozen.update(f for f in unfrozen if f.cap <= level + _EPS)
        for res, sat in sat_levels.items():
            if sat <= next_level + _EPS:  # this resource saturates here
                newly_frozen.update(f for f in res._flows if f in unfrozen)
        if not newly_frozen:  # pragma: no cover - numerical safety net
            newly_frozen = set(unfrozen)
        for flow in newly_frozen:
            rates[flow] = min(level, flow.cap)
            unfrozen.discard(flow)
            for res in flow.path:
                frozen_load[res] += rates[flow]
    return rates
