"""Max-min fair fluid-flow sharing of capacitated resources.

This module is the single contention mechanism of the simulator.  A
:class:`SharedResource` is anything with a capacity in *units per second*:
a physical NIC (bytes/s), a software bridge, a disk, an NFS server, a
physical CPU package (core-seconds/s == cores), or a VM's VCPU allocation.

A :class:`FluidFlow` is a demand of a given *size* that traverses an ordered
*path* of resources — e.g. a network transfer crosses ``(src VM NIC, src
host NIC, dst host NIC, dst VM NIC)``, while a burst of CPU work crosses
``(vm.vcpu, host.cpu)``.  At any instant every active flow receives a rate;
the rates are the *max-min fair allocation* with optional per-flow caps,
computed by progressive filling:

1. all unfrozen flows share one common rate *level* that rises from 0;
2. the level stops at the first constraint — a flow cap, or a resource whose
   capacity is exhausted by its frozen load plus its unfrozen flows at the
   level;
3. the constrained flows freeze at that level; repeat with the rest.

Whenever the flow set changes, all flows' progress is advanced to *now*,
rates are recomputed, and the next completion is scheduled.  The result is
an event-driven fluid simulation whose cost is independent of transfer sizes.

Incremental engine
------------------
Max-min fairness decomposes over the *connected components* of the
resource/flow graph (two resources are connected when a live flow crosses
both): the fair rates inside one component are a function of that component
alone.  A flow-set change therefore only recomputes the component it
touches.  Components are maintained incrementally as a union-find-style
partition (:class:`_Component`): a new flow eagerly unions the components
its path bridges (small-to-large), while splits are detected lazily — a
union that lost half its flows since its peak is re-derived from the live
adjacency on first touch.  A union may transiently cover several true
components; the fill over a union decomposes exactly into per-component
fills, so scoping never changes a computed rate.  Disjoint components keep
their rates — recomputing them would reproduce the same values bit for
bit, which is the engine's determinism invariant (see ``tests/sim/
test_fairshare_incremental.py`` and DESIGN.md §Performance).

Two things deliberately stay global so that simulated timestamps are
*bit-identical* to a full recomputation:

* progress advancement (``_advance``) walks every active flow whenever
  simulated time has passed — partial advancement would change the
  floating-point stepping of ``remaining`` and with it completion
  timestamps.  Same-timestamp cascades (the common case) cost O(1).
* the completion horizon of an *untouched* flow is a pure function of its
  unchanged ``remaining``/``rate``, so cached horizons in a lazy-deletion
  heap are exact; the heap replaces the old all-flows min scan.

Resources keep a time-integrated load *fraction* so monitors can report
utilization; capacity changes do not rescale already-integrated history.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterable, Optional, Sequence

from repro.errors import ResourceError, SimulationError
from repro.sim.kernel import Event, Simulator

try:  # vectorized _advance; the kernel still works without NumPy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Flow count from which the vectorized advance pays for its setup.
_VEC_MIN_FLOWS = 64

_EPS = 1e-12
#: Smallest scheduling horizon (seconds); see FairShareSystem._advance.
_MIN_DT = 1e-9
#: A multi-rack union smaller than this is cheaper to fill whole than to
#: split and re-union on the next cross-rack (NFS) flow.
_RACK_MIN_FLOWS = 16


class SharedResource:
    """A capacity shared max-min fairly among the flows crossing it."""

    __slots__ = ("name", "capacity", "nominal", "rack", "_flows",
                 "current_load", "_busy_integral", "_moved_integral",
                 "_last_change", "_comp")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ResourceError(f"resource {name!r} needs capacity > 0, "
                                f"got {capacity}")
        self.name = name
        self.capacity = float(capacity)
        #: Locality tag (rack name) set by the topology layer; ``None``
        #: for untagged or inherently cross-rack resources (aggregation
        #: links).  Purely an engine hint — see the per-rack split in
        #: :meth:`FairShareSystem._rack_split`; a stale tag can cost
        #: sharding opportunity but never correctness.
        self.rack: Optional[str] = None
        #: Design capacity.  ``set_capacity`` (fault injection) moves only
        #: ``capacity``; rate caps derived from device speed must use the
        #: nominal value so a transient degradation is never frozen into a
        #: flow's lifetime cap.
        self.nominal = float(capacity)
        self._flows: set["FluidFlow"] = set()
        #: Union-find component this resource currently belongs to (None
        #: while no live flow has ever crossed it, or after a lazy split
        #: found it isolated).
        self._comp: Optional["_Component"] = None
        self.current_load = 0.0
        self._busy_integral = 0.0
        self._moved_integral = 0.0
        self._last_change = 0.0

    @property
    def utilization(self) -> float:
        """Instantaneous load fraction in [0, 1]."""
        return min(1.0, self.current_load / self.capacity)

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    def _accrue(self, now: float) -> None:
        """Fold the elapsed load *fraction* into the busy integral.

        Integrating the fraction (not the absolute load) makes history
        immune to later capacity changes: a chaos ``disk.slow`` fault must
        not retroactively rescale utilization that was accumulated at the
        old capacity.
        """
        dt = now - self._last_change
        self._busy_integral += self.current_load / self.capacity * dt
        self._moved_integral += self.current_load * dt
        self._last_change = now

    def _set_load(self, load: float, now: float) -> None:
        # Accrue only when the value actually changes: busy_time then
        # depends solely on the load *trajectory*, not on how often the
        # engine happened to re-assert an unchanged load (which differs
        # between incremental and whole-graph rebalancing).
        if load != self.current_load:
            self._accrue(now)
            self.current_load = load

    def busy_time(self, now: float) -> float:
        """Integral of the load fraction up to ``now`` (resource-seconds)."""
        return (self._busy_integral
                + self.current_load / self.capacity
                * (now - self._last_change))

    def moved_through(self, now: float) -> float:
        """Units carried through this resource up to ``now`` — the
        interface byte counter a real NIC/device exposes.  Unlike
        :meth:`busy_time` this is in absolute units, so it *is* sensitive
        to capacity changes: the link-health detector compares its rate
        of change against the nominal capacity."""
        return (self._moved_integral
                + self.current_load * (now - self._last_change))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<SharedResource {self.name} cap={self.capacity:g} "
                f"load={self.current_load:g}>")


class FluidFlow:
    """A demand of ``size`` units crossing a path of shared resources."""

    __slots__ = ("name", "path", "size", "remaining", "rate", "cap",
                 "done", "start_time", "end_time", "meta", "_moved",
                 "_seq", "_horizon", "_upath", "_comp", "_rack")

    def __init__(self, name: str, path: Sequence[SharedResource], size: float,
                 cap: Optional[float], done: Event, start_time: float,
                 meta: Any = None):
        self.name = name
        self.path = tuple(path)
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.cap = float(cap) if cap is not None else math.inf
        self.done = done
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.meta = meta
        self._moved = 0.0
        #: Monotone id: deterministic tie-break in the horizon heap.
        self._seq = 0
        #: Cached completion horizon (remaining / rate) as of the flow's
        #: last rate change or the last global advance; ``inf`` when the
        #: flow cannot complete on its own.
        self._horizon = math.inf
        #: Union-find component while the flow is live.
        self._comp: Optional["_Component"] = None
        #: Path with duplicates removed (unfrozen-counter bookkeeping);
        #: load accumulation still charges duplicated path entries twice.
        path = self.path
        if len(path) < 2:
            self._upath = path
        elif len(path) == 2:  # the hot compute/disk case
            self._upath = path if path[0] is not path[1] else path[:1]
        else:
            self._upath = tuple(dict.fromkeys(path))
        #: Rack key, frozen at open time: the common rack tag of every
        #: resource on the path, or ``None`` when the path is cross-rack
        #: or touches an untagged resource.  Consumed by the per-rack
        #: component split.
        rack = self._upath[0].rack
        if rack is not None:
            for res in self._upath[1:]:
                if res.rack != rack:
                    rack = None
                    break
        self._rack = rack

    @property
    def transferred(self) -> float:
        """Units moved so far (works for open-ended flows too)."""
        return self._moved

    @property
    def active(self) -> bool:
        return self.end_time is None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FluidFlow {self.name} remaining={self.remaining:g} "
                f"rate={self.rate:g}>")


class _Component:
    """A never-split union of live connected components.

    Unions happen eagerly when a new flow bridges components; splits are
    detected lazily — when a rebalance touches a component whose live flow
    count has halved since its peak, the partition is re-derived from the
    live adjacency (amortized O(1) per flow removal).  A component may
    therefore transiently cover *several* true connected components; the
    progressive fill over such a union decomposes exactly into the
    per-component fills (``global_rebalance`` is the degenerate case of
    one all-covering union), so the lazy split cannot change any computed
    rate, only how much work a rebalance does.
    """

    __slots__ = ("flows", "resources", "peak", "racks", "checked",
                 "nlive", "capped")

    def __init__(self) -> None:
        self.flows: set[FluidFlow] = set()
        self.resources: set[SharedResource] = set()
        #: Largest live flow count seen since the last (re)derivation;
        #: the lazy-split trigger compares against it.
        self.peak = 0
        #: Live flow count per rack key (``None`` = cross-rack/untagged).
        #: Racks not glued together by a live ``None`` flow can split off
        #: without a BFS — see :meth:`FairShareSystem._rack_split`.
        self.racks: dict[Optional[str], int] = {}
        #: Flow count at the last *failed* rack-split attempt (0 = never
        #: attempted).  Re-attempts wait until the count drifts ≥25% from
        #: it, so an unsplittable union doesn't pay the O(incidence)
        #: attempt on every rebalance.
        self.checked = 0
        #: Live flow count per resource (``flow._upath`` incidence),
        #: maintained at attach/detach so a progressive fill seeds its
        #: unfrozen counters with one dict copy instead of re-scanning
        #: every scoped flow's path — see :func:`_maxmin_rates_scoped`.
        self.nlive: dict[SharedResource, int] = {}
        #: Live flows with a finite rate cap; the fill's cap heap is built
        #: from this instead of inspecting every flow.
        self.capped: set[FluidFlow] = set()


class FairShareSystem:
    """Manages all fluid flows of one simulation and their fair rates.

    ``metrics`` (optional) is a :class:`~repro.telemetry.metrics
    .MetricsRegistry`; when given, engine cost counters (rebalances, flow
    visits, timer cancellations, component sizes) are mirrored into it so
    the tuner and traces can see what the fair-share engine is doing.

    ``global_rebalance=True`` forces every rebalance to recompute the whole
    flow graph (the pre-incremental behaviour).  It exists as a reference
    mode for the determinism tests: simulated results must be bit-identical
    with it on or off.

    ``rack_sharding=False`` disables the per-rack component split (the
    eager, BFS-free decomposition of a multi-rack union once its last
    cross-rack flow drains).  Another reference mode: rates and
    timestamps must be bit-identical with it on or off, only
    ``flow_visits`` moves.
    """

    def __init__(self, sim: Simulator, metrics=None,
                 global_rebalance: bool = False,
                 rack_sharding: bool = True):
        self.sim = sim
        self._flows: set[FluidFlow] = set()
        self._last_update = 0.0
        self._timer_version = 0
        self._timer = None
        self.completed_count = 0
        self.global_rebalance = global_rebalance
        self.rack_sharding = rack_sharding
        #: Lazy-deletion heap of (horizon, flow seq, flow); an entry is
        #: valid while the flow is active and its cached horizon matches.
        self._horizon_heap: list = []
        self._flow_seq = 0
        # -- engine statistics (perf harness + telemetry) ----------------
        self.rebalance_count = 0
        #: Flow inspections performed by the scoped progressive fills.
        self.flow_visits = 0
        #: Conservative model of the flow inspections the pre-incremental
        #: engine would have performed: that engine re-counted every
        #: resource's unfrozen flows and re-scanned all flow caps in every
        #: filling round, i.e. at least ``rounds * (incidence + flows)``
        #: visits per rebalance.  Scoped rounds lower-bound global rounds,
        #: so the ratio ``flow_visits_global / flow_visits`` understates
        #: the true saving.
        self.flow_visits_global = 0
        #: Sum of ``len(flow._upath)`` over active flows, maintained O(1).
        self._incidence = 0
        self.timer_cancellations = 0
        self.max_component_flows = 0
        #: Multi-rack unions decomposed along rack lines (no BFS); the
        #: conflict-fallback exact splits are *not* counted here.
        self.rack_splits = 0
        #: Optional flow-completion sink (anything with ``append``); every
        #: flow that leaves the system — completed, closed, interrupted —
        #: is handed over exactly once, after its rate/end_time are final.
        #: The observatory's attribution engine installs a
        #: :class:`repro.observatory.attribution.FlowLog` here via the
        #: telemetry facade; the engine itself stays telemetry-agnostic.
        self.flow_log = None
        self._metrics = metrics
        if metrics is not None:
            self._m_rebalances = metrics.counter(
                "fairshare.rebalances", "component-scoped rate recomputations")
            self._m_visits = metrics.counter(
                "fairshare.flow.visits", "flow visits in progressive fills")
            self._m_cancel = metrics.counter(
                "fairshare.timer.cancellations",
                "superseded completion timers withdrawn from the kernel heap")
            self._m_component = metrics.histogram(
                "fairshare.component.flows",
                "flows per rebalanced connected component",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                         256.0, 512.0, 1024.0))

    # -- public API ------------------------------------------------------
    def open(self, path: Sequence[SharedResource], size: float,
             cap: Optional[float] = None, name: str = "flow",
             meta: Any = None) -> FluidFlow:
        """Start a flow; ``flow.done`` triggers with the flow on completion.

        ``size`` may be ``math.inf`` for an open-ended background load that
        is ended with :meth:`close`.
        """
        if size < 0:
            raise ResourceError(f"flow size must be >= 0, got {size}")
        if not path:
            raise ResourceError("flow path must contain at least one resource")
        if cap is not None and cap <= 0:
            raise ResourceError(f"flow cap must be > 0, got {cap}")
        flow = FluidFlow(name, path, size, cap, self.sim.event(),
                         self.sim.now, meta=meta)
        self._flow_seq += 1
        flow._seq = self._flow_seq
        completed = self._advance()
        if size <= _EPS and math.isfinite(size):
            # Zero-size fast path: the flow set is unchanged, so no rates
            # move — succeed the event and skip the rebalance entirely
            # (unless the advance itself completed flows).
            flow.remaining = 0.0
            flow.end_time = self.sim.now
            flow.done.succeed(flow)
            if completed:
                self._rebalance([r for f in completed for r in f.path])
            return flow
        self._flows.add(flow)
        for res in flow.path:
            res._flows.add(flow)
        self._incidence += len(flow._upath)
        self._attach_component(flow)
        seeds = list(flow.path)
        for f in completed:
            seeds.extend(f.path)
        self._rebalance(seeds)
        return flow

    def close(self, flow: FluidFlow) -> float:
        """End an open-ended (or any active) flow early.

        Returns the amount transferred.  The flow's ``done`` event triggers
        with the flow.
        """
        if flow not in self._flows:
            raise ResourceError(f"flow {flow.name!r} is not active")
        completed = self._advance()
        self._detach(flow)
        flow.done.succeed(flow)
        seeds = list(flow.path)
        for f in completed:
            seeds.extend(f.path)
        self._rebalance(seeds)
        return flow.transferred

    def set_capacity(self, resource: SharedResource, capacity: float) -> None:
        """Change a resource's capacity mid-simulation (fault injection).

        All in-flight progress is advanced to *now* at the old rates first,
        then rates are recomputed under the new capacity — so a network
        degradation only affects bytes still to be moved.  The busy-time
        integral is flushed at the old capacity first, so utilization
        history is not rescaled.
        """
        if capacity <= 0:
            raise ResourceError(
                f"resource {resource.name!r} needs capacity > 0, "
                f"got {capacity}")
        completed = self._advance()
        resource._accrue(self.sim.now)
        resource.capacity = float(capacity)
        seeds = [resource]
        for f in completed:
            seeds.extend(f.path)
        self._rebalance(seeds)

    @property
    def active_flows(self) -> frozenset[FluidFlow]:
        return frozenset(self._flows)

    def flows_through(self, resource: SharedResource) -> frozenset[FluidFlow]:
        return frozenset(resource._flows)

    def component_of(self, *seeds) -> tuple[frozenset, frozenset]:
        """The live connected component reachable from resources/flows.

        Returns ``(flows, resources)``; diagnostic/teaching helper used by
        the tests and the perf harness.
        """
        resources: list[SharedResource] = []
        for seed in seeds:
            if isinstance(seed, SharedResource):
                resources.append(seed)
            else:
                resources.extend(seed.path)
        flows, res_seen = self._component(resources)
        return frozenset(flows), frozenset(res_seen)

    # -- internals ---------------------------------------------------------
    def _detach(self, flow: FluidFlow) -> None:
        if flow in self._flows:
            self._incidence -= len(flow._upath)
        comp = flow._comp
        if comp is not None:
            comp.flows.discard(flow)
            comp.capped.discard(flow)
            n = comp.racks.get(flow._rack, 0) - 1
            if n > 0:
                comp.racks[flow._rack] = n
            else:
                comp.racks.pop(flow._rack, None)
                # A rack key vanishing changes shearability outright (the
                # canonical case: the last cross-rack flow closes and the
                # union falls apart along rack lines) — re-arm the shear
                # gate instead of waiting for 25% composition drift.
                comp.checked = 0
            nlive = comp.nlive
            for res in flow._upath:
                n = nlive.get(res, 0) - 1
                if n > 0:
                    nlive[res] = n
                else:
                    nlive.pop(res, None)
            flow._comp = None
        self._flows.discard(flow)
        now = self.sim.now
        for res in flow.path:
            res._flows.discard(flow)
            if not res._flows:
                res._set_load(0.0, now)
        flow.rate = 0.0
        flow.end_time = now
        if self.flow_log is not None:
            self.flow_log.append(flow)

    def _advance(self) -> list[FluidFlow]:
        """Progress every active flow from the last update time to now.

        Returns the flows that completed (already detached, ``done``
        triggered) so the caller can fold their components into the
        rebalance scope.  Advancement is deliberately global: partial
        (per-component) advancement would change the floating-point
        stepping of ``remaining`` and therefore completion timestamps.
        When no simulated time has passed — the overwhelmingly common
        cascade case — this is O(1).
        """
        now = self.sim.now
        dt = now - self._last_update
        if dt < 0:  # pragma: no cover - defensive
            raise SimulationError("fair-share clock went backwards")
        finished: list[FluidFlow] = []
        if dt > 0:
            # Time moved, so every surviving horizon shifted; the fresh
            # horizons are computed in the same pass that steps progress
            # (what the old code spent on its every-event min scan, paid
            # here only when time advances).  Heap layout depends on entry
            # order, but pops follow the (horizon, seq) total order, so the
            # layout is not observable.
            if _np is not None and len(self._flows) >= _VEC_MIN_FLOWS:
                entries = self._advance_vec(dt, finished)
            else:
                entries = self._advance_scalar(dt, finished)
            for flow in finished:
                self._detach(flow)
                self.completed_count += 1
                flow.done.succeed(flow)
            heapq.heapify(entries)
            self._horizon_heap = entries
        self._last_update = now
        return finished

    def _advance_scalar(self, dt: float,
                        finished: list[FluidFlow]) -> list:
        entries: list = []
        push = entries.append
        inf = math.inf
        for flow in self._flows:
            rate = flow.rate
            if rate > 0:
                flow._moved += rate * dt
                if math.isfinite(flow.remaining):
                    flow.remaining = max(0.0, flow.remaining - rate * dt)
                    # A flow is done when the residue is negligible
                    # relative to its size *or* would take less than a
                    # nanosecond to drain — the latter absorbs float
                    # subtraction residues that are above the size
                    # epsilon but below the clock's resolution.
                    if (flow.remaining <= _EPS * max(1.0, flow.size)
                            or flow.remaining <= rate * _MIN_DT):
                        flow.remaining = 0.0
                        flow._moved = flow.size
                        finished.append(flow)
                    elif rate > _EPS:
                        horizon = flow.remaining / rate
                        flow._horizon = horizon
                        push((horizon, flow._seq, flow))
                    else:
                        flow._horizon = inf
                else:
                    flow._horizon = inf
            else:
                flow._horizon = inf
        return entries

    def _advance_vec(self, dt: float, finished: list[FluidFlow]) -> list:
        """Vectorized :meth:`_advance_scalar`, bit-identical by design.

        Elementwise float64 multiply/subtract/divide/compare in NumPy are
        the same IEEE-754 operations CPython performs on scalars, so the
        stepped ``remaining``, the completion decisions and the new
        horizons are exactly the scalar path's values; iteration order
        (and with it the ``finished`` order and heap entry order) follows
        the same ``self._flows`` traversal.  Only the loop overhead is
        vectorized away — worthwhile from ~tens of concurrent flows,
        which is exactly the 1,000-VM regime where ``_advance`` is the
        kernel's hottest loop.
        """
        flows = list(self._flows)
        n = len(flows)
        rate = _np.fromiter((f.rate for f in flows), _np.float64, count=n)
        rem = _np.fromiter((f.remaining for f in flows), _np.float64,
                           count=n)
        size = _np.fromiter((f.size for f in flows), _np.float64, count=n)
        step = rate * dt
        active = rate > 0.0
        updated = active & _np.isfinite(rem)
        new_rem = _np.maximum(0.0, rem - step)
        done = updated & ((new_rem <= _EPS * _np.maximum(1.0, size))
                          | (new_rem <= rate * _MIN_DT))
        live = updated & ~done & (rate > _EPS)
        with _np.errstate(divide="ignore", invalid="ignore"):
            horizon = _np.where(live, new_rem / rate, math.inf)
        entries: list = []
        push = entries.append
        inf = math.inf
        # Write-back loop: plain Python, but all float arithmetic and all
        # branch decisions come from the arrays above.
        step_l = step.tolist()
        rem_l = new_rem.tolist()
        hor_l = horizon.tolist()
        active_l = active.tolist()
        updated_l = updated.tolist()
        done_l = done.tolist()
        live_l = live.tolist()
        for i, flow in enumerate(flows):
            if done_l[i]:
                flow._moved = flow.size
                flow.remaining = 0.0
                finished.append(flow)
            elif updated_l[i]:
                flow._moved += step_l[i]
                flow.remaining = rem_l[i]
                if live_l[i]:
                    flow._horizon = hor_l[i]
                    push((hor_l[i], flow._seq, flow))
                else:
                    flow._horizon = inf
            elif active_l[i]:  # infinite flow: progress, no horizon
                flow._moved += step_l[i]
                flow._horizon = inf
            else:
                flow._horizon = inf
        return entries

    def _attach_component(self, flow: FluidFlow) -> None:
        """Union the components the new flow's path bridges (small-to-large).

        Merging the smaller union into the larger bounds the total merge
        work at O(n log n) over a run; the split side of the partition is
        amortized by :meth:`_split_component`'s halving trigger.
        """
        comp: Optional[_Component] = None
        for res in flow._upath:
            other = res._comp
            if other is None or other is comp:
                continue
            if comp is None:
                comp = other
                continue
            if len(other.flows) > len(comp.flows):
                comp, other = other, comp
            for r in other.resources:
                r._comp = comp
            comp.resources.update(other.resources)
            for f in other.flows:
                f._comp = comp
            comp.flows.update(other.flows)
            racks = comp.racks
            for rk, n in other.racks.items():
                prev = racks.get(rk, 0)
                if prev == 0:
                    comp.checked = 0  # new rack key: shearability changed
                racks[rk] = prev + n
            # Components are resource-disjoint, so the incidence dicts
            # merge without collisions.
            comp.nlive.update(other.nlive)
            comp.capped.update(other.capped)
        if comp is None:
            comp = _Component()
        comp.flows.add(flow)
        prev = comp.racks.get(flow._rack, 0)
        comp.racks[flow._rack] = prev + 1
        if prev == 0:
            comp.checked = 0  # new rack key: shearability changed
        flow._comp = comp
        nlive = comp.nlive
        for res in flow._upath:
            if res._comp is not comp:
                res._comp = comp
                comp.resources.add(res)
            nlive[res] = nlive.get(res, 0) + 1
        if math.isfinite(flow.cap):
            comp.capped.add(flow)
        n = len(comp.flows)
        if n > comp.peak:
            comp.peak = n

    def _split_component(self, comp: _Component) -> None:
        """Re-derive true components from a shrunken union (lazy split).

        One breadth-first walk over the union's live adjacency, the same
        walk the pre-partition engine paid on *every* rebalance.  Isolated
        resources (no live flows left) drop out of the partition entirely.
        """
        for res in comp.resources:
            if res._comp is comp:
                res._comp = None
        pending = comp.flows
        for flow in pending:
            flow._comp = None
        while pending:
            part = _Component()
            first = pending.pop()
            first._comp = part
            part.flows.add(first)
            stack = [first]
            while stack:
                flow = stack.pop()
                for res in flow._upath:
                    if res._comp is part:
                        continue
                    res._comp = part
                    part.resources.add(res)
                    for nxt in res._flows:
                        if nxt._comp is not part:
                            nxt._comp = part
                            part.flows.add(nxt)
                            pending.discard(nxt)
                            stack.append(nxt)
            part.peak = len(part.flows)
            racks: dict[Optional[str], int] = {}
            nlive: dict[SharedResource, int] = {}
            capped = part.capped
            for f in part.flows:
                racks[f._rack] = racks.get(f._rack, 0) + 1
                for r in f._upath:
                    nlive[r] = nlive.get(r, 0) + 1
                if math.isfinite(f.cap):
                    capped.add(f)
            part.racks = racks
            part.nlive = nlive
            part.checked = 0

    def _rack_split(self, comp: _Component) -> None:
        """Shear unglued racks off a multi-rack union, without a BFS.

        Two flows are connected only through a shared resource, and a
        rack-pure flow only crosses resources of its own rack — so a rack
        whose resources are touched by *no* live cross-rack (``None``
        rack key) flow shares nothing with the rest of the union: its
        flows split into their own part.  Racks that a ``None`` flow does
        touch stay **glued** to the remaining blob (the NFS appliance's
        star and the aggregation uplink genuinely couple them), which is
        exactly the true connectivity quotient the engine's scoping
        contract allows — every part is a union of true components, so no
        computed rate can change, only how much work a fill does.

        Rack keys are frozen at flow-open time while resource tags can be
        retagged by VM migration, so a resource *can* be claimed by pure
        flows of two different racks.  A single O(incidence) pre-pass
        detects any such conflict and falls back to the exact BFS split —
        correctness never depends on tag hygiene, only the shortcut does.

        An attempt that finds nothing to shear records the union's size
        in ``comp.checked``; the caller's gate skips re-attempts until
        the composition drifts, bounding the cost of unsplittable blobs.
        """
        claim: dict[SharedResource, str] = {}
        blob_flows: list[FluidFlow] = []
        for flow in comp.flows:
            rk = flow._rack
            if rk is None:
                blob_flows.append(flow)
                continue
            for res in flow._upath:
                prev = claim.setdefault(res, rk)
                if prev != rk:
                    # Conflicting tags: fall back to the exact split, and
                    # gate the parts — re-attempting the shortcut would
                    # hit the same conflict until the composition drifts.
                    survivors = list(comp.flows)
                    self._split_component(comp)
                    for f in survivors:
                        part = f._comp
                        if part is not None and part.checked == 0:
                            part.checked = len(part.flows)
                    return
        glued: set[str] = set()
        for flow in blob_flows:
            for res in flow._upath:
                rk = claim.get(res)
                if rk is not None:
                    glued.add(rk)
        cells = [rk for rk in comp.racks
                 if rk is not None and rk not in glued]
        n_parts = len(cells) + (1 if blob_flows else 0)
        if n_parts < 2:
            comp.checked = len(comp.flows)  # nothing shearable right now
            return
        self.rack_splits += 1
        for res in comp.resources:
            if res._comp is comp:
                res._comp = None  # stale entries drop out; live ones are
                # re-homed below
        parts: dict[str, _Component] = {rk: _Component() for rk in cells}
        blob = _Component() if blob_flows else None
        for flow in comp.flows:
            rk = flow._rack
            part = parts.get(rk) if rk is not None else None
            if part is None:
                part = blob  # cross-rack flows and glued racks
            part.flows.add(flow)
            flow._comp = part
            part.racks[rk] = part.racks.get(rk, 0) + 1
            nlive = part.nlive
            for res in flow._upath:
                nlive[res] = nlive.get(res, 0) + 1
            if math.isfinite(flow.cap):
                part.capped.add(flow)
        for res, rk in claim.items():
            part = parts.get(rk, blob)
            if res._comp is not part:
                res._comp = part
                part.resources.add(res)
        if blob is not None:
            for flow in blob_flows:
                for res in flow._upath:
                    if res._comp is None:
                        res._comp = blob
                        blob.resources.add(res)
            blob.peak = len(blob.flows)
            # The blob was just derived as unshearable-minus-cells;
            # gate its next attempt on composition drift.
            blob.checked = len(blob.flows)
        for part in parts.values():
            part.peak = len(part.flows)

    def _scope(self, seed_resources: Iterable[SharedResource]
               ) -> tuple[set[FluidFlow], set[SharedResource],
                          dict[SharedResource, int], set[FluidFlow]]:
        """Resolve a rebalance scope from the component partition.

        Touched unions that lost half their flows since their peak are
        split exactly first; touched unions that span several racks with
        no live cross-rack flow are decomposed along rack lines (the
        cheap split).  Then the scope is the union of the surviving
        components' flows, resources, per-resource live-flow counts and
        capped flows (plus any seed resources outside the partition,
        which carry no live flows).  The single-component case — the
        overwhelmingly common one — aliases the component's own sets
        instead of copying; callers only read them.
        """
        seeds = list(seed_resources)
        comps: list[_Component] = []
        # The last pass only re-derives: a split on the final splitting
        # pass must never leak its (drained) input component into the
        # scope, so the loop always ends on a fresh derivation.
        for _attempt in (0, 1, 2):
            comps = []
            seen: set[int] = set()
            bare: list[SharedResource] = []
            for res in seeds:
                comp = res._comp
                if comp is None:
                    bare.append(res)
                elif id(comp) not in seen:
                    seen.add(id(comp))
                    comps.append(comp)
            if _attempt == 2:
                break
            stale = [c for c in comps if 2 * len(c.flows) < c.peak]
            rackable = ([c for c in comps
                         if len(c.racks) > 1
                         and len(c.flows) >= _RACK_MIN_FLOWS
                         and 2 * len(c.flows) >= c.peak
                         and 4 * abs(len(c.flows) - c.checked)
                         >= c.checked]
                        if self.rack_sharding else [])
            if not stale and not rackable:
                break
            for comp in stale:
                self._split_component(comp)
            for comp in rackable:
                self._rack_split(comp)
        if len(comps) == 1 and not bare:
            comp = comps[0]
            return comp.flows, comp.resources, comp.nlive, comp.capped
        flows: set[FluidFlow] = set()
        resources: set[SharedResource] = set(bare)
        nlive: dict[SharedResource, int] = {}
        capped: set[FluidFlow] = set()
        for comp in comps:
            flows |= comp.flows
            resources |= comp.resources
            nlive.update(comp.nlive)
            capped |= comp.capped
        return flows, resources, nlive, capped

    def _component(self, seed_resources: Iterable[SharedResource]
                   ) -> tuple[set[FluidFlow], set[SharedResource]]:
        """Breadth-first walk of the live flow/resource adjacency."""
        res_seen: set[SharedResource] = set()
        flows: set[FluidFlow] = set()
        stack = list(seed_resources)
        while stack:
            res = stack.pop()
            if res in res_seen:
                continue
            res_seen.add(res)
            for flow in res._flows:
                if flow not in flows:
                    flows.add(flow)
                    for r in flow.path:
                        if r not in res_seen:
                            stack.append(r)
        return flows, res_seen

    def _rebalance(self, seed_resources: Iterable[SharedResource]) -> None:
        """Recompute fair rates for the touched component(s) and reschedule.

        ``seed_resources`` are the resources whose flow set (or capacity)
        just changed; the rebalance covers their full connected components.
        Rates outside the scope are untouched — recomputing them would
        yield the same values, which the reference mode and the tests
        assert.
        """
        now = self.sim.now
        self.rebalance_count += 1
        if self.global_rebalance:
            flows, resources = self._component(
                {res for f in self._flows for res in f.path}
                | set(seed_resources))
            nlive = capped = None
        else:
            flows, resources, nlive, capped = self._scope(seed_resources)
        if flows:
            n_flows = len(flows)
            if n_flows > self.max_component_flows:
                self.max_component_flows = n_flows
            rates, visits, rounds = _maxmin_rates_scoped(flows, nlive,
                                                         capped)
            self.flow_visits += visits
            self.flow_visits_global += rounds * (self._incidence
                                                 + len(self._flows))
            heap = self._horizon_heap
            for flow in flows:
                rate = rates[flow]
                flow.rate = rate
                if rate > _EPS and math.isfinite(flow.remaining):
                    horizon = flow.remaining / rate
                    flow._horizon = horizon
                    heapq.heappush(heap, (horizon, flow._seq, flow))
                else:
                    flow._horizon = math.inf
            for res in resources:
                res._set_load(sum(f.rate for f in res._flows), now)
            if self._metrics is not None:
                self._m_component.observe(float(n_flows))
                self._m_visits.inc(visits)
        if self._metrics is not None:
            self._m_rebalances.inc()
        self._schedule_next()

    def _schedule_next(self) -> None:
        self._timer_version += 1
        version = self._timer_version
        timer = self._timer
        if timer is not None:
            self._timer = None
            if not timer._processed and not timer._cancelled:
                timer.cancel()
                self.timer_cancellations += 1
                if self._metrics is not None:
                    self._m_cancel.inc()
        heap = self._horizon_heap
        while heap:
            horizon, _seq, flow = heap[0]
            if flow.end_time is None and flow._horizon == horizon:
                break
            heapq.heappop(heap)
        if not heap:
            return
        timer = self.sim.timeout(max(heap[0][0], _MIN_DT))
        timer.callbacks.append(lambda _ev: self._on_timer(version))
        self._timer = timer

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # superseded by a later rebalance
        completed = self._advance()
        self._rebalance([r for f in completed for r in f.path])


def _maxmin_rates(flows: Iterable[FluidFlow]) -> dict[FluidFlow, float]:
    """Progressive-filling max-min fair allocation with per-flow caps.

    Reference implementation kept as the oracle for the incremental
    engine's property tests: :func:`_maxmin_rates_scoped` must agree with
    it exactly on every connected component.
    """
    unfrozen = set(flows)
    rates: dict[FluidFlow, float] = {f: 0.0 for f in unfrozen}
    if not unfrozen:
        return rates
    frozen_load: dict[SharedResource, float] = {}
    for flow in unfrozen:
        for res in flow.path:
            frozen_load.setdefault(res, 0.0)
    level = 0.0
    while unfrozen:
        # How high can the common level rise before a constraint binds?
        sat_levels: dict[SharedResource, float] = {}
        for res, loaded in frozen_load.items():
            n = sum(1 for f in res._flows if f in unfrozen)
            if n:
                sat_levels[res] = (res.capacity - loaded) / n
        res_level = min(sat_levels.values(), default=math.inf)
        min_cap = min((f.cap for f in unfrozen), default=math.inf)
        next_level = min(res_level, min_cap)
        if not math.isfinite(next_level):  # pragma: no cover - defensive
            raise ResourceError("unbounded fair-share level")
        level = max(level, next_level)
        newly_frozen: set[FluidFlow] = set()
        if min_cap <= next_level + _EPS:
            newly_frozen.update(f for f in unfrozen if f.cap <= level + _EPS)
        for res, sat in sat_levels.items():
            if sat <= next_level + _EPS:  # this resource saturates here
                newly_frozen.update(f for f in res._flows if f in unfrozen)
        if not newly_frozen:  # pragma: no cover - numerical safety net
            newly_frozen = set(unfrozen)
        for flow in newly_frozen:
            rates[flow] = min(level, flow.cap)
            unfrozen.discard(flow)
            for res in flow.path:
                frozen_load[res] += rates[flow]
    return rates


def _maxmin_rates_scoped(flows: set[FluidFlow],
                         nlive: Optional[dict[SharedResource, int]] = None,
                         capped: Optional[set[FluidFlow]] = None,
                         ) -> tuple[dict[FluidFlow, float], int, int]:
    """Progressive filling over one (set of) connected component(s).

    Identical arithmetic to :func:`_maxmin_rates` — every saturation level
    is ``(capacity - frozen) / unfrozen`` over the same operands, and the
    binding level of each round is the same minimum — but the per-round
    work is indexed instead of scanned:

    * per-resource unfrozen-flow *counters* replace the oracle's per-round
      rescan of every ``res._flows`` set;
    * saturation levels are recomputed only for resources a freeze just
      touched (unchanged operands reproduce the cached value bit for bit);
    * the minimum flow cap comes from a lazy-deletion heap rather than a
      scan of all unfrozen flows.

    When the caller supplies the component's maintained incidence counts
    (``nlive``) and capped-flow set, the fill's own init is one dict copy
    — no per-flow scan at all, which at the 1,000-VM rung was ~40% of all
    flow inspections.  Without them (the ``global_rebalance`` reference
    mode and direct test calls) the indices are derived by scanning the
    flows, reproducing the maintained counts exactly.

    Returns ``(rates, flow_visits, rounds)`` where ``flow_visits`` counts
    flow inspections (the engine's cost metric) and ``rounds`` the number
    of filling iterations.
    """
    unfrozen = set(flows)
    rates: dict[FluidFlow, float] = {}
    visits = 0
    rounds = 0
    if not unfrozen:
        return rates, visits, rounds
    frozen_load: dict[SharedResource, float] = {}
    cap_heap: list[tuple[float, int, FluidFlow]] = []
    if nlive is None:
        n_unfrozen: dict[SharedResource, int] = {}
        n_get = n_unfrozen.get
        for flow in unfrozen:
            for res in flow._upath:
                n = n_get(res)
                if n is None:
                    n_unfrozen[res] = 1
                    frozen_load[res] = 0.0
                else:
                    n_unfrozen[res] = n + 1
            if math.isfinite(flow.cap):
                cap_heap.append((flow.cap, flow._seq, flow))
        visits += len(unfrozen)
    else:
        n_unfrozen = dict(nlive)
        frozen_load = {res: 0.0 for res in n_unfrozen}
        cap_heap = [(f.cap, f._seq, f) for f in capped]
    heapq.heapify(cap_heap)
    sat_levels: dict[SharedResource, float] = {
        res: (res.capacity - frozen_load[res]) / n
        for res, n in n_unfrozen.items()}
    level = 0.0
    while unfrozen:
        rounds += 1
        while cap_heap and cap_heap[0][2] not in unfrozen:
            heapq.heappop(cap_heap)
        res_level = min(sat_levels.values(), default=math.inf)
        min_cap = cap_heap[0][0] if cap_heap else math.inf
        next_level = min(res_level, min_cap)
        if not math.isfinite(next_level):  # pragma: no cover - defensive
            raise ResourceError("unbounded fair-share level")
        level = max(level, next_level)
        newly_frozen: set[FluidFlow] = set()
        if min_cap <= next_level + _EPS:
            # Everything with cap <= level + _EPS, exactly the oracle's
            # freeze set: the heap orders finite caps, so pop until above
            # the bound (stale frozen entries are skipped).
            cap_bound = level + _EPS
            while cap_heap and cap_heap[0][0] <= cap_bound:
                _cap, _seq, cf = heapq.heappop(cap_heap)
                if cf in unfrozen:
                    newly_frozen.add(cf)
                    visits += 1
        sat_bound = next_level + _EPS
        for res, sat in sat_levels.items():
            if sat <= sat_bound:  # this resource saturates here
                visits += len(res._flows)
                newly_frozen.update(f for f in res._flows if f in unfrozen)
        if not newly_frozen:  # pragma: no cover - numerical safety net
            newly_frozen = set(unfrozen)
        dirty: set[SharedResource] = set()
        for flow in newly_frozen:
            rate = min(level, flow.cap)
            rates[flow] = rate
            unfrozen.discard(flow)
            for res in flow.path:
                frozen_load[res] += rate
            for res in flow._upath:
                n_unfrozen[res] -= 1
                dirty.add(res)
        for res in dirty:
            n = n_unfrozen[res]
            if n:
                sat_levels[res] = (res.capacity - frozen_load[res]) / n
            else:
                del sat_levels[res]
    return rates, visits, rounds
