"""Discrete resources on top of the simulation kernel.

:class:`Resource` is a counting semaphore with FIFO waiters — used for
Hadoop task *slots* (map/reduce slots per TaskTracker).  :class:`Store` is a
FIFO queue of items with blocking ``get`` — used for message/heartbeat
queues.  Both are event-based: ``acquire``/``get`` return events a process
yields on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import ResourceError
from repro.sim.kernel import Event, Simulator


class Resource:
    """Counting semaphore with FIFO granting order."""

    __slots__ = ("sim", "capacity", "name", "in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that triggers when one unit is granted."""
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; grants the oldest waiter if any."""
        if self.in_use <= 0:
            raise ResourceError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit straight to the next waiter; in_use unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self.in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Resource {self.name} {self.in_use}/{self.capacity} "
                f"queued={len(self._waiters)}>")


class Store:
    """Unbounded FIFO store of items with blocking ``get``."""

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add an item; wakes the oldest blocked getter immediately."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when empty."""
        return self._items.popleft() if self._items else None
