"""Generator-coroutine discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock and a priority queue of pending
events.  *Processes* are plain Python generators that ``yield`` events; when
a yielded event triggers, the kernel resumes the generator with the event's
value (or throws the event's exception into it).

The kernel is deliberately small — just enough for the vHadoop models — but
it enforces its invariants strictly: no scheduling in the past, no double
trigger, deterministic FIFO ordering among simultaneous events.

Example
-------
>>> sim = Simulator()
>>> def proc(sim):
...     yield sim.timeout(2.0)
...     return "done"
>>> p = sim.process(proc(sim))
>>> sim.run()
>>> sim.now, p.value
(2.0, 'done')
"""

from __future__ import annotations

import heapq
import inspect
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

#: Type of a simulation process body.
ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when given a value via
    :meth:`succeed` (or an exception via :meth:`fail`), and is *processed*
    once the kernel has run its callbacks.  Processes waiting on the event
    are resumed with its value.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_cancelled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._cancelled = False

    # -- state ---------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not yet be processed)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def cancelled(self) -> bool:
        """True once the event has been withdrawn via :meth:`cancel`."""
        return self._cancelled

    def cancel(self) -> None:
        """Withdraw a scheduled-but-untriggered event from the queue.

        The queue entry is skipped without advancing the clock, so a
        cancelled periodic wakeup (a monitor's sampling timeout, say) no
        longer keeps the simulation alive or drags the clock forward.
        """
        if self._processed:
            raise SimulationError(f"cannot cancel processed {self!r}")
        self._cancelled = True

    @property
    def value(self) -> Any:
        """The event's value; raises if the event failed."""
        if not self._triggered:
            raise SimulationError(f"{self!r} has no value yet")
        if not self._ok:
            raise self._value
        return self._value

    # -- triggering ----------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        self._pre_trigger()
        self._value = value
        self._ok = True
        self.sim._enqueue(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._pre_trigger()
        self._value = exception
        self._ok = False
        self.sim._enqueue(self, delay)
        return self

    def _pre_trigger(self) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class _Wake(Event):
    """Kernel-internal immediate wake-up event.

    These are the kernel's hottest allocation: every process bootstrap,
    every resume-on-already-processed-target, and every interrupt creates
    one, uses it for exactly one step, and drops it.  They are never
    handed to user code, never waited on by ``_waiting_on``, and never
    cancelled — so :meth:`Simulator.step` recycles them through a small
    free list (slab) instead of letting each become garbage.
    """

    __slots__ = ()


class Timeout(Event):
    """An event that triggers ``delay`` seconds after its creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._enqueue(self, delay)

    def _pre_trigger(self) -> None:
        raise SimulationError("a Timeout fires by itself; do not trigger it")


class TimerWheel:
    """Coalesces same-instant, same-deadline sleeps into one queue entry.

    Correlated timers — N replication watchers armed by one rack failure,
    N tracker-expiry grace periods after a host crash — all sleep for the
    same delay from the same simulated instant.  Arming each as its own
    :class:`Timeout` costs N heap entries and N ``step()`` rounds; a
    wheel shares one Timeout among all waiters armed at the same instant
    for the same deadline, so a 1,000-VM correlated failure wakes its
    watchers with one event.  Waiters resume in arming order — exactly
    the order their individual timers' sequence numbers would have given
    them — so coalescing is invisible to the simulated timeline.

    Each subsystem should own its wheel: slots are keyed by
    ``(armed_at, deadline)`` *within* the wheel, which keeps unrelated
    same-delay timers from ever sharing an entry.
    """

    __slots__ = ("sim", "_slots", "armed", "coalesced")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._slots: dict[tuple[float, float], Timeout] = {}
        #: Distinct Timeouts created (cache misses).
        self.armed = 0
        #: Sleeps that shared an existing Timeout (events saved).
        self.coalesced = 0

    def sleep(self, delay: float) -> Timeout:
        """An event firing ``delay`` seconds from now, shared with every
        other ``sleep(delay)`` issued at this same instant."""
        now = self.sim.now
        key = (now, now + delay)
        timer = self._slots.get(key)
        if timer is None or timer._processed:
            timer = Timeout(self.sim, delay)
            self._slots[key] = timer
            timer.callbacks.append(
                lambda _ev, key=key: self._slots.pop(key, None))
            self.armed += 1
        else:
            self.coalesced += 1
        return timer


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running process; also an event that triggers when the body returns.

    The process body is a generator yielding :class:`Event` instances.  The
    generator's ``return`` value becomes the process event's value; an
    uncaught exception fails the process event.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(f"process body must be a generator, got "
                                  f"{type(generator).__name__}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the process at the current time.
        self._waiting_on: Optional[Event] = sim._wake(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the body has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        self.sim._wake(lambda _ev: self._throw_interrupt(cause))

    # -- internal ------------------------------------------------------------
    def _throw_interrupt(self, cause: Any) -> None:
        if self._triggered:
            return  # body finished before the interrupt could land
        if inspect.getgeneratorstate(self._generator) == inspect.GEN_CREATED:
            # The body never started, so it has nothing to unwind and no
            # way to catch the Interrupt: treat it as a cancellation.
            self._generator.close()
            self.succeed(None)
            return
        self._step(Interrupt(cause), throw=True)

    def _resume(self, event: Event) -> None:
        if self._triggered or self._waiting_on is not event:
            # Stale wake-up: the process was interrupted (or already
            # re-resumed) after this callback was scheduled.  An interrupt
            # can only detach ``_resume`` from an event's callback list;
            # it cannot reach the immediate re-resume scheduled for an
            # already-processed target, nor a callback list that step()
            # has begun draining — so validate here instead.
            return
        self._waiting_on = None
        if event._ok:
            self._step(event._value, throw=False)
        else:
            self._step(event._value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}")
            try:
                self._generator.throw(err)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:
                self.fail(exc)
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        if target._processed:
            # Already done: resume immediately at the current time.
            self.sim._wake(lambda _ev: self._resume(target))
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._pending = 0
        for ev in self.events:
            if ev._processed:
                self._on_child(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._on_child)
        self._check_initial()

    def _check_initial(self) -> None:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _values(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev._triggered and ev._ok}


class AnyOf(_Condition):
    """Triggers when any child event triggers (or immediately if none pend)."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if not self.events and not self._triggered:
            self.succeed({})

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._values())


class AllOf(_Condition):
    """Triggers when every child event has triggered."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if self._pending == 0 and not self._triggered:
            self.succeed(self._values())

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending <= 0:
            self.succeed(self._values())


class Simulator:
    """The event loop: virtual clock plus a time-ordered event queue."""

    #: Free-list bound: enough to absorb bursts, small enough to stay hot
    #: in cache.
    _WAKE_POOL_MAX = 512

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: Events processed by :meth:`step` (perf-harness counter).
        self.events_processed = 0
        #: High-water mark of the pending-event heap.
        self.max_heap_size = 0
        #: Cancelled entries dropped without processing.
        self.cancelled_pruned = 0
        #: Slab/free list of recycled kernel wake events, and how many
        #: allocations it saved (perf-harness counter).
        self._wake_pool: list[_Wake] = []
        self.wake_events_reused = 0

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a process from a generator; returns its completion event."""
        return Process(self, generator, name=name)

    def timer_wheel(self) -> TimerWheel:
        """A fresh :class:`TimerWheel` for one subsystem's batched sleeps."""
        return TimerWheel(self)

    def _wake(self, callback: Callable[[Event], None]) -> Event:
        """An immediately-triggered kernel wake event (recycled slab)."""
        pool = self._wake_pool
        if pool:
            ev = pool.pop()
            self.wake_events_reused += 1
        else:
            ev = _Wake(self)
        ev.callbacks.append(callback)
        ev.succeed(None)
        return ev

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- queue ---------------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        self._seq += 1
        heap = self._heap
        heapq.heappush(heap, (self.now + delay, self._seq, event))
        if len(heap) > self.max_heap_size:
            self.max_heap_size = len(heap)

    def _prune_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
            self.cancelled_pruned += 1

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if the queue is empty."""
        self._prune_cancelled()
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        self._prune_cancelled()
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        time, _seq, event = heapq.heappop(self._heap)
        if time < self.now:  # pragma: no cover - defensive
            raise SimulationError("event queue went backwards")
        self.now = time
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, []
        event._triggered = True  # Timeouts trigger when they fire.
        event._processed = True
        for callback in callbacks:
            callback(event)
        # Unwaited failures must not pass silently.
        if not event._ok and not callbacks:
            raise event._value
        if type(event) is _Wake and len(self._wake_pool) < self._WAKE_POOL_MAX:
            # Wake events are single-use and kernel-private: by the time
            # their callbacks have run, nothing references them any more,
            # so they go back to the slab for reuse.
            event._triggered = False
            event._processed = False
            event._value = None
            self._wake_pool.append(event)

    def run_until(self, event: Event) -> None:
        """Process events until ``event`` has been processed.

        Unlike :meth:`run`, this terminates even when perpetual background
        processes (monitors, heartbeats) keep the queue non-empty.
        """
        while not event._processed:
            if self.peek() == float("inf"):
                raise SimulationError(
                    "event queue drained before the awaited event triggered")
            self.step()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` if
        the simulation did not finish earlier.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        while self.peek() != float("inf"):
            if until is not None and self.peek() > until:
                self.now = until
                return
            self.step()
        if until is not None and until > self.now:
            self.now = until
