"""Structured tracing of simulation events and spans.

Models emit :class:`TraceEvent` records ("vm.boot.start", "migration.round",
...) through a shared :class:`Tracer`.  The monitor, experiment harnesses,
and tests read these back; they are also the primary debugging surface of
the simulator.

On top of point events, the tracer records **spans**: intervals with a kind,
a name, and a parent link (job → phase → task/attempt → shuffle transfer;
VM boots; migrations).  Opening a span emits a ``<kind>.start`` event and
closing it a ``<kind>.end`` event, so the span layer is a strict refinement
of the event log — every consumer of the flat log keeps working.  The
:mod:`repro.telemetry` package analyses and exports the recorded spans.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence with free-form attributes."""

    time: float
    kind: str
    source: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]


@dataclass
class Span:
    """One named interval in simulated time, with a parent link.

    ``end`` is NaN until the span is closed via :meth:`Tracer.end_span`.
    """

    span_id: int
    kind: str                 # dot-namespaced, e.g. "task.map.attempt"
    name: str                 # instance label, e.g. "m-00003"
    start: float
    end: float = float("nan")
    parent_id: Optional[int] = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end != self.end  # NaN check

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]


class Tracer:
    """Append-only trace log with kind-based filtering and subscriptions."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        self.spans: list[Span] = []
        self._span_ids = itertools.count(1)
        self._subscribers: list[tuple[Optional[str], Callable[[TraceEvent], None]]] = []

    def emit(self, time: float, kind: str, source: str, **attrs: Any) -> None:
        """Record an event (no-op when tracing is disabled)."""
        self._emit(time, kind, source, attrs)

    def _emit(self, time: float, kind: str, source: str,
              attrs: dict[str, Any]) -> None:
        if not self.enabled and not self._subscribers:
            return
        event = TraceEvent(time=time, kind=kind, source=source, attrs=attrs)
        if self.enabled:
            self.events.append(event)
        for prefix, callback in self._subscribers:
            if prefix is None or event.kind.startswith(prefix):
                callback(event)

    # -- spans ---------------------------------------------------------------
    def begin_span(self, time: float, kind: str, name: str,
                   parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Open a span and emit its ``<kind>.start`` event."""
        span = Span(span_id=next(self._span_ids), kind=kind, name=name,
                    start=time,
                    parent_id=parent.span_id if parent else None,
                    attrs=dict(attrs))
        self._emit(time, f"{kind}.start", name,
                   {"span": span.span_id, "parent": span.parent_id, **attrs})
        return span

    def end_span(self, span: Span, time: float, **attrs: Any) -> Span:
        """Close a span, record it, and emit its ``<kind>.end`` event."""
        span.end = time
        span.attrs.update(attrs)
        if self.enabled:
            self.spans.append(span)
        self._emit(time, f"{span.kind}.end", span.name,
                   {"span": span.span_id, "parent": span.parent_id, **attrs})
        return span

    def select_spans(self, prefix: str = "") -> Iterator[Span]:
        """Iterate recorded spans whose kind starts with ``prefix``."""
        return (s for s in self.spans if s.kind.startswith(prefix))

    def subscribe(self, callback: Callable[[TraceEvent], None],
                  prefix: Optional[str] = None) -> None:
        """Call ``callback`` for every future event whose kind starts with
        ``prefix`` (or for all events when ``prefix`` is None)."""
        self._subscribers.append((prefix, callback))

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Drop every subscription using ``callback`` (no-op when absent)."""
        self._subscribers = [(p, c) for p, c in self._subscribers
                             if c is not callback]

    def select(self, prefix: str) -> Iterator[TraceEvent]:
        """Iterate recorded events whose kind starts with ``prefix``."""
        return (e for e in self.events if e.kind.startswith(prefix))

    def count(self, prefix: str) -> int:
        return sum(1 for _ in self.select(prefix))

    def last(self, prefix: str) -> Optional[TraceEvent]:
        found = None
        for event in self.select(prefix):
            found = event
        return found

    def clear(self) -> None:
        self.events.clear()
        self.spans.clear()
