"""Structured tracing of simulation events.

Models emit :class:`TraceEvent` records ("vm.boot", "task.map.start",
"migration.round", ...) through a shared :class:`Tracer`.  The monitor,
experiment harnesses, and tests read these back; they are also the primary
debugging surface of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence with free-form attributes."""

    time: float
    kind: str
    source: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]


class Tracer:
    """Append-only trace log with kind-based filtering and subscriptions."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        self._subscribers: list[tuple[Optional[str], Callable[[TraceEvent], None]]] = []

    def emit(self, time: float, kind: str, source: str, **attrs: Any) -> None:
        """Record an event (no-op when tracing is disabled)."""
        if not self.enabled and not self._subscribers:
            return
        event = TraceEvent(time=time, kind=kind, source=source, attrs=attrs)
        if self.enabled:
            self.events.append(event)
        for prefix, callback in self._subscribers:
            if prefix is None or event.kind.startswith(prefix):
                callback(event)

    def subscribe(self, callback: Callable[[TraceEvent], None],
                  prefix: Optional[str] = None) -> None:
        """Call ``callback`` for every future event whose kind starts with
        ``prefix`` (or for all events when ``prefix`` is None)."""
        self._subscribers.append((prefix, callback))

    def select(self, prefix: str) -> Iterator[TraceEvent]:
        """Iterate recorded events whose kind starts with ``prefix``."""
        return (e for e in self.events if e.kind.startswith(prefix))

    def count(self, prefix: str) -> int:
        return sum(1 for _ in self.select(prefix))

    def last(self, prefix: str) -> Optional[TraceEvent]:
        found = None
        for event in self.select(prefix):
            found = event
        return found

    def clear(self) -> None:
        self.events.clear()
