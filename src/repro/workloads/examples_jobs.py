"""Two more classic Hadoop example jobs: Grep and the Monte-Carlo Pi
estimator.

These ship with every Hadoop distribution of the paper's era and round out
the workload library beyond Table I — Grep is a two-job pipeline (count
matches, then sort by frequency), Pi is the canonical CPU-bound map-only
job with a trivial reduce.
"""

from __future__ import annotations

import re
from typing import Sequence, TYPE_CHECKING

import numpy as np

from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.runner import MapReduceRunner
    from repro.platform.cluster import HadoopVirtualCluster


# --- Grep --------------------------------------------------------------------

class GrepMapper(Mapper):
    """Emit (match, 1) for every regex group occurrence in the line."""

    def __init__(self, pattern: str):
        self.regex = re.compile(pattern)

    def map(self, key, value, context: Context) -> None:
        for match in self.regex.findall(str(value)):
            context.emit(match, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, context: Context) -> None:
        context.emit(key, sum(values))


class InvertMapper(Mapper):
    """(match, count) -> (-count, match): descending-frequency sort key."""

    def map(self, key, value, context: Context) -> None:
        context.emit(-int(value), key)


class IdentityReducer(Reducer):
    def reduce(self, key, values, context: Context) -> None:
        for value in values:
            context.emit(key, value)


def grep_jobs(input_path: str, output_path: str, pattern: str,
              n_reduces: int = 1) -> tuple[Job, Job]:
    """(count job, sort job) — run the first, then the second over its
    output, exactly like ``hadoop jar hadoop-examples.jar grep``."""
    count = Job(
        name="grep-count",
        input_paths=[input_path],
        output_path=f"{output_path}-tmp",
        mapper=lambda: GrepMapper(pattern),
        combiner=SumReducer,
        reducer=SumReducer,
        n_reduces=n_reduces,
        map_cpu_per_byte=1.2e-7,  # regex scanning is pricier than split()
    )
    sort = Job(
        name="grep-sort",
        input_paths=[f"{output_path}-tmp"],
        output_path=output_path,
        mapper=InvertMapper,
        reducer=IdentityReducer,
        n_reduces=1,
    )
    return count, sort


def run_grep(runner: "MapReduceRunner", cluster: "HadoopVirtualCluster",
             input_path: str, output_path: str, pattern: str,
             n_reduces: int = 1) -> list[tuple[int, str]]:
    """Run the two-job pipeline; returns [(-count, match)] sorted."""
    count, sort = grep_jobs(input_path, output_path, pattern, n_reduces)
    runner.run_to_completion(count)
    report = runner.run_to_completion(sort)
    return runner.read_output(report)


# --- Pi -----------------------------------------------------------------------

class PiMapper(Mapper):
    """Each record is (sample_index, n_points): throw darts, count hits.

    A deterministic per-task RNG (seeded by the record key) keeps the job
    reproducible across runners — Hadoop's PiEstimator uses Halton
    sequences for the same reason.
    """

    def map(self, key, value, context: Context) -> None:
        n_points = int(value)
        rng = np.random.default_rng(int(key) + 12345)
        xy = rng.random((n_points, 2)) * 2.0 - 1.0
        inside = int(((xy ** 2).sum(axis=1) <= 1.0).sum())
        context.emit("hits", inside)
        context.emit("total", n_points)


class PiReducer(Reducer):
    def reduce(self, key, values, context: Context) -> None:
        context.emit(key, sum(values))


def pi_job(input_path: str, output_path: str, n_maps: int) -> Job:
    return Job(
        name="pi-estimator",
        input_paths=[input_path],
        output_path=output_path,
        mapper=PiMapper,
        combiner=PiReducer,
        reducer=PiReducer,
        n_reduces=1,
        force_num_maps=n_maps,
        map_cpu_per_record=0.0,
        map_cpu_per_byte=0.0,
        params={"kind": "cpu-bound"},
    )


def pi_input(n_maps: int, points_per_map: int) -> list[tuple[int, int]]:
    return [(i, points_per_map) for i in range(n_maps)]


def estimate_pi(output: Sequence[tuple]) -> float:
    counts = dict(output)
    return 4.0 * counts["hits"] / counts["total"]
