"""The four MapReduce benchmarks of the paper's Table I.

==========  =========  =========================================================
Wordcount   MapReduce  reads text files and counts how often words occur
MRBench     MapReduce  checks whether small jobs are responsive/efficient
TeraSort    MR + HDFS  sorts data as fast as possible (TeraGen/Sort/Validate)
TestDFSIO   HDFS       read and write throughput test for HDFS
==========  =========  =========================================================
"""

from repro.workloads.wordcount import (WordCountMapper, WordCountReducer,
                                       wordcount_job)
from repro.workloads.mrbench import mrbench_job, run_mrbench
from repro.workloads.terasort import (TeraSortResult, make_terasort_jobs,
                                      run_terasort, teravalidate)
from repro.workloads.dfsio import DfsioResult, run_dfsio

__all__ = [
    "DfsioResult", "TeraSortResult", "WordCountMapper", "WordCountReducer",
    "make_terasort_jobs", "mrbench_job", "run_dfsio", "run_mrbench",
    "run_terasort", "teravalidate", "wordcount_job",
]
