"""TestDFSIO: HDFS read/write throughput.

The real TestDFSIO runs one map task per file; each map writes (or reads)
its file through HDFS and the job reports the aggregate throughput
(``total bytes / sum of task I/O times``).  We drive the DfsClient from the
worker VMs concurrently, exactly what the map tasks would do.

Fig. 4(b) of the paper shows read throughput above write throughput (the
write path pays the replication pipeline) and cross-domain below normal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import HadoopVirtualCluster

_FILLER_RECORD = 64 * 1024  # write files as 64 KiB records


@dataclass
class DfsioResult:
    """Fig. 4(b) datapoint pair."""

    n_files: int
    file_bytes: int
    write_seconds: float
    read_seconds: float

    @property
    def total_bytes(self) -> int:
        return self.n_files * self.file_bytes

    @property
    def write_throughput_bps(self) -> float:
        return self.total_bytes / self.write_seconds

    @property
    def read_throughput_bps(self) -> float:
        return self.total_bytes / self.read_seconds


def _filler_records(file_bytes: int) -> list[tuple[int, int]]:
    n = max(1, file_bytes // _FILLER_RECORD)
    return [(i, _FILLER_RECORD) for i in range(n)]


def _filler_sizeof(_record) -> int:
    return _FILLER_RECORD


def run_dfsio(cluster: "HadoopVirtualCluster", n_files: int,
              file_bytes: int, tag: str = "") -> DfsioResult:
    """Concurrent write pass then concurrent read pass over fresh files."""
    sim = cluster.sim
    writers = cluster.workers
    records = _filler_records(file_bytes)

    # Write phase: file i written from worker i (round-robin).
    t0 = sim.now
    events = []
    for i in range(n_files):
        vm = writers[i % len(writers)]
        events.append(cluster.dfs.write_file(
            vm, f"/dfsio/{tag}/file-{i}", records, sizeof=_filler_sizeof))
    sim.run_until(sim.all_of(events))
    write_seconds = sim.now - t0

    # Read phase: file i read from a worker half the ring away, so reads
    # traverse the datanode path (and, on a cross-domain cluster, the
    # physical NICs) rather than being trivially node-local.
    t0 = sim.now
    events = []
    offset = max(1, len(writers) // 2)
    for i in range(n_files):
        vm = writers[(i + offset) % len(writers)]
        events.append(cluster.dfs.read_file(vm, f"/dfsio/{tag}/file-{i}",
                                            prefer_local=False))
    sim.run_until(sim.all_of(events))
    read_seconds = sim.now - t0

    return DfsioResult(n_files=n_files, file_bytes=file_bytes,
                       write_seconds=write_seconds, read_seconds=read_seconds)
