"""MRBench (Kim et al., ICPADS'08): small-job responsiveness.

MRBench runs a tiny MapReduce job — by default over one small text input —
whose purpose is to measure the *framework overhead*: task assignment
latency, JVM startup, shuffle connection costs.  Hadoop's ``mrbench`` takes
``-maps`` and ``-reduces`` flags; the paper scales maps 1..6 with reduce=1
(Fig. 3a) and reduces 1..6 with map=15 (Fig. 3b).

The job body is the identity map + identity reduce over generated
key/value lines, as in the original benchmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.runner import JobReport, MapReduceRunner
    from repro.platform.cluster import HadoopVirtualCluster

#: Default MRBench input: 100 generated lines ("1\n2\n...\n100").
DEFAULT_INPUT_LINES = 100


class MRBenchMapper(Mapper):
    """Identity over the generated lines."""

    def map(self, key, value, context: Context) -> None:
        context.emit(str(value), "1")


class MRBenchReducer(Reducer):
    def reduce(self, key, values, context: Context) -> None:
        for value in values:
            context.emit(key, value)


def mrbench_input(n_lines: int = DEFAULT_INPUT_LINES) -> list[tuple[int, str]]:
    return [(i, str(i + 1)) for i in range(n_lines)]


def mrbench_sizeof(record) -> int:
    _key, line = record
    return len(str(line)) + 1


def mrbench_job(input_path: str, output_path: str, n_maps: int,
                n_reduces: int) -> Job:
    return Job(
        name=f"mrbench-m{n_maps}-r{n_reduces}",
        input_paths=[input_path],
        output_path=output_path,
        mapper=MRBenchMapper,
        reducer=MRBenchReducer,
        n_reduces=n_reduces,
        force_num_maps=n_maps,
        intermediate_sizeof=mrbench_sizeof,
        output_sizeof=mrbench_sizeof,
    )


def run_mrbench(runner: "MapReduceRunner", cluster: "HadoopVirtualCluster",
                n_maps: int, n_reduces: int, run_index: int = 0
                ) -> "JobReport":
    """Stage the tiny input (if absent) and run one MRBench iteration."""
    input_path = "/mrbench/input"
    if not cluster.namenode.exists(input_path):
        event = cluster.dfs.write_file(cluster.master, input_path,
                                       mrbench_input(), sizeof=mrbench_sizeof)
        cluster.sim.run_until(event)
    job = mrbench_job(input_path,
                      f"/mrbench/output-{n_maps}-{n_reduces}-{run_index}",
                      n_maps, n_reduces)
    return runner.run_to_completion(job)
