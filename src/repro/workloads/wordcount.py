"""Wordcount, exactly as the paper describes it:

    "Each mapper takes a line as input and breaks it into words.  It then
    emits a key/value pair of the word and 1.  Each reducer sums the counts
    for each word and emits a single key/value with the word and sum."

Note the paper's description has **no combiner** — intermediate volume is
proportional to the input, which is what makes Wordcount network-heavy and
cross-domain-sensitive in Fig. 2.  A combiner can still be enabled through
``wordcount_job(use_combiner=True)`` (an ablation).
"""

from __future__ import annotations

from typing import Sequence

from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import Job


class WordCountMapper(Mapper):
    """line -> (word, 1) for every whitespace-separated word."""

    def map(self, key, value, context: Context) -> None:
        emit = context.emit
        for word in str(value).split():
            emit(word, 1)


class WordCountReducer(Reducer):
    """(word, [counts]) -> (word, sum)."""

    def reduce(self, key, values, context: Context) -> None:
        context.emit(key, sum(values))


def _pair_sizeof(pair) -> int:
    return len(pair[0]) + 6  # word bytes + separator + varint count


def line_record_sizeof(record) -> int:
    """Serialized size of one (offset, line) input record."""
    _offset, line = record
    return len(line) + 1


def wordcount_job(input_path: str, output_path: str, n_reduces: int = 1,
                  use_combiner: bool = False, volume_scale: int = 1) -> Job:
    """Build the Wordcount job over line records ``(offset, line)``.

    ``volume_scale`` lets experiments simulate paper-scale byte volumes
    while materializing a 1/scale sample of the records: every serialized
    size (and therefore every I/O and CPU charge) is multiplied by the
    scale, while the functional computation runs on the sample.  The input
    file must have been uploaded with the matching scaled ``sizeof``
    (:func:`scaled_line_sizeof`).
    """
    return Job(
        name="wordcount",
        input_paths=[input_path],
        output_path=output_path,
        mapper=WordCountMapper,
        reducer=WordCountReducer,
        combiner=WordCountReducer if use_combiner else None,
        n_reduces=n_reduces,
        intermediate_sizeof=lambda pair: (len(pair[0]) + 6) * volume_scale,
        output_sizeof=_pair_sizeof,
        # Tokenizing text is cheap per byte; calibrated to ~13 MB/s/core,
        # hadoop-0.20-era Wordcount throughput.
        map_cpu_per_byte=7.5e-8,
        reduce_cpu_per_byte=4.0e-8,
    )


def scaled_line_sizeof(volume_scale: int):
    """``sizeof`` for uploading a 1/scale corpus sample as a full corpus."""
    return lambda record: line_record_sizeof(record) * volume_scale


def lines_as_records(lines: Sequence[str]) -> list[tuple[int, str]]:
    """Hadoop TextInputFormat records: (byte offset, line)."""
    records = []
    offset = 0
    for line in lines:
        records.append((offset, line))
        offset += len(line) + 1
    return records
