"""TeraSort: TeraGen + TeraSort + TeraValidate.

The full benchmark, as the paper describes:

1. **TeraGen** — a map-only job that writes N 100-byte records to HDFS;
2. **TeraSort** — identity map + identity reduce with a *range partitioner*
   sampled from the input, so that partition *i* holds keys entirely below
   partition *i+1* — the global sort;
3. **TeraValidate** — checks each part is internally sorted and part
   boundaries are ordered.

Fig. 4(a) reports generation time and sort time separately as data volume
scales, which :func:`run_terasort` returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.datasets.tera import TeraRecord, tera_sizeof, teragen
from repro.mapreduce.api import Context, Mapper, RangePartitioner, Reducer
from repro.mapreduce.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.runner import JobReport, MapReduceRunner
    from repro.platform.cluster import HadoopVirtualCluster


class TeraGenMapper(Mapper):
    """(row, TeraRecord) -> (record.key, record) — materializes the rows."""

    def map(self, key, value, context: Context) -> None:
        context.emit(value.key, value)


class TeraSortMapper(Mapper):
    """Identity: (key, record)."""

    def map(self, key, value, context: Context) -> None:
        context.emit(key, value)


class TeraSortReducer(Reducer):
    """Identity; the engine's sort-merge delivers keys in order."""

    def reduce(self, key, values, context: Context) -> None:
        for value in values:
            context.emit(key, value)


def _record_sizeof(pair) -> int:
    return tera_sizeof(pair)


def sample_boundaries(records: Sequence[tuple], n_partitions: int
                      ) -> list[bytes]:
    """TeraSort's input sampler: quantile key boundaries."""
    keys = sorted(key for key, _v in records)
    if not keys or n_partitions <= 1:
        return []
    return [keys[(i * len(keys)) // n_partitions]
            for i in range(1, n_partitions)]


def make_terasort_jobs(input_path: str, sorted_path: str,
                       records: Sequence[tuple], n_reduces: int,
                       volume_scale: int = 1) -> Job:
    """The TeraSort job with boundaries sampled from ``records``.

    ``volume_scale``: every materialized record stands for ``scale`` real
    100-byte records (the experiments simulate paper-scale volumes over a
    1/scale sample; see fig2's VOLUME_SCALE for the same technique).
    """
    return Job(
        name="terasort",
        input_paths=[input_path],
        output_path=sorted_path,
        mapper=TeraSortMapper,
        reducer=TeraSortReducer,
        partitioner=RangePartitioner(sample_boundaries(records, n_reduces)),
        n_reduces=n_reduces,
        intermediate_sizeof=lambda pair: _record_sizeof(pair) * volume_scale,
        output_sizeof=lambda pair: _record_sizeof(pair) * volume_scale,
        # Sorting is I/O-bound: little user CPU per byte.
        map_cpu_per_byte=2.5e-8,
        reduce_cpu_per_byte=2.5e-8,
    )


@dataclass
class TeraSortResult:
    """Fig. 4(a) datapoint."""

    nbytes: int
    generation_time_s: float
    sort_time_s: float
    validated: bool
    gen_report: "JobReport"
    sort_report: "JobReport"


def teravalidate(parts: Sequence[Sequence[tuple]]) -> bool:
    """True iff every part is sorted and parts are globally ordered."""
    previous_last = None
    for part in parts:
        keys = [key for key, _v in part]
        if keys != sorted(keys):
            return False
        if keys:
            if previous_last is not None and keys[0] < previous_last:
                return False
            previous_last = keys[-1]
    return True


def run_terasort(runner: "MapReduceRunner", cluster: "HadoopVirtualCluster",
                 nbytes: int, n_reduces: int = 4, seed_tag: str = "",
                 volume_scale: int = 256) -> TeraSortResult:
    """Full TeraGen -> TeraSort -> TeraValidate pass over ``nbytes``.

    A 1/``volume_scale`` sample of records is materialized; every byte
    charge is scaled back to the full volume.
    """
    from repro.datasets.tera import records_for_bytes

    rng = cluster.datacenter.rng.stream(f"tera/{seed_tag}/{nbytes}")
    n_records = records_for_bytes(max(1, nbytes // max(1, volume_scale)))
    raw = teragen(n_records, rng=rng)
    gen_input = f"/tera/{seed_tag}/{nbytes}/seed"
    gen_output = f"/tera/{seed_tag}/{nbytes}/input"
    sorted_path = f"/tera/{seed_tag}/{nbytes}/sorted"

    # TeraGen: map-only job that writes the records to HDFS.  Its "input" is
    # the row-id seed file (tiny); the write volume is the real cost.
    seed_records = [(r.row, r) for r in raw]
    event = cluster.dfs.write_file(cluster.master, gen_input, seed_records,
                                   sizeof=lambda _r: 8)
    cluster.sim.run_until(event)

    gen_job = Job(
        name="teragen",
        input_paths=[gen_input],
        output_path=gen_output,
        mapper=TeraGenMapper,
        n_reduces=0,
        output_sizeof=lambda pair: _record_sizeof(pair) * volume_scale,
        map_cpu_per_byte=0.0,
        map_cpu_per_record=2.0e-6 * volume_scale,
    )
    gen_report = runner.run_to_completion(gen_job)

    sort_records = []
    for path in gen_report.output_paths:
        sort_records.extend(cluster.dfs.peek_records(path))
    sort_job = make_terasort_jobs(",".join(gen_report.output_paths),
                                  sorted_path, sort_records, n_reduces,
                                  volume_scale=volume_scale)
    # Input paths: the generated part files.
    sort_job.input_paths = list(gen_report.output_paths)
    sort_report = runner.run_to_completion(sort_job)

    # Part files must be validated in partition order (output_paths lists
    # them in reduce *completion* order).
    parts = [cluster.dfs.peek_records(p)
             for p in sorted(sort_report.output_paths)]
    return TeraSortResult(
        nbytes=nbytes,
        generation_time_s=gen_report.elapsed,
        sort_time_s=sort_report.elapsed,
        validated=teravalidate(parts),
        gen_report=gen_report,
        sort_report=sort_report,
    )
