"""Command-line interface: ``vhadoop <experiment> [options]``.

Regenerates any of the paper's tables/figures from the terminal:

.. code-block:: console

   $ vhadoop fig2            # Wordcount normal vs cross-domain
   $ vhadoop table2          # overall migration time/downtime
   $ vhadoop fig8            # ASCII cluster visualizations
   $ vhadoop all --quick     # everything, small sweeps
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from repro.experiments import format_table
from repro.experiments import (chaos_faults, fig2_wordcount, fig3_mrbench,
                               fig4_terasort_dfsio, fig5_migration,
                               fig6_synthetic_control,
                               fig7_display_clustering, fig8_cluster_visuals,
                               fuzz_campaign, observatory, scale_wordcount,
                               sched_policies, service, table1_benchmarks,
                               telemetry_demo)
from repro.experiments.common import add_topology_argument


def _run_fig2(args) -> list:
    sizes = (fig2_wordcount.QUICK_SIZES_MB if args.quick
             else fig2_wordcount.FULL_SIZES_MB)
    return [fig2_wordcount.run(sizes_mb=sizes, seed=args.seed)]


def _run_fig3(args) -> list:
    scales = (1, 2, 3) if args.quick else fig3_mrbench.MAP_SCALES
    runs = 1 if args.quick else fig3_mrbench.RUNS
    return [fig3_mrbench.run_map_scaling(scales, seed=args.seed, runs=runs),
            fig3_mrbench.run_reduce_scaling(scales, seed=args.seed,
                                            runs=runs)]


def _run_fig4(args) -> list:
    sizes = ((100, 400) if args.quick
             else fig4_terasort_dfsio.FULL_TERA_MB)
    return [fig4_terasort_dfsio.run_terasort_sweep(sizes, seed=args.seed),
            fig4_terasort_dfsio.run_dfsio_sweep(seed=args.seed)]


def _run_fig5(args) -> list:
    return [fig5_migration.run_per_node(seed=args.seed)]


def _run_table2(args) -> list:
    return [fig5_migration.run_table2(seed=args.seed)]


def _run_fig6(args) -> list:
    scales = (2, 8) if args.quick else fig6_synthetic_control.CLUSTER_SCALES
    return [fig6_synthetic_control.run(scales=scales, seed=args.seed)]


def _run_fig7(args) -> list:
    scales = (2, 8) if args.quick else fig7_display_clustering.CLUSTER_SCALES
    return [fig7_display_clustering.run(scales=scales, seed=args.seed)]


def _run_fig8(args) -> list:
    result = fig8_cluster_visuals.run(seed=args.seed)
    for panel in fig8_cluster_visuals.PANELS:
        if panel in result.artifacts:
            print(f"\n--- {panel} ---")
            print(result.artifacts[panel])
    return [result]


def _run_table1(args) -> list:
    return [table1_benchmarks.run(seed=args.seed)]


def _run_schedule(args) -> list:
    return [sched_policies.run(seed=args.seed, quick=args.quick)]


def _run_telemetry(args) -> list:
    return [telemetry_demo.run(seed=args.seed, quick=args.quick)]


def _run_chaos(args) -> list:
    return [chaos_faults.run(seed=args.seed, quick=args.quick)]


def _run_observatory(args) -> list:
    return [observatory.run(seed=args.seed, quick=args.quick)]


def _run_service(args) -> list:
    return [service.run(seed=args.seed, quick=args.quick)]


def _run_scale(args) -> list:
    return [scale_wordcount.run(seed=args.seed, quick=args.quick,
                                topology=args.topology)]


def _run_fuzz(args) -> list:
    if args.replay:
        return [fuzz_campaign.replay(args.replay)]
    if args.seed_range:
        seeds = fuzz_campaign.parse_seed_range(args.seed_range)
    else:
        seeds = (fuzz_campaign.QUICK_SEEDS if args.quick
                 else fuzz_campaign.DEFAULT_SEEDS)
    console = args.console_out
    if console is None and args.console:
        from repro.parallel.console import CONSOLE_SUFFIX
        console = ((args.journal + CONSOLE_SUFFIX) if args.journal
                   else "fuzz" + CONSOLE_SUFFIX)
    return [fuzz_campaign.run(seeds=seeds, jobs=args.jobs,
                              journal=args.journal, console=console,
                              live=console is not None
                              and sys.stderr.isatty())]


_EXPERIMENTS: dict[str, Callable] = {
    "table1": _run_table1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "table2": _run_table2,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "schedule": _run_schedule,
    "telemetry": _run_telemetry,
    "chaos": _run_chaos,
    "observatory": _run_observatory,
    "service": _run_service,
    "scale": _run_scale,
    "fuzz": _run_fuzz,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vhadoop",
        description="Regenerate the vHadoop paper's tables and figures on "
                    "the simulated platform.")
    parser.add_argument("experiment",
                        choices=sorted(_EXPERIMENTS) + ["all"],
                        help="which table/figure to reproduce")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for a fast pass")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="also write results as CSV/JSON into DIR")
    parser.add_argument("--seed-range", metavar="LO:HI", default=None,
                        help="fuzz only: half-open seed window to campaign "
                             "over (e.g. 0:500)")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="fuzz only: replay one shrunk repro file "
                             "instead of running a campaign")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        metavar="N",
                        help="fuzz only: shard the campaign over N worker "
                             "processes (digests stay byte-identical to "
                             "-j1; default 1)")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="fuzz only: checkpoint resolved seeds to a "
                             "JSONL journal and resume from it on rerun")
    parser.add_argument("--console", action="store_true",
                        help="fuzz only: stream worker progress/RSS to a "
                             "sidecar JSONL, render a live status line on "
                             "a tty, and write a control-room HTML report")
    parser.add_argument("--console-out", metavar="PATH", default=None,
                        help="fuzz only: explicit sidecar stream path "
                             "(implies --console; HTML lands at PATH.html)")
    add_topology_argument(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        for result in _EXPERIMENTS[name](args):
            print(format_table(result))
            print()
            if args.out:
                from repro.experiments.report import write_all
                for path in write_all(result, args.out):
                    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
