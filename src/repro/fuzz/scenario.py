"""Scenarios: the fuzzer's deterministic unit of work.

A :class:`Scenario` is pure data — workload mix, tenant pools, adversarial
actors, a symbolic fault schedule, a cluster topology, and a config-knob
sample — fully determined by one integer seed.  It serializes to JSON and
back without loss, carries a content :meth:`~Scenario.digest`, and is what
the shrinker minimizes and the regression corpus replays.

Fault targets are *symbolic* (``("worker", i)`` / ``("host", j)``), not VM
names: the runner resolves them against the provisioned cluster, so a
shrunk scenario stays valid as the topology shrinks with it.

The :class:`ScenarioGenerator` samples every dimension from one named RNG
stream per seed.  It is survivable-by-construction: generated fault
schedules never destroy the last replica of a block or stall the cluster
forever (permanent crashes are bounded by the replication factor and the
worker count; degradations always heal).  Anything the platform still gets
wrong under such a schedule is a platform bug — which is the point.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.chaos.plan import FAULT_KINDS
from repro.cloud.adversaries import ADVERSARY_KINDS, AdversarySpec
from repro.config import HadoopConfig
from repro.errors import ConfigError

#: Serialization format version (bump on incompatible change).
FORMAT_VERSION = 1

#: Workload kinds the generator mixes.
JOB_KINDS = ("wordcount", "terasort", "kmeans")

#: Scheduler policies sampled as a config knob.
POLICIES = ("fifo", "fair", "capacity")

#: Cluster layouts sampled as a topology knob.
LAYOUTS = ("packed", "spread")


@dataclass(frozen=True)
class FuzzJob:
    """One workload in the mix."""

    kind: str                  # one of JOB_KINDS
    size_mb: int               # simulated input volume
    n_reduces: int
    pool: str = "default"     # tenant pool (scheduler dimension)

    def validate(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ConfigError(f"unknown job kind {self.kind!r}")
        if self.size_mb < 1:
            raise ConfigError("job size_mb must be >= 1")
        if not 0 <= self.n_reduces <= 16:
            raise ConfigError("n_reduces must be in 0..16")
        if not self.pool:
            raise ConfigError("job needs a pool")

    def key(self) -> str:
        return f"{self.kind}|{self.size_mb}|{self.n_reduces}|{self.pool}"


@dataclass(frozen=True)
class FuzzFault:
    """A symbolically-targeted fault (resolved against the cluster)."""

    at: float
    kind: str                  # one of chaos FAULT_KINDS
    scope: str                 # "worker" | "host"
    index: int                 # worker index / host index
    duration: float = 0.0
    factor: float = 2.0

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.scope not in ("worker", "host"):
            raise ConfigError(f"unknown fault scope {self.scope!r}")
        if self.index < 0:
            raise ConfigError("fault index must be >= 0")
        for name in ("at", "duration", "factor"):
            value = getattr(self, name)
            if not np.isfinite(value):
                raise ConfigError(f"fault {name} must be finite")
        if self.at < 0 or self.duration < 0:
            raise ConfigError("fault times must be >= 0")

    def key(self) -> str:
        return (f"{self.at:.6f}|{self.kind}|{self.scope}|{self.index}"
                f"|{self.duration:.6f}|{self.factor:.6f}")


@dataclass(frozen=True)
class KnobSample:
    """One point in the config-knob space (ALOJA-style dimension)."""

    map_slots: int = 2
    reduce_slots: int = 2
    dfs_replication: int = 2
    policy: str = "fifo"
    speculation: bool = False
    use_combiner: bool = False

    def validate(self) -> None:
        if not 1 <= self.map_slots <= 8 or not 1 <= self.reduce_slots <= 8:
            raise ConfigError("slot knobs must be in 1..8")
        if not 1 <= self.dfs_replication <= 4:
            raise ConfigError("dfs_replication knob must be in 1..4")
        if self.policy not in POLICIES:
            raise ConfigError(f"unknown policy {self.policy!r}")

    def hadoop_config(self) -> HadoopConfig:
        return HadoopConfig(
            map_tasks_maximum=self.map_slots,
            reduce_tasks_maximum=self.reduce_slots,
            dfs_replication=self.dfs_replication,
            speculative_execution=self.speculation,
            use_combiner=self.use_combiner)

    def key(self) -> str:
        return (f"{self.map_slots}|{self.reduce_slots}"
                f"|{self.dfs_replication}|{self.policy}"
                f"|{int(self.speculation)}|{int(self.use_combiner)}")


@dataclass(frozen=True)
class Scenario:
    """Everything one fuzz run needs, as replayable data."""

    seed: int
    racks: int
    hosts_per_rack: int
    vms_per_host: int
    n_vms: int
    layout: str = "packed"
    knobs: KnobSample = field(default_factory=KnobSample)
    jobs: tuple[FuzzJob, ...] = ()
    adversaries: tuple[AdversarySpec, ...] = ()
    faults: tuple[FuzzFault, ...] = ()

    # -- validation --------------------------------------------------------
    def validate(self) -> None:
        if self.racks < 1 or self.hosts_per_rack < 1 or self.vms_per_host < 1:
            raise ConfigError("topology dimensions must be >= 1")
        if self.n_vms < 3:
            raise ConfigError("a scenario needs >= 3 VMs "
                              "(master + 2 workers)")
        if self.n_vms > self.racks * self.hosts_per_rack * self.vms_per_host:
            raise ConfigError("n_vms exceeds the topology capacity")
        if self.layout not in LAYOUTS:
            raise ConfigError(f"unknown layout {self.layout!r}")
        if not self.jobs:
            raise ConfigError("a scenario needs at least one job")
        self.knobs.validate()
        for job in self.jobs:
            job.validate()
        for adversary in self.adversaries:
            adversary.validate()
        n_workers = self.n_vms - 1
        for fault in self.faults:
            fault.validate()
            if fault.scope == "worker" and fault.index >= n_workers:
                raise ConfigError(
                    f"fault targets worker {fault.index} but the scenario "
                    f"has {n_workers} workers")
            if fault.scope == "host" and fault.index >= self.n_hosts:
                raise ConfigError(
                    f"fault targets host {fault.index} but the scenario "
                    f"has {self.n_hosts} hosts")

    @property
    def n_hosts(self) -> int:
        return self.racks * self.hosts_per_rack

    @property
    def n_workers(self) -> int:
        return self.n_vms - 1

    # -- content addressing ------------------------------------------------
    def digest(self) -> str:
        """Deterministic content hash (16 hex chars).

        Every field feeds the hash through a length-prefixed canonical
        JSON encoding, so no crafted string can collide across field
        boundaries.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": FORMAT_VERSION,
            "seed": self.seed,
            "topology": {"racks": self.racks,
                         "hosts_per_rack": self.hosts_per_rack,
                         "vms_per_host": self.vms_per_host},
            "n_vms": self.n_vms,
            "layout": self.layout,
            "knobs": {"map_slots": self.knobs.map_slots,
                      "reduce_slots": self.knobs.reduce_slots,
                      "dfs_replication": self.knobs.dfs_replication,
                      "policy": self.knobs.policy,
                      "speculation": self.knobs.speculation,
                      "use_combiner": self.knobs.use_combiner},
            "jobs": [{"kind": j.kind, "size_mb": j.size_mb,
                      "n_reduces": j.n_reduces, "pool": j.pool}
                     for j in self.jobs],
            "adversaries": [{"kind": a.kind, "intensity": a.intensity,
                             "tenant": a.tenant}
                            for a in self.adversaries],
            "faults": [{"at": f.at, "kind": f.kind, "scope": f.scope,
                        "index": f.index, "duration": f.duration,
                        "factor": f.factor}
                       for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        if data.get("format") != FORMAT_VERSION:
            raise ConfigError(
                f"unsupported scenario format {data.get('format')!r} "
                f"(this build reads format {FORMAT_VERSION})")
        topo = data["topology"]
        knobs = data["knobs"]
        scenario = cls(
            seed=int(data["seed"]),
            racks=int(topo["racks"]),
            hosts_per_rack=int(topo["hosts_per_rack"]),
            vms_per_host=int(topo["vms_per_host"]),
            n_vms=int(data["n_vms"]),
            layout=str(data["layout"]),
            knobs=KnobSample(
                map_slots=int(knobs["map_slots"]),
                reduce_slots=int(knobs["reduce_slots"]),
                dfs_replication=int(knobs["dfs_replication"]),
                policy=str(knobs["policy"]),
                speculation=bool(knobs["speculation"]),
                use_combiner=bool(knobs["use_combiner"])),
            jobs=tuple(FuzzJob(kind=str(j["kind"]),
                               size_mb=int(j["size_mb"]),
                               n_reduces=int(j["n_reduces"]),
                               pool=str(j["pool"]))
                       for j in data["jobs"]),
            adversaries=tuple(AdversarySpec(kind=str(a["kind"]),
                                            intensity=int(a["intensity"]),
                                            tenant=str(a["tenant"]))
                              for a in data["adversaries"]),
            faults=tuple(FuzzFault(at=float(f["at"]), kind=str(f["kind"]),
                                   scope=str(f["scope"]),
                                   index=int(f["index"]),
                                   duration=float(f["duration"]),
                                   factor=float(f["factor"]))
                         for f in data["faults"]),
        )
        scenario.validate()
        return scenario

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def without(self, **kwargs) -> "Scenario":
        """A shrunk copy with fields replaced (shrinker primitive)."""
        return replace(self, **kwargs)


def corpus_digest(scenarios: Sequence[Scenario]) -> str:
    """Digest of a whole scenario corpus (pinned by the CI smoke job)."""
    h = hashlib.sha256()
    for scenario in scenarios:
        h.update(scenario.digest().encode())
        h.update(b"\n")
    return h.hexdigest()[:16]


class ScenarioGenerator:
    """Seeded sampler over the full scenario cross-product."""

    #: Window (simulated seconds) faults are scheduled into.  Scenario
    #: jobs on the generated cluster shapes run for minutes of simulated
    #: time, so the window keeps injections inside the busy phase.
    FAULT_WINDOW_S = 60.0
    #: Settle time demanded between crash outages so re-replication can
    #: restore the replicas a cold-disk rejoin lost.
    CRASH_MARGIN_S = 30.0

    def __init__(self, seed: int):
        self.seed = int(seed)
        self.rng = np.random.default_rng(
            np.random.SeedSequence([0x5CE11A12, self.seed]))

    # -- small draw helpers ------------------------------------------------
    def _int(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return int(self.rng.integers(lo, hi + 1))

    def _choice(self, options: Sequence) -> object:
        return options[self._int(0, len(options) - 1)]

    def _bool(self, p_true: float = 0.5) -> bool:
        return float(self.rng.uniform(0.0, 1.0)) < p_true

    def _outage_end(self, at: float, duration: float,
                    outages: Sequence[Sequence[float]]) -> Optional[float]:
        """End of a crash outage starting at ``at``; None if it overlaps
        an existing one (permanent crashes never end: duration 0 → inf)."""
        end = (float("inf") if duration == 0.0
               else at + duration + self.CRASH_MARGIN_S)
        for start, stop in outages:
            if at < stop and start < end:
                return None
        return end

    # -- generation --------------------------------------------------------
    def generate(self) -> Scenario:
        racks = self._int(1, 4)
        hosts_per_rack = self._int(1, 3)
        vms_per_host = self._int(2, 4)
        capacity = racks * hosts_per_rack * vms_per_host
        n_vms = self._int(3, min(capacity, 9)) if capacity >= 3 else 3
        if capacity < 3:  # 1x1x2 can't host master + 2 workers
            vms_per_host, n_vms = 3, 3
        layout = str(self._choice(LAYOUTS))

        knobs = KnobSample(
            map_slots=self._int(1, 3),
            reduce_slots=self._int(1, 2),
            dfs_replication=min(self._int(1, 3), n_vms - 1),
            policy=str(self._choice(POLICIES)),
            speculation=self._bool(0.3),
            use_combiner=self._bool(0.3))

        jobs = tuple(self._generate_job(i) for i in range(self._int(1, 3)))
        adversaries = tuple(
            AdversarySpec(kind=str(self._choice(ADVERSARY_KINDS)),
                          intensity=self._int(1, 3),
                          tenant=f"adv-{i}")
            for i in range(self._int(0, 2) if self._bool(0.5) else 0))
        faults = self._generate_faults(n_vms, racks * hosts_per_rack,
                                       vms_per_host, layout,
                                       knobs.dfs_replication)
        scenario = Scenario(
            seed=self.seed, racks=racks, hosts_per_rack=hosts_per_rack,
            vms_per_host=vms_per_host, n_vms=n_vms, layout=layout,
            knobs=knobs, jobs=jobs, adversaries=adversaries, faults=faults)
        scenario.validate()
        return scenario

    def _generate_job(self, _index: int) -> FuzzJob:
        kind = str(self._choice(JOB_KINDS))
        return FuzzJob(
            kind=kind,
            size_mb=self._int(4, 24),
            n_reduces=self._int(1, 4),
            pool=str(self._choice(("default", "tenant-a", "tenant-b"))))

    def _generate_faults(self, n_vms: int, n_hosts: int,
                         vms_per_host: int, layout: str,
                         replication: int) -> tuple[FuzzFault, ...]:
        """Sample a survivable fault schedule over all six kinds.

        Survivability rules (anything beyond them is a *generator* bug,
        not a platform bug):

        * crash faults only when ``replication >= 2`` — losing the sole
          replica of a block is unrecoverable by design;
        * host crashes only when the workers span at least two hosts —
          off-host replica placement is what makes a correlated kill
          survivable, and a packed small cluster has no "off-host";
        * crash outages never overlap: each crash starts only after the
          previous one has healed *and* re-replication had
          :data:`CRASH_MARGIN_S` to restore the lost replicas (crashed
          VMs rejoin with cold disks);
        * at most one *permanent* crash, and the set of simultaneously
          crashed workers always leaves ``max(2, replication)`` workers
          alive;
        * degradations (net/disk) always heal within the window.
        """
        n_workers = n_vms - 1
        faults: list[FuzzFault] = []
        n_faults = self._int(0, 5)
        permanent_used = False
        crashed_workers: set[int] = set()
        window = self.FAULT_WINDOW_S
        min_alive = max(2, replication)
        # Do the workers span >= 2 hosts?  Packed placement fills host 0
        # first; spread round-robins, so any 2-host topology spans.
        multi_host = n_hosts >= 2 and (
            n_vms > vms_per_host if layout == "packed" else True)
        #: [start, end) intervals during which some crash outage is live
        #: (end includes the re-replication margin; inf = permanent).
        outages: list[list[float]] = []
        permanent_outage: Optional[list[float]] = None
        for _ in range(n_faults):
            kind = str(self._choice(FAULT_KINDS))
            at = round(float(self.rng.uniform(1.0, window)), 3)
            if kind in ("vm.crash", "host.crash"):
                if replication < 2:
                    continue  # unsurvivable with a single replica
                if kind == "host.crash":
                    if not multi_host:
                        continue  # would take out every replica holder
                    # Host crashes always rejoin: a correlated kill that
                    # never returns usually takes half the cluster.
                    index = self._int(0, n_hosts - 1)
                    duration = round(float(self.rng.uniform(10.0, 40.0)), 3)
                    end = self._outage_end(at, duration, outages)
                    if end is None:
                        continue  # overlaps an earlier crash outage
                    outages.append([at, end])
                    faults.append(FuzzFault(
                        at=at, kind=kind, scope="host", index=index,
                        duration=duration))
                    continue
                index = self._int(0, n_workers - 1)
                if index in crashed_workers:
                    continue
                if len(crashed_workers) + 1 > n_workers - min_alive:
                    continue  # would leave too few live workers
                permanent = (not permanent_used) and self._bool(0.25)
                duration = 0.0 if permanent else round(
                    float(self.rng.uniform(8.0, 45.0)), 3)
                end = self._outage_end(at, duration, outages)
                if end is None:
                    continue  # overlaps an earlier crash outage
                outage = [at, end]
                outages.append(outage)
                if permanent:
                    permanent_used = True
                    permanent_outage = outage
                crashed_workers.add(index)
                faults.append(FuzzFault(at=at, kind=kind, scope="worker",
                                        index=index, duration=duration))
            elif kind == "rejoin":
                # Explicit rejoin of an earlier permanent crash victim.
                targets = [f for f in faults
                           if f.kind == "vm.crash" and f.duration == 0.0]
                if not targets:
                    continue
                crash = targets[-1]
                rejoin_at = round(
                    crash.at + float(self.rng.uniform(5.0, 30.0)), 3)
                faults.append(FuzzFault(
                    at=rejoin_at, kind="rejoin", scope="worker",
                    index=crash.index))
                crashed_workers.discard(crash.index)
                permanent_used = False
                if permanent_outage is not None:
                    # The explicit rejoin ends the permanent outage.
                    permanent_outage[1] = rejoin_at + self.CRASH_MARGIN_S
                    permanent_outage = None
            elif kind in ("net.degrade", "net.partition"):
                faults.append(FuzzFault(
                    at=at, kind=kind, scope="host",
                    index=self._int(0, n_hosts - 1),
                    duration=round(float(self.rng.uniform(5.0, 30.0)), 3),
                    factor=round(float(self.rng.uniform(2.0, 8.0)), 3)))
            else:  # disk.slow
                faults.append(FuzzFault(
                    at=at, kind="disk.slow", scope="worker",
                    index=self._int(0, n_workers - 1),
                    duration=round(float(self.rng.uniform(5.0, 30.0)), 3),
                    factor=round(float(self.rng.uniform(2.0, 6.0)), 3)))
        return tuple(faults)


def generate_scenario(seed: int) -> Scenario:
    """One-shot convenience: the scenario for ``seed``."""
    return ScenarioGenerator(seed).generate()


def generate_scenarios(seeds: Sequence[int]) -> list[Scenario]:
    """The scenario corpus for a seed range."""
    return [generate_scenario(seed) for seed in seeds]
