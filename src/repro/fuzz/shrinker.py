"""Delta-debugging shrinker: minimize a failing scenario.

Given a scenario that violates an invariant, the shrinker searches for a
smaller scenario that *still violates the same invariant* (matched by
name — ``"output"`` stays ``"output"``, the detail text may drift).  It
runs greedy fixpoint passes, cheapest-first:

1. drop faults, adversaries and jobs one at a time (ddmin's granularity-1
   pass — scenario lists are short enough that the full ddmin cascade
   buys nothing);
2. shrink the topology (fewer racks/hosts/VMs);
3. canonicalize knobs, job fields and fault fields toward defaults.

Every accepted candidate re-validates and re-runs, so a shrunk repro is
always an executable scenario; the result serializes to a replayable
repro file (``write_repro`` / ``load_repro``) that regression tests pin.

Shrinking explores scenarios the fuzzer never generated, so a candidate
can be pathologically slow even when the original run was not.  A
``candidate_timeout_s`` budget runs each candidate through
:func:`repro.parallel.call_guarded` — a killable worker process — and
treats a timeout as a rejected candidate: the shrink stays correct, it
just declines that direction.  The guard costs a process spawn per
candidate, so it is off by default and meant for campaign/CI shrinks,
not interactive ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.fuzz.execute import FuzzRunResult, run_scenario
from repro.fuzz.invariants import Violation
from repro.fuzz.scenario import FORMAT_VERSION, KnobSample, Scenario
from repro.parallel import call_guarded

#: Default cap on candidate runs per shrink (each run is a full scenario).
DEFAULT_BUDGET = 150


def _guarded_candidate(payload: dict) -> dict:
    """Module-level worker (pickled by reference into the guard process):
    run one candidate scenario, return its violations as plain dicts."""
    scenario = Scenario.from_dict(payload)
    result = run_scenario(scenario)
    return {"violations": [{"invariant": v.invariant, "detail": v.detail,
                            "job": v.job} for v in result.violations]}


@dataclass
class ShrinkResult:
    """The minimized scenario and the violation it preserves."""

    scenario: Scenario
    violation: Violation
    runs: int = 0                      # candidate executions spent
    removed: dict = field(default_factory=dict)  # what shrinking dropped

    def summary(self) -> str:
        s = self.scenario
        return (f"seed={s.seed} {len(s.jobs)} jobs, {len(s.faults)} faults, "
                f"{len(s.adversaries)} adversaries, {s.n_vms} VMs -> "
                f"{self.violation.invariant}")


class Shrinker:
    """Minimizes scenarios while preserving an invariant violation."""

    def __init__(self, budget: int = DEFAULT_BUDGET,
                 runner: Optional[Callable[[Scenario], FuzzRunResult]] = None,
                 candidate_timeout_s: Optional[float] = None,
                 mp_context: str = "spawn"):
        if candidate_timeout_s is not None and runner is not None:
            raise ConfigError(
                "candidate_timeout_s runs candidates in a worker process "
                "with the default runner; a custom runner cannot be "
                "combined with it")
        if candidate_timeout_s is not None and candidate_timeout_s <= 0:
            raise ConfigError(f"candidate_timeout_s must be > 0, "
                              f"got {candidate_timeout_s}")
        self.budget = budget
        self.runner = runner or run_scenario
        self.candidate_timeout_s = candidate_timeout_s
        self.mp_context = mp_context
        self.runs = 0
        #: Candidates rejected because their guarded run hit the budget.
        self.timeouts = 0

    # -- public ------------------------------------------------------------
    def shrink(self, scenario: Scenario, violation: Violation
               ) -> ShrinkResult:
        """Greedy fixpoint minimization preserving ``violation.invariant``."""
        self.runs = 0
        target = violation.invariant
        current, current_violation = scenario, violation
        before = (len(scenario.jobs), len(scenario.faults),
                  len(scenario.adversaries), scenario.n_vms)
        changed = True
        while changed and self.runs < self.budget:
            changed = False
            for pass_fn in (self._drop_faults, self._drop_adversaries,
                            self._drop_jobs, self._shrink_topology,
                            self._canonicalize):
                candidate = pass_fn(current, target)
                if candidate is not None:
                    current, current_violation = candidate
                    changed = True
        after = (len(current.jobs), len(current.faults),
                 len(current.adversaries), current.n_vms)
        removed = {"jobs": before[0] - after[0],
                   "faults": before[1] - after[1],
                   "adversaries": before[2] - after[2],
                   "vms": before[3] - after[3]}
        return ShrinkResult(scenario=current, violation=current_violation,
                            runs=self.runs, removed=removed)

    # -- candidate acceptance ----------------------------------------------
    def _still_fails(self, candidate: Scenario, target: str
                     ) -> Optional[Violation]:
        """Run a candidate; the violation if it still breaks ``target``."""
        if self.runs >= self.budget:
            return None
        try:
            candidate.validate()
        except ConfigError:
            return None
        self.runs += 1
        if self.candidate_timeout_s is not None:
            guarded = call_guarded(_guarded_candidate, candidate.to_dict(),
                                   timeout_s=self.candidate_timeout_s,
                                   mp_context=self.mp_context)
            if not guarded.ok:
                # Timed out (or died): reject the candidate — the shrink
                # stays sound, it just keeps the larger parent.
                if guarded.timed_out:
                    self.timeouts += 1
                return None
            for v in guarded.value["violations"]:
                if v["invariant"] == target:
                    return Violation(invariant=v["invariant"],
                                     detail=v["detail"], job=v.get("job"))
            return None
        result = self.runner(candidate)
        for violation in result.violations:
            if violation.invariant == target:
                return violation
        return None

    def _try(self, candidate: Scenario, target: str
             ) -> Optional[tuple[Scenario, Violation]]:
        violation = self._still_fails(candidate, target)
        if violation is None:
            return None
        return candidate, violation

    # -- passes --------------------------------------------------------------
    def _drop_faults(self, scenario: Scenario, target: str):
        for i in range(len(scenario.faults)):
            faults = scenario.faults[:i] + scenario.faults[i + 1:]
            hit = self._try(scenario.without(faults=faults), target)
            if hit is not None:
                return hit
        return None

    def _drop_adversaries(self, scenario: Scenario, target: str):
        for i in range(len(scenario.adversaries)):
            adv = scenario.adversaries[:i] + scenario.adversaries[i + 1:]
            hit = self._try(scenario.without(adversaries=adv), target)
            if hit is not None:
                return hit
        return None

    def _drop_jobs(self, scenario: Scenario, target: str):
        if len(scenario.jobs) <= 1:
            return None
        for i in range(len(scenario.jobs)):
            jobs = scenario.jobs[:i] + scenario.jobs[i + 1:]
            hit = self._try(scenario.without(jobs=jobs), target)
            if hit is not None:
                return hit
        return None

    def _shrink_topology(self, scenario: Scenario, target: str):
        candidates = []
        if scenario.racks > 1:
            candidates.append(scenario.without(racks=scenario.racks - 1))
        if scenario.hosts_per_rack > 1:
            candidates.append(scenario.without(
                hosts_per_rack=scenario.hosts_per_rack - 1))
        if scenario.vms_per_host > 2:
            candidates.append(scenario.without(
                vms_per_host=scenario.vms_per_host - 1))
        if scenario.n_vms > 3:
            candidates.append(scenario.without(n_vms=scenario.n_vms - 1))
        if scenario.layout != "packed":
            candidates.append(scenario.without(layout="packed"))
        for candidate in candidates:
            hit = self._try(candidate, target)
            if hit is not None:
                return hit
        return None

    def _canonicalize(self, scenario: Scenario, target: str):
        """Round knobs, jobs and faults toward their defaults."""
        defaults = KnobSample()
        for name in ("map_slots", "reduce_slots", "dfs_replication",
                     "policy", "speculation", "use_combiner"):
            value = getattr(scenario.knobs, name)
            default = getattr(defaults, name)
            if value != default:
                knobs = replace(scenario.knobs, **{name: default})
                hit = self._try(scenario.without(knobs=knobs), target)
                if hit is not None:
                    return hit
        for i, job in enumerate(scenario.jobs):
            for change in ({"size_mb": 4}, {"n_reduces": 1},
                           {"pool": "default"}):
                if all(getattr(job, k) == v for k, v in change.items()):
                    continue
                jobs = (scenario.jobs[:i] + (replace(job, **change),)
                        + scenario.jobs[i + 1:])
                hit = self._try(scenario.without(jobs=jobs), target)
                if hit is not None:
                    return hit
        for i, fault in enumerate(scenario.faults):
            changes = [{"at": float(int(fault.at))},
                       {"factor": 2.0}]
            if fault.duration > 10.0:
                changes.append({"duration": 10.0})
            for change in changes:
                if all(getattr(fault, k) == v for k, v in change.items()):
                    continue
                faults = (scenario.faults[:i] + (replace(fault, **change),)
                          + scenario.faults[i + 1:])
                hit = self._try(scenario.without(faults=faults), target)
                if hit is not None:
                    return hit
        return None


# -- repro files --------------------------------------------------------------

def repro_dict(result: ShrinkResult) -> dict:
    return {
        "format": FORMAT_VERSION,
        "scenario": result.scenario.to_dict(),
        "violation": {"invariant": result.violation.invariant,
                      "detail": result.violation.detail,
                      "job": result.violation.job},
        "scenario_digest": result.scenario.digest(),
    }


def write_repro(result: ShrinkResult, path: "str | Path") -> Path:
    """Serialize a shrunk repro for replay (regression corpus format)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(repro_dict(result), sort_keys=True, indent=2)
                    + "\n")
    return path


def load_repro(path: "str | Path") -> tuple[Scenario, Violation]:
    """Read a repro file back into (scenario, expected violation)."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != FORMAT_VERSION:
        raise ConfigError(f"unsupported repro format {data.get('format')!r}")
    scenario = Scenario.from_dict(data["scenario"])
    if scenario.digest() != data.get("scenario_digest"):
        raise ConfigError(
            f"repro file {path} is corrupt: scenario digest mismatch")
    v = data["violation"]
    return scenario, Violation(invariant=v["invariant"], detail=v["detail"],
                               job=v.get("job"))


def replay_repro(path: "str | Path") -> FuzzRunResult:
    """Re-run a repro file's scenario (regression check entry point)."""
    scenario, _expected = load_repro(path)
    return run_scenario(scenario)
