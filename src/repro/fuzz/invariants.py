"""The fuzzer's invariant suite: what must hold after *every* run.

Each invariant has a stable name (the shrinker minimizes scenarios while
preserving the violated invariant's name, not its detail text):

``crash``
    No exception escapes the platform while a scenario runs.
``liveness``
    Every submitted job completes before the scenario deadline.
``counters``
    Exactly-once execution: per-job record counters match the
    pure-functional :class:`~repro.mapreduce.local.LocalJobRunner`
    oracle (map inputs seen once, map outputs produced once, reduce
    outputs produced once) no matter what faults fired mid-run.
``output``
    The cluster's output records equal the fault-free oracle's, exactly
    for integer workloads and to float tolerance for ML workloads (the
    combiner legitimately reorders float summation).
``replication``
    Recovery convergence, part 1: at quiescence no block is left
    under-replicated (the re-replication monitor finished its job).
``rejoin``
    Recovery convergence, part 2: at quiescence every worker the
    scenario did not permanently crash is RUNNING again.
``fairshare``
    Scheduler accounting conservation: per-job, per-pool and
    cluster-wide busy slot-seconds all agree.
``clean-alerts``
    A run with no faults and no adversaries raises zero observatory
    alerts — detectors must not cry wolf on a healthy cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

#: Relative tolerance for float workload outputs (combiner reorders sums).
FLOAT_RTOL = 1e-6
#: Absolute slack for slot-second conservation (accrual rounding).
SLOT_SECONDS_ATOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant breach found by a run."""

    invariant: str       # stable name (shrink target)
    detail: str          # human diagnosis
    job: Optional[str] = None

    def key(self) -> str:
        return self.invariant if self.job is None \
            else f"{self.invariant}@{self.job}"


@dataclass
class JobOutcome:
    """One job's observed vs expected behaviour."""

    name: str
    kind: str                      # FuzzJob kind or adversary kind
    pool: str
    n_records: int                 # uploaded input records
    report: Any = None             # JobReport (None if the run crashed)
    output: Optional[list] = None  # cluster output records
    oracle_output: Optional[list] = None
    oracle_counters: Optional[Any] = None
    float_outputs: bool = False    # compare values with tolerance


@dataclass
class RunContext:
    """Everything the invariant suite looks at after a run."""

    scenario: Any                            # fuzz.scenario.Scenario
    jobs: list[JobOutcome] = field(default_factory=list)
    crash: Optional[str] = None              # repr of escaped exception
    deadline_hit: bool = False
    sched_report: Any = None                 # SchedulerReport or None
    under_replicated: list = field(default_factory=list)
    worker_states: dict[str, str] = field(default_factory=dict)
    expected_failed: frozenset = frozenset()  # worker names left crashed
    alert_count: int = 0
    chaos_digest: str = ""
    elapsed_s: float = 0.0


def _values_close(a: Any, b: Any) -> bool:
    """Float-tolerant structural equality for ML outputs."""
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(
            _values_close(x, y) for x, y in zip(a, b))
    if isinstance(a, float) or isinstance(b, float):
        try:
            return math.isclose(float(a), float(b),
                                rel_tol=FLOAT_RTOL, abs_tol=1e-9)
        except (TypeError, ValueError):
            return a == b
    return a == b


class InvariantSuite:
    """Checks every invariant against one :class:`RunContext`."""

    def check(self, ctx: RunContext) -> list[Violation]:
        violations: list[Violation] = []
        if ctx.crash is not None:
            violations.append(Violation("crash", ctx.crash))
            return violations  # downstream state is undefined
        if ctx.deadline_hit:
            unfinished = [j.name for j in ctx.jobs
                          if j.report is None]
            violations.append(Violation(
                "liveness",
                f"deadline hit with unfinished jobs: {unfinished}"))
            return violations
        for job in ctx.jobs:
            violations.extend(self._check_job(job))
        violations.extend(self._check_recovery(ctx))
        violations.extend(self._check_fairshare(ctx))
        violations.extend(self._check_clean_alerts(ctx))
        return violations

    # -- exactly-once + correctness ---------------------------------------
    def _check_job(self, job: JobOutcome) -> list[Violation]:
        out: list[Violation] = []
        if job.report is None or job.oracle_counters is None:
            return out
        got = job.report.counters
        want = job.oracle_counters
        checks = (
            ("map_input_records", job.n_records),
            ("map_output_records", want.get("job", "map_output_records")),
            ("reduce_output_records",
             want.get("job", "reduce_output_records")),
        )
        for counter, expected in checks:
            actual = got.get("job", counter)
            if actual != expected:
                out.append(Violation(
                    "counters",
                    f"{counter}: cluster={actual} oracle={expected}",
                    job=job.name))
        if job.output is not None and job.oracle_output is not None:
            if not self._outputs_equal(job):
                out.append(Violation(
                    "output",
                    f"cluster output ({len(job.output)} records) differs "
                    f"from oracle ({len(job.oracle_output)} records)",
                    job=job.name))
        return out

    def _outputs_equal(self, job: JobOutcome) -> bool:
        got, want = job.output, job.oracle_output
        if len(got) != len(want):
            return False
        if not job.float_outputs:
            return got == want
        return all(gk == wk and _values_close(gv, wv)
                   for (gk, gv), (wk, wv) in zip(got, want))

    # -- recovery convergence ---------------------------------------------
    def _check_recovery(self, ctx: RunContext) -> list[Violation]:
        out: list[Violation] = []
        if ctx.under_replicated:
            sample = [(block.block_id, live)
                      for block, live in ctx.under_replicated[:4]]
            out.append(Violation(
                "replication",
                f"{len(ctx.under_replicated)} blocks under-replicated at "
                f"quiescence, e.g. {sample}"))
        stuck = sorted(
            name for name, state in ctx.worker_states.items()
            if state != "RUNNING" and name not in ctx.expected_failed)
        if stuck:
            out.append(Violation(
                "rejoin",
                f"workers not RUNNING at quiescence: "
                f"{[(n, ctx.worker_states[n]) for n in stuck]}"))
        return out

    # -- scheduler accounting conservation --------------------------------
    def _check_fairshare(self, ctx: RunContext) -> list[Violation]:
        report = ctx.sched_report
        if report is None:
            return []
        job_total = sum(stats.slot_seconds for stats in report.jobs)
        pool_total = sum(p.slot_seconds for p in report.pools.values())
        busy = report.busy_slot_seconds
        atol = SLOT_SECONDS_ATOL + 1e-9 * max(1.0, busy)
        out: list[Violation] = []
        if abs(job_total - pool_total) > atol:
            out.append(Violation(
                "fairshare",
                f"slot-second conservation broken: jobs={job_total:.6f} "
                f"pools={pool_total:.6f}"))
        if abs(job_total - busy) > atol:
            out.append(Violation(
                "fairshare",
                f"slot-second conservation broken: jobs={job_total:.6f} "
                f"cluster busy={busy:.6f}"))
        return out

    # -- healthy clusters stay quiet --------------------------------------
    def _check_clean_alerts(self, ctx: RunContext) -> list[Violation]:
        scenario = ctx.scenario
        if scenario.faults or scenario.adversaries:
            return []
        if ctx.alert_count:
            return [Violation(
                "clean-alerts",
                f"{ctx.alert_count} observatory alerts on a clean run "
                "(no faults, no adversaries)")]
        return []


def summarize(violations: Sequence[Violation]) -> str:
    """One-line summary used by logs and the CLI."""
    if not violations:
        return "ok"
    names = sorted({v.invariant for v in violations})
    return f"{len(violations)} violations ({', '.join(names)})"
