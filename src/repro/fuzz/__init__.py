"""The scenario fuzzer: generate, run, check, shrink, replay.

The platform's adversarial autopilot.  One integer seed deterministically
expands into a full :class:`~repro.fuzz.scenario.Scenario` — workload
mix, tenant pools, adversarial actors, fault schedule, topology and
config knobs — which :func:`~repro.fuzz.execute.run_scenario` executes
against the platform and judges with the
:class:`~repro.fuzz.invariants.InvariantSuite` (exactly-once counters,
output correctness vs the fault-free oracle, recovery convergence,
accounting conservation, quiet clean runs).  Failures are minimized by
the delta-debugging :class:`~repro.fuzz.shrinker.Shrinker` into
replayable repro files that the regression corpus under
``tests/fuzz/regressions/`` pins forever.
"""

from repro.fuzz.execute import (DEFAULT_LIVENESS_S, DEFAULT_SETTLE_S,
                                FuzzRunResult, MaterializedJob,
                                expected_failed_workers, materialize_jobs,
                                resolve_faults, run_scenario)
from repro.fuzz.invariants import (InvariantSuite, JobOutcome, RunContext,
                                   Violation, summarize)
from repro.fuzz.scenario import (FORMAT_VERSION, JOB_KINDS, LAYOUTS,
                                 POLICIES, FuzzFault, FuzzJob, KnobSample,
                                 Scenario, ScenarioGenerator, corpus_digest,
                                 generate_scenario, generate_scenarios)
from repro.fuzz.shrinker import (ShrinkResult, Shrinker, load_repro,
                                 replay_repro, repro_dict, write_repro)

__all__ = [
    "DEFAULT_LIVENESS_S", "DEFAULT_SETTLE_S", "FORMAT_VERSION",
    "FuzzFault", "FuzzJob", "FuzzRunResult", "InvariantSuite", "JOB_KINDS",
    "JobOutcome", "KnobSample", "LAYOUTS", "MaterializedJob", "POLICIES",
    "RunContext", "Scenario", "ScenarioGenerator", "ShrinkResult",
    "Shrinker", "Violation", "corpus_digest", "expected_failed_workers",
    "generate_scenario", "generate_scenarios", "load_repro",
    "materialize_jobs", "replay_repro", "repro_dict", "resolve_faults",
    "run_scenario", "summarize", "write_repro",
]
