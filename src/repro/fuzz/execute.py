"""Scenario execution: one :class:`~repro.fuzz.scenario.Scenario` in, one
:class:`FuzzRunResult` out.

The runner is the bridge between the fuzzer's pure data and the platform:

1. provision the scenario's cluster over its declarative topology;
2. materialize every workload (and every adversarial payload) into
   records, stage them into HDFS untimed, and run the fault-free
   :class:`~repro.mapreduce.local.LocalJobRunner` oracle over the same
   records;
3. submit all jobs through a :class:`~repro.scheduler.JobScheduler`
   under the sampled policy, start the
   :class:`~repro.chaos.injector.ChaosInjector` with the resolved fault
   plan, and watch everything through an observatory;
4. drive the simulation behind a liveness deadline (a hung platform is a
   finding, not a hung fuzzer), settle recovery to quiescence, then hand
   the collected :class:`~repro.fuzz.invariants.RunContext` to the
   :class:`~repro.fuzz.invariants.InvariantSuite`.

Symbolic fault targets resolve *modulo* the live cluster (worker ``i`` →
``workers[i % n]``; ``host.crash`` maps onto hosts that actually carry
workers), so shrunk topologies keep their fault schedules meaningful.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro import constants as C
from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.cloud.adversaries import (AdversarySpec, hot_key_lines,
                                     skewed_keys, spam_job_count)
from repro.config import PlatformConfig, TopologySpec
from repro.datasets.sample_data import generate_sample_data, sample_sizeof
from repro.datasets.tera import records_for_bytes, tera_sizeof, teragen
from repro.datasets.text import generate_corpus
from repro.fuzz.invariants import (InvariantSuite, JobOutcome, RunContext,
                                   Violation)
from repro.fuzz.scenario import FuzzJob, Scenario
from repro.hdfs.replication import under_replicated
from repro.mapreduce.job import Job
from repro.mapreduce.local import LocalJobRunner
from repro.ml.kmeans import KMeansDriver
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.scheduler import (CapacityScheduler, FairScheduler, FifoScheduler,
                             JobScheduler, QueueConfig)
from repro.workloads.terasort import (TeraSortMapper, TeraSortReducer,
                                      make_terasort_jobs)
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

#: Simulated-seconds budget before a run is declared hung ("liveness").
DEFAULT_LIVENESS_S = 4 * 3600.0
#: Post-completion settle window: heartbeat reaping, re-replication,
#: pending heals all finish inside it.
DEFAULT_SETTLE_S = 300.0

#: Volume scales: materialize 1/scale of the records, charge full bytes.
_WC_SCALE = 64
_TERA_SCALE = 256


@dataclass
class MaterializedJob:
    """A scenario job turned into records + a runnable Job."""

    job: Job
    records: list
    sizeof: Callable[[Any], int]
    pool: str
    kind: str
    input_path: str
    float_outputs: bool = False
    oracle_output: Optional[list] = None
    oracle_counters: Optional[Any] = None


@dataclass
class FuzzRunResult:
    """Outcome of one scenario run."""

    scenario: Scenario
    violations: list[Violation] = field(default_factory=list)
    context: Optional[RunContext] = None
    run_digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations


# -- materialization ---------------------------------------------------------

def _job_rng(scenario: Scenario, index: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence([0xF0220B, scenario.seed, index]))


def _materialize_wordcount(j: FuzzJob, index: int, rng, use_combiner: bool,
                           scale: int = _WC_SCALE,
                           nbytes: Optional[int] = None,
                           name: Optional[str] = None) -> MaterializedJob:
    nbytes = nbytes if nbytes is not None else j.size_mb * C.MB
    lines = generate_corpus(max(1024, nbytes // scale), rng=rng)
    records = lines_as_records(lines)
    path = f"/fuzz/job{index}/input"
    job = wordcount_job(path, f"/fuzz/job{index}/output",
                        n_reduces=max(1, j.n_reduces),
                        use_combiner=use_combiner, volume_scale=scale)
    job.name = name or f"wordcount-{index}"
    return MaterializedJob(job=job, records=records,
                           sizeof=scaled_line_sizeof(scale), pool=j.pool,
                           kind="wordcount", input_path=path)


def _materialize_terasort(j: FuzzJob, index: int, rng) -> MaterializedJob:
    n_records = records_for_bytes(max(1, j.size_mb * C.MB // _TERA_SCALE))
    raw = teragen(n_records, rng=rng)
    records = [(r.key, r.row) for r in raw]
    path = f"/fuzz/job{index}/input"
    job = make_terasort_jobs(path, f"/fuzz/job{index}/output", records,
                             n_reduces=max(1, j.n_reduces),
                             volume_scale=_TERA_SCALE)
    job.name = f"terasort-{index}"
    return MaterializedJob(
        job=job, records=records,
        sizeof=lambda r: tera_sizeof(r) * _TERA_SCALE,
        pool=j.pool, kind="terasort", input_path=path)


def _materialize_kmeans(j: FuzzJob, index: int, rng) -> MaterializedJob:
    points, _labels = generate_sample_data(rng=rng)
    n_points = min(len(points), 50 * j.size_mb)
    records = [(i, (float(p[0]), float(p[1])))
               for i, p in enumerate(points[:n_points])]
    centers = [records[i][1] for i in range(3)]
    driver = KMeansDriver(initial_centers=centers,
                          n_reduces=max(1, j.n_reduces))
    path = f"/fuzz/job{index}/input"
    job = driver._iteration_job(path, f"/fuzz/job{index}/output",
                                centers, d=2)
    job.name = f"kmeans-{index}"
    return MaterializedJob(job=job, records=records, sizeof=sample_sizeof,
                           pool=j.pool, kind="kmeans", input_path=path,
                           float_outputs=True)


def _materialize_adversary(spec: AdversarySpec, index: int, rng,
                           use_combiner: bool) -> list[MaterializedJob]:
    """The adversary's payload jobs (hostile by construction)."""
    if spec.kind == "hotkey":
        fake = FuzzJob(kind="wordcount", size_mb=1, n_reduces=2,
                       pool=spec.tenant)
        mat = _materialize_wordcount(
            fake, index, rng, use_combiner, scale=8,
            nbytes=300 * spec.intensity * 80,
            name=f"adv-hotkey-{index}")
        mat.records = lines_as_records(
            hot_key_lines(rng, 300 * spec.intensity, spec.intensity))
        mat.kind = "adv-hotkey"
        return [mat]
    if spec.kind == "skew":
        n_reduces = 4
        records = skewed_keys(rng, 400 * spec.intensity, n_reduces,
                              spec.intensity)
        path = f"/fuzz/job{index}/input"
        job = Job(name=f"adv-skew-{index}", input_paths=[path],
                  output_path=f"/fuzz/job{index}/output",
                  mapper=TeraSortMapper, reducer=TeraSortReducer,
                  n_reduces=n_reduces)
        return [MaterializedJob(job=job, records=records,
                                sizeof=lambda _r: 24, pool=spec.tenant,
                                kind="adv-skew", input_path=path)]
    # spam: a train of tiny jobs from one noisy tenant
    mats = []
    for k in range(spam_job_count(spec.intensity)):
        fake = FuzzJob(kind="wordcount", size_mb=1, n_reduces=1,
                       pool=spec.tenant)
        mat = _materialize_wordcount(fake, index + k, rng, use_combiner,
                                     scale=4, nbytes=64 * 1024,
                                     name=f"adv-spam-{index + k}")
        mat.kind = "adv-spam"
        mats.append(mat)
    return mats


def materialize_jobs(scenario: Scenario) -> list[MaterializedJob]:
    """All jobs of a scenario (workloads first, adversaries after)."""
    use_combiner = scenario.knobs.use_combiner
    mats: list[MaterializedJob] = []
    index = 0
    for j in scenario.jobs:
        rng = _job_rng(scenario, index)
        if j.kind == "wordcount":
            mats.append(_materialize_wordcount(j, index, rng, use_combiner))
        elif j.kind == "terasort":
            mats.append(_materialize_terasort(j, index, rng))
        else:
            mats.append(_materialize_kmeans(j, index, rng))
        index += 1
    for spec in scenario.adversaries:
        rng = _job_rng(scenario, index)
        batch = _materialize_adversary(spec, index, rng, use_combiner)
        mats.extend(batch)
        index += len(batch)
    return mats


def _run_oracle(mat: MaterializedJob, use_combiner: bool) -> None:
    """Fault-free expected output/counters over the same records.

    The cluster applies a job's combiner only when the Hadoop config
    enables it; mirror that gate here so the oracle computes what the
    cluster *should* compute.
    """
    job = mat.job if use_combiner else dataclasses.replace(mat.job,
                                                           combiner=None)
    local = LocalJobRunner()
    mat.oracle_output = local.run(job, mat.records)
    mat.oracle_counters = local.counters


# -- fault resolution ---------------------------------------------------------

def resolve_faults(scenario: Scenario, cluster) -> FaultPlan:
    """Turn symbolic fault targets into a concrete :class:`FaultPlan`."""
    workers = cluster.workers
    worker_hosts = sorted({vm.host.name for vm in workers
                           if vm.host is not None})
    all_hosts = [m.name for m in cluster.datacenter.machines]
    plan = FaultPlan(name=f"fuzz-{scenario.seed}")
    for f in scenario.faults:
        if f.scope == "worker":
            target = workers[f.index % len(workers)].name
        elif f.kind == "host.crash":
            target = worker_hosts[f.index % len(worker_hosts)]
        else:
            target = all_hosts[f.index % len(all_hosts)]
        plan.add(Fault(at=f.at, kind=f.kind, target=target,
                       duration=f.duration, factor=f.factor))
    return plan


def expected_failed_workers(scenario: Scenario, cluster) -> frozenset:
    """Workers the scenario permanently crashes (no heal, no rejoin)."""
    workers = cluster.workers
    names = set()
    for f in scenario.faults:
        if f.kind == "vm.crash" and f.duration == 0.0:
            rejoined = any(r.kind == "rejoin" and r.index == f.index
                           and r.at > f.at for r in scenario.faults)
            if not rejoined:
                names.add(workers[f.index % len(workers)].name)
    return frozenset(names)


def _make_policy(name: str, pools: list[str]):
    if name == "fifo":
        return FifoScheduler()
    if name == "fair":
        return FairScheduler()
    capacity = round(1.0 / max(1, len(pools)), 6)
    return CapacityScheduler([QueueConfig(name=pool, capacity=capacity)
                              for pool in sorted(pools)])


# -- execution ----------------------------------------------------------------

def run_scenario(scenario: Scenario,
                 liveness_s: float = DEFAULT_LIVENESS_S,
                 settle_s: float = DEFAULT_SETTLE_S) -> FuzzRunResult:
    """Run one scenario end to end and check every invariant."""
    scenario.validate()
    ctx = RunContext(scenario=scenario)
    try:
        _execute(scenario, ctx, liveness_s, settle_s)
    except Exception as exc:  # noqa: BLE001 — every escape is a finding
        ctx.crash = f"{type(exc).__name__}: {exc}"
    violations = InvariantSuite().check(ctx)
    return FuzzRunResult(scenario=scenario, violations=violations,
                         context=ctx, run_digest=_run_digest(ctx))


def _execute(scenario: Scenario, ctx: RunContext,
             liveness_s: float, settle_s: float) -> None:
    topo = TopologySpec(racks=scenario.racks,
                        hosts_per_rack=scenario.hosts_per_rack,
                        vms_per_host=scenario.vms_per_host)
    platform = VHadoopPlatform(PlatformConfig(topology=topo,
                                              seed=scenario.seed))
    spec = ClusterSpec.racked(topo, n_vms=scenario.n_vms,
                              layout=scenario.layout)
    cluster = platform.provision_cluster(
        "fuzz", spec, hadoop_config=scenario.knobs.hadoop_config())

    mats = materialize_jobs(scenario)
    for mat in mats:
        platform.upload(cluster, mat.input_path, mat.records,
                        sizeof=mat.sizeof, timed=False)
        _run_oracle(mat, scenario.knobs.use_combiner)

    pools: list[str] = []
    for mat in mats:
        if mat.pool not in pools:
            pools.append(mat.pool)
    policy = _make_policy(scenario.knobs.policy, pools)
    scheduler = JobScheduler(cluster, policy=policy,
                             runner=platform.runner(cluster))
    events = [scheduler.submit(mat.job, pool=mat.pool) for mat in mats]

    plan = resolve_faults(scenario, cluster)
    cluster.arm_recovery()
    injector = None
    if plan.faults:
        injector = ChaosInjector(cluster, plan)
        injector.start()
    observatory = cluster.observatory()
    observatory.start()

    sim = platform.sim
    gate = sim.all_of(events)
    deadline = sim.timeout(liveness_s)
    try:
        sim.run_until(sim.any_of([gate, deadline]))
        if not gate.triggered:
            ctx.deadline_hit = True
            ctx.elapsed_s = sim.now
            for mat, event in zip(mats, events):
                ctx.jobs.append(JobOutcome(
                    name=mat.job.name, kind=mat.kind, pool=mat.pool,
                    n_records=len(mat.records),
                    report=event.value if event.triggered else None))
            return
        reports = [event.value for event in events]
        ctx.sched_report = scheduler.finalize()
        # Quiescence: let heartbeat reaping, re-replication and pending
        # heals drain before judging recovery convergence.
        sim.run(until=max(sim.now, plan.horizon) + settle_s)
    finally:
        if observatory.running:
            observatory.stop()

    ctx.alert_count = len(observatory.alerts())
    ctx.chaos_digest = injector.report.digest() if injector else ""
    runner = platform.runner(cluster)
    for mat, report in zip(mats, reports):
        ctx.jobs.append(JobOutcome(
            name=mat.job.name, kind=mat.kind, pool=mat.pool,
            n_records=len(mat.records), report=report,
            output=runner.read_output(report),
            oracle_output=mat.oracle_output,
            oracle_counters=mat.oracle_counters,
            float_outputs=mat.float_outputs))
    ctx.under_replicated = under_replicated(cluster.namenode,
                                            cluster.config.dfs_replication)
    ctx.worker_states = {vm.name: vm.state.name for vm in cluster.workers}
    ctx.expected_failed = expected_failed_workers(scenario, cluster)
    ctx.elapsed_s = sim.now


# -- run digest ---------------------------------------------------------------

def _run_digest(ctx: RunContext) -> str:
    """Deterministic hash of everything a replay must reproduce."""
    h = hashlib.sha256()
    h.update(ctx.scenario.digest().encode())
    h.update(f"\ncrash={ctx.crash or ''}".encode())
    h.update(f"\ndeadline={int(ctx.deadline_hit)}".encode())
    for job in ctx.jobs:
        finished = (f"{job.report.finished_at:.6f}"
                    if job.report is not None else "-")
        counters = ("" if job.report is None else "|".join(
            f"{k}={v}" for k, v in
            sorted(job.report.counters.group("job").items())))
        h.update(f"\n{job.name}|{finished}|{counters}".encode())
    h.update(f"\nchaos={ctx.chaos_digest}".encode())
    h.update(f"\nalerts={ctx.alert_count}".encode())
    h.update(f"\nunder_rep={len(ctx.under_replicated)}".encode())
    for name in sorted(ctx.worker_states):
        h.update(f"\n{name}={ctx.worker_states[name]}".encode())
    return h.hexdigest()[:16]
