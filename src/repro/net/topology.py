"""Hosts, endpoints and transfer paths.

Topology model (mirrors the paper's testbed):

* every physical host has one **NIC** (gigabit Ethernet, shared by all its
  guests' external traffic) and one **bridge** (the Xen software bridge that
  carries traffic between co-located guests at near-memory speed);
* every guest/service is a :class:`NetNode` attached to a host with its own
  **vNIC**, so per-VM network I/O can be observed by the monitor;
* hosts connect through a non-blocking switch — the NICs are the only
  inter-host bottleneck, which matches gigabit-Ethernet-era hardware;
* at scale, hosts group into **racks**: each :class:`RackNet` owns a
  top-of-rack switch, and racks meet at a shared aggregation uplink.
  The paper's two-host testbed is the degenerate one-rack case — no ToR
  or aggregation resources exist, so its paths (and every simulated
  timestamp) are bit-identical to the flat topology.

Paths
-----
========================= ==============================================
same node                 no resources (loopback)
same host, two nodes      ``[src.vnic, host.bridge, dst.vnic]``
different hosts (flat)    ``[src.vnic, src.host.nic, dst.host.nic, dst.vnic]``
same rack, two hosts      ``[src.vnic, src.host.nic, rack.tor, dst.host.nic, dst.vnic]``
different racks           ``[src.vnic, src.host.nic, src.tor, agg, dst.tor, dst.host.nic, dst.vnic]``
========================= ==============================================

Unprivileged (guest) endpoints additionally pay their host's ``netback``
resource immediately after/before their vNIC on every path that crosses
a physical NIC.  "Flat" cross-host paths apply whenever either host has
no ToR switch — which is exactly the seed two-host testbed.

The route cache is a bounded LRU (routes are recomputed on demand after
eviction and the whole cache is invalidated on migration), so memory
stays flat even with 1,000+ endpoints where the full pair matrix would
be O(n²).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro import constants as C
from repro.errors import SimulationError
from repro.sim import FairShareSystem, SharedResource, Simulator, Tracer
from repro.sim.kernel import Event, Interrupt
from repro.sim.fairshare import FluidFlow
from repro.telemetry import events as EV


class RackNet:
    """One rack: a group of hosts behind a top-of-rack switch.

    ``tor`` is ``None`` for the degenerate single-rack topology (the
    paper's testbed), in which case the rack is purely an addressing
    label and adds no resources to any path — keeping the flat topology
    bit-identical.
    """

    def __init__(self, name: str, tor_bandwidth: Optional[float] = None):
        self.name = name
        self.tor: Optional[SharedResource] = (
            SharedResource(f"{name}.tor", tor_bandwidth)
            if tor_bandwidth else None)
        if self.tor is not None:
            self.tor.rack = name
        self.hosts: list["HostNet"] = []

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RackNet {self.name} hosts={len(self.hosts)}>"


class HostNet:
    """Network-side view of one physical machine."""

    def __init__(self, name: str, nic_bandwidth: float, bridge_bandwidth: float,
                 netback_bandwidth: float = C.XEN_NETBACK_BPS,
                 rack: Optional[RackNet] = None):
        self.name = name
        self.nic = SharedResource(f"{name}.nic", nic_bandwidth)
        self.bridge = SharedResource(f"{name}.bridge", bridge_bandwidth)
        #: dom0 netback/netfront processing for guest traffic leaving or
        #: entering the host through the physical NIC.
        self.netback = SharedResource(f"{name}.netback", netback_bandwidth)
        #: The rack this host lives in (``None`` on flat topologies).
        self.rack = rack
        if rack is not None:
            rack.hosts.append(self)
            # Locality tags feed the fair-share engine's per-rack
            # component split; flat topologies stay untagged (the split
            # never fires, keeping the seed bit-identical).
            self.nic.rack = rack.name
            self.bridge.rack = rack.name
            self.netback.rack = rack.name

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HostNet {self.name}>"


class NetNode:
    """A network endpoint (VM, NameNode service, NFS server...).

    ``privileged`` endpoints (Domain-0, the NFS appliance) talk to the wire
    directly; guest endpoints pay the netback processing path.
    """

    def __init__(self, name: str, host: HostNet, vnic_bandwidth: float,
                 privileged: bool = False):
        self.name = name
        self.host = host
        self.privileged = privileged
        self.vnic = SharedResource(f"{name}.vnic", vnic_bandwidth)
        if host.rack is not None:
            self.vnic.rack = host.rack.name
        #: Cumulative bytes sent/received (for the monitor).
        self.tx_bytes = 0.0
        self.rx_bytes = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NetNode {self.name}@{self.host.name}>"


class NetworkFabric:
    """Factory for hosts/endpoints and the transfer API over them."""

    def __init__(self, sim: Simulator, fss: FairShareSystem,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.fss = fss
        self.tracer = tracer or Tracer(enabled=False)
        self.hosts: dict[str, HostNet] = {}
        self.racks: dict[str, RackNet] = {}
        self.nodes: dict[str, NetNode] = {}
        #: Shared aggregation uplink between racks (``None`` until a
        #: multi-rack topology calls :meth:`set_aggregation`).
        self.agg: Optional[SharedResource] = None
        #: Route cache: (src, dst) -> (resource tuple, latency), bounded
        #: LRU so memory stays flat when the endpoint pair matrix is
        #: O(n²).  Routes only depend on endpoint placement, so the cache
        #: is dropped when a migration re-homes an endpoint.
        self._path_cache: dict[tuple[NetNode, NetNode],
                               tuple[tuple[SharedResource, ...], float]] = {}
        self.path_cache_capacity = 32768
        self.path_cache_hits = 0
        self.path_cache_misses = 0
        self.path_cache_evictions = 0

    # -- topology construction -------------------------------------------
    def add_rack(self, name: str,
                 tor_bandwidth: Optional[float] = None) -> RackNet:
        """Create a rack; ``tor_bandwidth=None`` makes it a pure label
        (no switch resource — the degenerate single-rack case)."""
        if name in self.racks:
            raise SimulationError(f"duplicate rack {name!r}")
        rack = RackNet(name, tor_bandwidth)
        self.racks[name] = rack
        return rack

    def set_aggregation(self, bandwidth: float) -> SharedResource:
        """Install the shared inter-rack aggregation uplink."""
        if self.agg is None:
            self.agg = SharedResource("net.agg", bandwidth)
        return self.agg

    def add_host(self, name: str,
                 nic_bandwidth: float = C.GBIT_ETHERNET_BPS,
                 bridge_bandwidth: float = C.VIRTUAL_BRIDGE_BPS,
                 netback_bandwidth: float = C.XEN_NETBACK_BPS,
                 rack: Optional[RackNet] = None) -> HostNet:
        if name in self.hosts:
            raise SimulationError(f"duplicate host {name!r}")
        host = HostNet(name, nic_bandwidth, bridge_bandwidth,
                       netback_bandwidth, rack=rack)
        self.hosts[name] = host
        return host

    def attach(self, name: str, host: HostNet,
               vnic_bandwidth: Optional[float] = None,
               privileged: bool = False) -> NetNode:
        """Attach an endpoint to a host; vNIC defaults to the bridge speed."""
        if name in self.nodes:
            raise SimulationError(f"duplicate endpoint {name!r}")
        node = NetNode(name, host, vnic_bandwidth or host.bridge.capacity,
                       privileged=privileged)
        self.nodes[name] = node
        return node

    def move(self, node: NetNode, new_host: HostNet) -> None:
        """Re-home an endpoint after live migration."""
        node.host = new_host
        node.vnic.rack = (new_host.rack.name
                          if new_host.rack is not None else None)
        self._path_cache.clear()

    # -- paths --------------------------------------------------------------
    def path(self, src: NetNode, dst: NetNode
             ) -> tuple[tuple[SharedResource, ...], float]:
        """Resource path and one-way latency between two endpoints."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            self.path_cache_hits += 1
            # LRU touch: dicts preserve insertion order, so re-inserting
            # moves the entry to the "most recently used" end.
            del self._path_cache[key]
            self._path_cache[key] = cached
            return cached
        self.path_cache_misses += 1
        if src is dst:
            route = (), 0.0
        elif src.host is dst.host:
            route = ((src.vnic, src.host.bridge, dst.vnic),
                     C.BRIDGE_LATENCY_S)
        else:
            src_rack, dst_rack = src.host.rack, dst.host.rack
            src_tor = src_rack.tor if src_rack is not None else None
            dst_tor = dst_rack.tor if dst_rack is not None else None
            path = [src.vnic]
            if not src.privileged:
                path.append(src.host.netback)
            path.append(src.host.nic)
            latency = C.LAN_LATENCY_S
            if src_tor is None and dst_tor is None:
                pass  # flat (degenerate one-rack) topology: NIC to NIC
            elif src_rack is dst_rack:
                path.append(src_tor)
            else:
                if src_tor is not None:
                    path.append(src_tor)
                if self.agg is not None:
                    path.append(self.agg)
                if dst_tor is not None:
                    path.append(dst_tor)
                latency = C.LAN_LATENCY_S + C.AGG_LATENCY_S
            path.append(dst.host.nic)
            if not dst.privileged:
                path.append(dst.host.netback)
            path.append(dst.vnic)
            route = tuple(path), latency
        if len(self._path_cache) >= self.path_cache_capacity:
            self._path_cache.pop(next(iter(self._path_cache)))
            self.path_cache_evictions += 1
        self._path_cache[key] = route
        return route

    def path_cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction telemetry for the bounded route cache."""
        return {"size": len(self._path_cache),
                "capacity": self.path_cache_capacity,
                "hits": self.path_cache_hits,
                "misses": self.path_cache_misses,
                "evictions": self.path_cache_evictions}

    def crosses_physical_nic(self, src: NetNode, dst: NetNode) -> bool:
        """True when traffic between the endpoints leaves a physical host."""
        return src is not dst and src.host is not dst.host

    def crosses_rack(self, src: NetNode, dst: NetNode) -> bool:
        """True when traffic between the endpoints leaves a rack (always
        False on flat/one-rack topologies)."""
        return (src is not dst and src.host is not dst.host
                and src.host.rack is not None
                and src.host.rack is not dst.host.rack)

    # -- transfers ------------------------------------------------------------
    def transfer(self, src: NetNode, dst: NetNode, nbytes: float,
                 name: str = "xfer", cap: Optional[float] = None) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; returns a completion event.

        The event's value is the elapsed transfer time in seconds.  Loopback
        transfers cost nothing but still count toward the endpoints' byte
        counters.
        """
        if nbytes < 0:
            raise SimulationError(f"cannot transfer {nbytes} bytes")
        return self.sim.process(self._transfer_proc(src, dst, nbytes, name, cap),
                                name=f"net:{name}")

    def _transfer_proc(self, src: NetNode, dst: NetNode, nbytes: float,
                       name: str, cap: Optional[float]):
        started = self.sim.now
        path, latency = self.path(src, dst)
        self.tracer.emit(started, EV.NET_TRANSFER_START, name,
                         src=src.name, dst=dst.name, bytes=nbytes,
                         cross_domain=self.crosses_physical_nic(src, dst))
        flow = None
        moved = nbytes
        try:
            if latency > 0:
                yield self.sim.timeout(latency)
            if path and nbytes > 0:
                flow = self.fss.open(path, size=float(nbytes), cap=cap,
                                     name=name)
                yield flow.done
        except Interrupt:
            # The transfer's owner was preempted: tear the stream down and
            # account only the bytes that made it across.
            moved = self.fss.close(flow) if flow is not None and flow.active \
                else 0.0
        src.tx_bytes += moved
        dst.rx_bytes += moved
        elapsed = self.sim.now - started
        self.tracer.emit(self.sim.now, EV.NET_TRANSFER_END, name,
                         src=src.name, dst=dst.name, bytes=moved,
                         elapsed=elapsed)
        return elapsed

    def open_stream(self, src: NetNode, dst: NetNode,
                    name: str = "stream",
                    cap: Optional[float] = None) -> Optional[FluidFlow]:
        """Open an open-ended background flow (e.g. a migration stream's
        contention placeholder); ``None`` for loopback.  Close with
        :meth:`close_stream`."""
        path, _latency = self.path(src, dst)
        if not path:
            return None
        return self.fss.open(path, size=math.inf, cap=cap, name=name)

    def close_stream(self, flow: Optional[FluidFlow]) -> float:
        """Close a background flow; returns bytes moved (0 for loopback)."""
        if flow is None:
            return 0.0
        return self.fss.close(flow)
