"""Network substrate: topology plus fluid transfers.

The paper's testbed has two physical machines on gigabit Ethernet, VMs
attached to a Xen software bridge per host, and an NFS server holding the VM
images.  :mod:`repro.net.topology` models hosts (NIC + bridge) and attached
endpoints; :mod:`repro.net.transfer` turns byte counts into fluid flows over
the right resource path — which is how "cross-domain" clusters become slower
than "normal" ones: their traffic crosses the shared physical NICs instead
of the fast intra-host bridge.
"""

from repro.net.topology import HostNet, NetNode, NetworkFabric, RackNet

__all__ = ["HostNet", "NetNode", "NetworkFabric", "RackNet"]
