"""Units and platform-wide default constants.

All simulated quantities use SI base units internally:

* time     — seconds (``float``)
* data     — bytes (``int`` or ``float``; fluid flows use floats)
* rate     — bytes per second
* compute  — core-seconds of work ("work units"); a VCPU running alone on a
  free physical core retires 1.0 work unit per simulated second.

The constants below are the calibration points of the simulator.  They are
chosen to mirror the paper's testbed (Dell T710: 2x quad-core Xeon E5620,
32 GiB DRAM, gigabit Ethernet, NFS-backed VM images) so that the *shapes* of
the measured curves match the paper; absolute values are not expected to.
"""

from __future__ import annotations

# --- data sizes -------------------------------------------------------------
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB

#: Size of a guest memory page (bytes); Xen on x86 uses 4 KiB pages.
PAGE_SIZE: int = 4 * KiB

# --- network ----------------------------------------------------------------
#: Physical NIC bandwidth: gigabit Ethernet (bytes/second).
GBIT_ETHERNET_BPS: float = 125e6
#: Intra-host software bridge bandwidth between co-located VMs.  Xen 3.x
#: guest-to-guest loopback runs at a few Gbit/s (CPU-bound page flipping) —
#: well above the wire but far below memory bandwidth.
VIRTUAL_BRIDGE_BPS: float = 400e6
#: Per-host Xen netback/netfront processing ceiling for *guest* traffic
#: that crosses the physical NIC.  Xen 3.x PV guests sustain roughly
#: 400 Mbit/s of external traffic per host before dom0 saturates
#: (Cherkasova & Gardner; Menon et al.) — this, not the wire, is what makes
#: cross-domain clusters slow.
XEN_NETBACK_BPS: float = 40e6
#: One-way latency charged per network transfer (seconds).
LAN_LATENCY_S: float = 0.3e-3
BRIDGE_LATENCY_S: float = 0.05e-3
#: Top-of-rack switch backplane bandwidth shared by a rack's hosts
#: (bytes/second).  Gigabit-era ToR switches carry ~20 Gbit/s of
#: aggregate traffic — far above one NIC, so intra-rack paths only
#: contend here when many host pairs talk at once.
TOR_SWITCH_BPS: float = 2.5e9
#: Uplink from each ToR switch into the aggregation/core tier.  Real
#: clusters oversubscribe this link (Barroso's 4:1–10:1), which is what
#: makes off-rack traffic expensive and rack-aware placement matter.
AGG_UPLINK_BPS: float = 1.25e9
#: Extra one-way latency for paths that traverse the aggregation tier.
AGG_LATENCY_S: float = 0.5e-3

# --- disk and NFS -----------------------------------------------------------
#: Local (virtual) disk streaming bandwidth per physical machine.
DISK_BPS: float = 90e6
#: Aggregate bandwidth of the shared NFS server storing the VM images.
NFS_BPS: float = 70e6
#: Fraction of virtual-disk I/O absorbed by the guest page cache /
#: write-back cache before it ever reaches the NFS back-end.
DISK_CACHE_HIT_RATIO: float = 0.65
#: Service rate of cache-absorbed disk I/O (memory copies).
PAGE_CACHE_BPS: float = 1.2e9

# --- physical machine (Dell T710 stand-in) ----------------------------------
#: 2x quad-core Xeon E5620 with HyperThreading = 16 hardware threads; the
#: paper's 16 single-VCPU VMs on one host are therefore not oversubscribed.
DEFAULT_HOST_CORES: int = 16
DEFAULT_HOST_DRAM: int = 32 * GiB

# --- virtual machine --------------------------------------------------------
DEFAULT_VM_VCPUS: int = 1
DEFAULT_VM_MEMORY: int = 1024 * MiB

# --- live migration (Xen pre-copy defaults) ---------------------------------
#: Stop-and-copy is triggered once the remaining dirty set is this small.
MIGRATION_STOP_THRESHOLD: int = 256 * KiB
#: ... or after this many pre-copy rounds.
MIGRATION_MAX_ROUNDS: int = 30
#: Fixed end-of-migration overhead included in downtime (device re-attach,
#: gratuitous ARP, resume), seconds.
MIGRATION_RESUME_OVERHEAD_S: float = 0.012
#: Time to set up a migration connection before the first round, seconds.
MIGRATION_SETUP_S: float = 0.8
#: Fixed per-pre-copy-round cost (dirty bitmap scan, control RPCs), seconds.
MIGRATION_ROUND_OVERHEAD_S: float = 0.08
#: Xen's pre-copy send budget: give up once total bytes sent would exceed
#: this multiple of guest memory.
MIGRATION_SEND_BUDGET_FACTOR: float = 3.0

# --- Hadoop defaults (mirroring hadoop-0.20 defaults used in the paper) -----
DEFAULT_DFS_REPLICATION: int = 2
DEFAULT_DFS_BLOCK_SIZE: int = 64 * MiB
DEFAULT_MAP_SLOTS: int = 2
DEFAULT_REDUCE_SLOTS: int = 2
#: Per-task fixed startup cost (JVM launch + task setup), seconds.
TASK_STARTUP_S: float = 1.4
#: Per-job fixed overhead (submission, initialization, cleanup), seconds.
JOB_OVERHEAD_S: float = 3.0
#: Heartbeat interval between TaskTracker and JobTracker, seconds.
#: hadoop-0.20 floors the heartbeat at 3 s for small clusters; task
#: assignment latency is uniform in [0, HEARTBEAT_S).
HEARTBEAT_S: float = 2.0
#: Fixed cost of one shuffle fetch (HTTP connection + servlet), seconds.
SHUFFLE_FETCH_OVERHEAD_S: float = 0.15

# --- MapReduce cost model ---------------------------------------------------
#: CPU work per input byte for a "typical" map function (core-seconds/byte).
#: Calibrated so that a 64 MiB split of text maps in roughly 10 s on a free
#: core, matching hadoop-0.20-era throughput on the paper's Xeon E5620.
MAP_CPU_PER_BYTE: float = 1.5e-7
REDUCE_CPU_PER_BYTE: float = 1.2e-7
#: Extra CPU work per record for sort/merge on the reduce side.
SORT_CPU_PER_RECORD: float = 2.0e-6

__all__ = [name for name in dir() if name[0].isupper()]
