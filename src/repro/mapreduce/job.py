"""Job specification.

A :class:`Job` bundles everything the engine needs: input/output paths,
factories for the mapper/combiner/reducer (fresh instance per task, as in
Hadoop), the partitioner, the reduce count, serialized-size estimators, and
the per-job CPU cost coefficients that calibrate how expensive this job's
user code is per byte/record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro import constants as C
from repro.errors import JobConfigError
from repro.hdfs.client import default_sizeof
from repro.mapreduce.api import HashPartitioner, Mapper, Partitioner, Reducer

MapperFactory = Callable[[], Mapper]
ReducerFactory = Callable[[], Reducer]
SizeOf = Callable[[Any], int]


@dataclass
class Job:
    """One MapReduce job."""

    name: str
    input_paths: Sequence[str]
    output_path: str
    mapper: MapperFactory
    reducer: Optional[ReducerFactory] = None
    combiner: Optional[ReducerFactory] = None
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    n_reduces: int = 1
    #: Force the number of map tasks regardless of block count (MRBench's
    #: ``-maps`` flag); None means one map per block, Hadoop's default.
    force_num_maps: Optional[int] = None
    #: Serialized size of one intermediate (key, value) pair.
    intermediate_sizeof: SizeOf = default_sizeof
    #: Serialized size of one final output record.
    output_sizeof: SizeOf = default_sizeof
    #: CPU cost coefficients (core-seconds); calibrate per workload.
    map_cpu_per_byte: float = C.MAP_CPU_PER_BYTE
    map_cpu_per_record: float = 0.0
    reduce_cpu_per_byte: float = C.REDUCE_CPU_PER_BYTE
    reduce_cpu_per_record: float = 0.0
    #: Replication of the job output (1 in Hadoop for intermediate chains).
    output_replication: Optional[int] = None
    #: Free-form parameters surfaced through ``context.config``.
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise JobConfigError("job needs a name")
        if not self.input_paths:
            raise JobConfigError(f"job {self.name!r}: no input paths")
        if not self.output_path:
            raise JobConfigError(f"job {self.name!r}: no output path")
        if self.mapper is None:
            raise JobConfigError(f"job {self.name!r}: no mapper")
        if self.n_reduces < 0:
            raise JobConfigError(f"job {self.name!r}: n_reduces must be >= 0")
        if self.n_reduces == 0 and self.reducer is not None:
            raise JobConfigError(
                f"job {self.name!r}: reducer given but n_reduces == 0")
        if self.force_num_maps is not None and self.force_num_maps < 1:
            raise JobConfigError(
                f"job {self.name!r}: force_num_maps must be >= 1")

    @property
    def map_only(self) -> bool:
        return self.n_reduces == 0
