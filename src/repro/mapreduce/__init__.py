"""MapReduce engine: a *functional* simulator of Hadoop's JobTracker /
TaskTracker MapReduce (hadoop-0.20 era, as used by the paper).

Jobs execute genuine ``map``/``combine``/``reduce`` functions over real
records — outputs are bit-for-bit what Hadoop would produce — while the
engine charges simulated time for every phase: task startup (the JVM-launch
stand-in), split reads with HDFS locality, CPU fair-shared through the
virtualization layer, the all-to-all shuffle over the network fabric, sort,
and replicated output writes.

The :class:`~repro.mapreduce.local.LocalJobRunner` executes the same job
purely functionally with no cluster; it is the reference implementation the
cluster runner is property-tested against.
"""

from repro.mapreduce.api import (Combiner, Context, HashPartitioner, Mapper,
                                 Partitioner, Reducer, stable_hash)
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import Job
from repro.mapreduce.local import LocalJobRunner
from repro.mapreduce.runner import JobReport, MapReduceRunner, TaskAttempt

__all__ = [
    "Combiner", "Context", "Counters", "HashPartitioner", "Job", "JobReport",
    "LocalJobRunner", "Mapper", "MapReduceRunner", "Partitioner", "Reducer",
    "TaskAttempt", "stable_hash",
]
