"""LocalJobRunner: the pure-functional reference implementation.

Runs a :class:`~repro.mapreduce.job.Job` with no cluster, no simulator and
no timing — just map, combine, partition, sort, reduce over in-memory
records.  The cluster runner is property-tested to produce byte-identical
output, which is what makes the timed simulation trustworthy as a
*functional* reproduction (DESIGN.md §5, decision 1).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.mapreduce.api import (Context, combine, group_by_key, run_mapper,
                                 run_reducer)
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import Job


class LocalJobRunner:
    """In-process runner over explicit input records."""

    def __init__(self) -> None:
        self.counters = Counters()

    def run(self, job: Job, records: Sequence[tuple[Any, Any]]
            ) -> list[tuple[Any, Any]]:
        """Execute ``job`` over ``records``; returns the final output pairs
        ordered by reduce partition then key (Hadoop's part-file order)."""
        self.counters = Counters()
        map_ctx = Context(task_id=f"{job.name}-local-map",
                          counters=self.counters, config=job.params)
        pairs = run_mapper(job.mapper(), records, map_ctx)
        self.counters.incr("job", "map_output_records", len(pairs))
        pairs = combine(job.combiner, pairs, map_ctx)

        if job.map_only:
            return pairs

        partitions: dict[int, list[tuple[Any, Any]]] = {
            p: [] for p in range(job.n_reduces)}
        for key, value in pairs:
            partitions[job.partitioner.partition(key, job.n_reduces)].append(
                (key, value))

        output: list[tuple[Any, Any]] = []
        for p in range(job.n_reduces):
            reduce_ctx = Context(task_id=f"{job.name}-local-reduce-{p}",
                                 counters=self.counters, config=job.params)
            grouped = group_by_key(partitions[p])
            output.extend(run_reducer(job.reducer(), grouped, reduce_ctx))
        self.counters.incr("job", "reduce_output_records", len(output))
        return output
