"""User-facing MapReduce programming API (Mapper/Reducer/Partitioner).

Mirrors the classic Hadoop API: a :class:`Mapper` turns one input record
into zero or more ``(key, value)`` pairs through ``context.emit``; a
:class:`Reducer` folds all values of one key.  A :class:`Combiner` is a
Reducer run on map-side output.  Instances are created fresh per task by
the factories a :class:`~repro.mapreduce.job.Job` carries, so mapper state
(e.g. cluster centers) is task-local exactly as in Hadoop.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Any, Callable, Iterable, Optional

from repro.mapreduce.counters import Counters


def stable_hash(obj: Any) -> int:
    """Deterministic non-negative hash (Python's ``hash`` is salted per
    process, which would make partitioning non-reproducible)."""
    if isinstance(obj, bytes):
        data = obj
    elif isinstance(obj, str):
        data = obj.encode("utf-8", "surrogatepass")
    elif isinstance(obj, int):
        data = obj.to_bytes((obj.bit_length() + 8) // 8 + 1, "little",
                            signed=True)
    else:
        data = repr(obj).encode("utf-8", "surrogatepass")
    return zlib.crc32(data) & 0x7FFFFFFF


class Context:
    """Collects a task's emitted pairs and exposes counters/config."""

    __slots__ = ("_out", "counters", "task_id", "config")

    def __init__(self, task_id: str = "task", counters: Optional[Counters] = None,
                 config: Optional[dict] = None):
        self._out: list[tuple[Any, Any]] = []
        self.counters = counters if counters is not None else Counters()
        self.task_id = task_id
        self.config = config or {}

    def emit(self, key: Any, value: Any) -> None:
        self._out.append((key, value))

    # Hadoop spelling.
    write = emit

    def drain(self) -> list[tuple[Any, Any]]:
        out, self._out = self._out, []
        return out

    @property
    def output(self) -> list[tuple[Any, Any]]:
        return self._out


class Mapper:
    """Override :meth:`map`; ``setup``/``cleanup`` run once per task."""

    def setup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass

    def map(self, key: Any, value: Any, context: Context) -> None:
        """Identity by default (Hadoop's default Mapper)."""
        context.emit(key, value)

    def cleanup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass


class Reducer:
    """Override :meth:`reduce`; receives each key with all of its values."""

    def setup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass

    def reduce(self, key: Any, values: Iterable[Any], context: Context) -> None:
        """Identity by default: re-emits every (key, value)."""
        for value in values:
            context.emit(key, value)

    def cleanup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass


#: A combiner is just a reducer applied to map output.
Combiner = Reducer


class Partitioner:
    """Maps a key to one of ``n`` reduce partitions."""

    def partition(self, key: Any, n_partitions: int) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Hadoop's default: ``stable_hash(key) % n``.

    Real workloads hash the same hot keys millions of times (every word of
    a corpus, every sample id), so results are memoised per instance.  A
    partitioner instance belongs to one :class:`~repro.mapreduce.job.Job`,
    which fixes ``n_partitions`` for its lifetime; the cache is dropped if
    a caller ever varies it.
    """

    _CACHE_LIMIT = 1 << 20

    def __init__(self) -> None:
        self._cache: dict[Any, int] = {}
        self._cache_n: Optional[int] = None

    def partition(self, key: Any, n_partitions: int) -> int:
        cache = self._cache
        if n_partitions != self._cache_n:
            if cache:
                cache.clear()
            self._cache_n = n_partitions
        try:
            index = cache.get(key)
        except TypeError:  # unhashable key: compute without memoisation
            return stable_hash(key) % n_partitions
        if index is None:
            index = stable_hash(key) % n_partitions
            if len(cache) < self._CACHE_LIMIT:
                cache[key] = index
        return index


class RangePartitioner(Partitioner):
    """Splits an ordered key space by precomputed boundaries (TeraSort).

    ``boundaries`` must ascend (as :func:`sample_boundaries` produces);
    partitioning is then a binary search instead of a linear boundary walk.
    """

    def __init__(self, boundaries: list):
        #: ``boundaries[i]`` is the smallest key of partition ``i+1``.
        self.boundaries = list(boundaries)

    def partition(self, key: Any, n_partitions: int) -> int:
        # A key equal to a boundary belongs to the partition on the right,
        # which is exactly bisect_right's tie rule.
        boundaries = self.boundaries
        return bisect_right(boundaries, key, 0,
                            min(n_partitions - 1, len(boundaries)))


def run_mapper(mapper: Mapper, records: Iterable[tuple[Any, Any]],
               context: Context) -> list[tuple[Any, Any]]:
    """Execute one mapper over ``(key, value)`` records; returns the pairs."""
    mapper.setup(context)
    for key, value in records:
        mapper.map(key, value, context)
    mapper.cleanup(context)
    return context.drain()


def group_by_key(pairs: Iterable[tuple[Any, Any]]) -> list[tuple[Any, list]]:
    """Sort-and-group, as the reduce-side merge does.

    Keys are ordered by ``(type name, value)`` so heterogeneous keys never
    raise ``TypeError`` and the order is deterministic.
    """
    groups: dict[Any, list] = {}
    get = groups.get
    for key, value in pairs:
        bucket = get(key)
        if bucket is None:
            groups[key] = [value]
        else:
            bucket.append(value)
    def order(item):
        key = item[0]
        return (type(key).__name__, repr(key)) if not isinstance(
            key, (int, float, str, bytes, tuple)) else (type(key).__name__, key)
    return sorted(groups.items(), key=order)


def run_reducer(reducer: Reducer, grouped: Iterable[tuple[Any, list]],
                context: Context) -> list[tuple[Any, Any]]:
    """Execute one reducer over grouped pairs; returns the output pairs."""
    reducer.setup(context)
    for key, values in grouped:
        reducer.reduce(key, values, context)
    reducer.cleanup(context)
    return context.drain()


def combine(combiner_factory: Optional[Callable[[], Reducer]],
            pairs: list[tuple[Any, Any]], context: Context
            ) -> list[tuple[Any, Any]]:
    """Apply a combiner to map output (no-op when factory is None)."""
    if combiner_factory is None or not pairs:
        return pairs
    return run_reducer(combiner_factory(), group_by_key(pairs), context)
