"""MapReduceRunner: the timed, cluster-bound job engine.

Execution model (hadoop-0.20, as the paper ran it):

* One slot-worker process per (TaskTracker, slot).  Workers pull tasks from
  the job's pending queue; map assignment is **locality-aware** (node-local
  replica > host-local replica > remote), which is Hadoop's scheduler
  behaviour and one of DESIGN.md's ablation points.
* Every assignment pays a heartbeat latency (tasks are handed out on
  TaskTracker heartbeats) drawn uniformly from ``[0, heartbeat_s)``, plus a
  fixed startup cost (the JVM launch).  These two constants produce the
  MRBench shape of Fig. 3 — tiny jobs get slower as task counts grow.
* A map task reads its split (disk at the replica holder + a network hop if
  remote), charges CPU through the virtualization layer, runs the *real*
  mapper (and combiner), partitions the output, and spills it to the local
  virtual disk (= NFS, per the paper's image layout).
* After the map phase, reduce tasks shuffle their partition from every map
  VM (at most ``shuffle_parallel_copies`` concurrent fetches), charge the
  sort/merge cost, run the *real* reducer, and write replicated output to
  HDFS.

The report records per-task attempts and per-phase spans; the functional
output is bit-identical to :class:`~repro.mapreduce.local.LocalJobRunner`
(tested property).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

from repro import constants as C
from repro.errors import JobConfigError, TaskFailure, VMStateError
from repro.hdfs.datanode import DataNode
from repro.mapreduce.api import (Context, Reducer, combine, group_by_key,
                                 run_mapper, run_reducer)
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import Job
from repro.sim import Resource
from repro.sim.kernel import AllOf, AnyOf, Event, Interrupt, Process
from repro.sim.trace import Span
from repro.telemetry import events as EV
from repro.virt.vm import VMState

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import HadoopVirtualCluster, TaskTracker


def _cancel_wait(event: Event, cause: str = "aborted") -> None:
    """Interrupt the live process(es) behind an abandoned wait."""
    if isinstance(event, Process):
        if event.is_alive:
            event.interrupt(cause)
    elif isinstance(event, (AllOf, AnyOf)):
        for child in event.events:
            if isinstance(child, Process) and child.is_alive:
                child.interrupt(cause)


def _drive_racing(sim, gen, stop: Event, abortable=None):
    """Run task generator ``gen``, racing every wait against ``stop``.

    Returns ``(result, stopped)``.  When ``stop`` fires first the generator
    is closed and any live sub-processes it was waiting on are interrupted;
    the virt/net layers cancel their flows and bill only the work actually
    done.  ``abortable`` (when given) is consulted at the moment ``stop``
    fires: returning False makes the attempt uninterruptible from then on —
    used by reduces that already hold the output-commit token, which must
    run to completion so the commit protocol stays single-writer.
    """
    def may_abort() -> bool:
        return abortable is None or abortable()

    try:
        target = next(gen)
    except StopIteration as stop_iter:
        return stop_iter.value, False
    while True:
        if stop.triggered:
            if may_abort():
                gen.close()
                _cancel_wait(target)
                return None, True
            yield target
        else:
            yield sim.any_of([target, stop])
            if stop.triggered and not target.triggered:
                if may_abort():
                    gen.close()
                    _cancel_wait(target)
                    return None, True
                yield target
        try:
            target = gen.send(target.value)
        except StopIteration as stop_iter:
            return stop_iter.value, False


@dataclass
class _MapSpec:
    """One map task: real records plus the datanodes holding them."""

    index: int
    records: tuple
    nbytes: float
    holders: tuple[DataNode, ...]

    @property
    def task_id(self) -> str:
        return f"m-{self.index:05d}"


@dataclass
class _MapOutput:
    """Where a finished map left its partitioned intermediate data."""

    spec: _MapSpec
    tracker: "TaskTracker"
    partitions: dict[int, list]          # partition -> [(k, v)]
    partition_bytes: dict[int, float]
    #: Back-references used by shuffle-time map recovery.
    job: "Job" = None
    report: "JobReport" = None


@dataclass(frozen=True)
class TaskAttempt:
    """Timing record of one executed task."""

    task_id: str
    kind: str                # "map" | "reduce"
    tracker: str
    start: float
    end: float
    input_bytes: float
    output_bytes: float
    locality: str            # "node" | "host" | "remote" | "-"

    @property
    def elapsed(self) -> float:
        return self.end - self.start


@dataclass
class JobReport:
    """Everything measured about one job run."""

    job_name: str
    submitted_at: float
    finished_at: float = 0.0
    map_phase_end: float = 0.0
    n_maps: int = 0
    n_reduces: int = 0
    input_bytes: float = 0.0
    shuffle_bytes: float = 0.0
    output_bytes: float = 0.0
    output_paths: list[str] = field(default_factory=list)
    tasks: list[TaskAttempt] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    #: Scheduler accounting (filled by the slot workers / repro.scheduler).
    pool: str = "default"
    first_task_at: Optional[float] = None
    slot_seconds: float = 0.0
    preempted_tasks: int = 0
    speculated_maps: int = 0
    speculated_reduces: int = 0

    @property
    def elapsed(self) -> float:
        """Total job runtime in simulated seconds — the paper's y-axis."""
        return self.finished_at - self.submitted_at

    @property
    def wait_s(self) -> float:
        """Submission-to-first-task latency (scheduling + localization)."""
        if self.first_task_at is None:
            return 0.0
        return self.first_task_at - self.submitted_at

    @property
    def map_phase_s(self) -> float:
        return self.map_phase_end - self.submitted_at

    @property
    def reduce_phase_s(self) -> float:
        return self.finished_at - self.map_phase_end

    def locality_fractions(self) -> dict[str, float]:
        maps = [t for t in self.tasks if t.kind == "map"]
        if not maps:
            return {}
        out: dict[str, float] = {}
        for t in maps:
            out[t.locality] = out.get(t.locality, 0.0) + 1.0 / len(maps)
        return out


class MapReduceRunner:
    """Job engine bound to one :class:`HadoopVirtualCluster`."""

    #: Heartbeats a requeued task waits through a total tracker outage
    #: before the job is declared dead (recovery rejoins usually land
    #: within a fault's duration; the cap keeps dead clusters finite).
    MAX_TRACKER_WAITS = 600

    def __init__(self, cluster: "HadoopVirtualCluster"):
        self.cluster = cluster
        self.sim = cluster.sim
        self.tracer = cluster.tracer
        self.metrics = cluster.telemetry.metrics
        self._rng = cluster.datacenter.rng.stream(
            f"mapreduce/heartbeat/{cluster.name}")
        #: (job name, tracker name) -> task failures charged to the tracker.
        self._tracker_failures: dict[tuple[str, str], int] = {}
        #: Per-job blacklist: trackers that failed too many of its tasks.
        self._blacklist: set[tuple[str, str]] = set()

    # -- public ------------------------------------------------------------
    def submit(self, job: Job) -> Event:
        """Run ``job``; the event's value is its :class:`JobReport`."""
        return self.sim.process(self._job_proc(job), name=f"job:{job.name}")

    def run_to_completion(self, job: Job) -> JobReport:
        """Submit and drive the simulator until the job finishes."""
        event = self.submit(job)
        self.sim.run_until(event)
        return event.value

    def read_output(self, report: JobReport) -> list[tuple[Any, Any]]:
        """Concatenated output records of a finished job (control-plane
        peek; charges no simulated time)."""
        out: list[tuple[Any, Any]] = []
        # Part-file name order == partition order (output_paths itself
        # lists them in completion order, which scheduling perturbs).
        for path in sorted(report.output_paths):
            out.extend(self.cluster.dfs.peek_records(path))
        return out

    # -- job orchestration -------------------------------------------------
    def _job_proc(self, job: Job):
        config = self.cluster.config
        report = JobReport(job_name=job.name, submitted_at=self.sim.now,
                           n_reduces=job.n_reduces)
        self.tracer.emit(self.sim.now, EV.JOB_SUBMIT, job.name,
                         n_reduces=job.n_reduces)
        job_span = self.tracer.begin_span(self.sim.now, EV.JOB_RUN, job.name,
                                          n_reduces=job.n_reduces)
        yield self.sim.timeout(config.job_overhead_s / 2)
        yield from self._localize(job)

        specs = self._make_map_specs(job)
        report.n_maps = len(specs)
        report.input_bytes = sum(s.nbytes for s in specs)

        map_span = self.tracer.begin_span(self.sim.now, EV.PHASE_MAP,
                                          job.name, parent=job_span,
                                          n_maps=len(specs))
        map_outputs: list[_MapOutput] = yield self.sim.process(
            self._map_phase(job, specs, report, map_span),
            name=f"{job.name}:maps")
        report.map_phase_end = self.sim.now
        self.tracer.end_span(map_span, self.sim.now)
        self.tracer.emit(self.sim.now, EV.JOB_MAPS_DONE, job.name,
                         n_maps=len(specs))

        if job.map_only:
            yield from self._write_map_only_output(job, map_outputs, report)
        else:
            reduce_span = self.tracer.begin_span(
                self.sim.now, EV.PHASE_REDUCE, job.name, parent=job_span,
                n_reduces=job.n_reduces)
            yield self.sim.process(
                self._reduce_phase(job, map_outputs, report, reduce_span),
                name=f"{job.name}:reduces")
            self.tracer.end_span(reduce_span, self.sim.now)

        yield self.sim.timeout(config.job_overhead_s / 2)
        report.finished_at = self.sim.now
        self.tracer.end_span(job_span, self.sim.now, elapsed=report.elapsed)
        self.tracer.emit(self.sim.now, EV.JOB_DONE, job.name,
                         elapsed=report.elapsed)
        self._record_job_metrics(job, report)
        return report

    def _record_job_metrics(self, job: Job, report: JobReport) -> None:
        labels = {"job": job.name}
        m = self.metrics
        m.counter("mapreduce.jobs.completed", "finished jobs").inc()
        m.histogram("mapreduce.job.duration",
                    "job makespan in simulated seconds",
                    labels).observe(report.elapsed)
        m.counter("mapreduce.input.bytes", "bytes read by map tasks",
                  labels).inc(report.input_bytes)
        m.counter("mapreduce.shuffle.bytes", "bytes moved map -> reduce",
                  labels).inc(report.shuffle_bytes)
        m.counter("mapreduce.output.bytes", "bytes written by reduces",
                  labels).inc(report.output_bytes)

    # -- failure handling ---------------------------------------------------
    @staticmethod
    def _vm_live(vm) -> bool:
        return vm.state in (VMState.RUNNING, VMState.MIGRATING)

    def _live_trackers(self) -> list:
        return [t for t in self.cluster.trackers if self._vm_live(t.vm)]

    def _is_blacklisted(self, job: Job, tracker: "TaskTracker") -> bool:
        return (job.name, tracker.name) in self._blacklist

    def _record_tracker_failure(self, job: Job,
                                tracker: "TaskTracker") -> None:
        key = (job.name, tracker.name)
        n = self._tracker_failures.get(key, 0) + 1
        self._tracker_failures[key] = n
        limit = self.cluster.config.tracker_blacklist_failures
        if n >= limit and key not in self._blacklist:
            self._blacklist.add(key)
            self.tracer.emit(self.sim.now, EV.RECOVERY_TRACKER_BLACKLISTED,
                             tracker.name, job=job.name, failures=n)
            self.metrics.counter(
                "recovery.trackers.blacklisted",
                "trackers blacklisted after repeated task failures",
                {"job": job.name}).inc()

    def _retry_backoff(self, attempts: int) -> float:
        """Capped exponential backoff before re-queueing attempt ``n``."""
        config = self.cluster.config
        return min(config.retry_backoff_s * (2 ** max(0, attempts - 1)),
                   config.retry_backoff_cap_s)

    def _handle_task_failure(self, job: Job, kind: str, state: dict, item,
                             task_id: str, speculative: bool,
                             tracker: "TaskTracker", report: "JobReport",
                             remaining: dict, all_done: Event, cause,
                             on_requeue=None) -> None:
        """Account one failed/aborted task attempt and requeue it.

        The task re-enters the pending queue after a capped exponential
        backoff; ``state["retrying"]`` holds the phase open meanwhile so
        idle workers don't conclude the job is drained.  When the attempt
        budget (``max_task_retries``) is exhausted — or no live tracker
        remains — the phase's ``all_done`` event *fails*, failing the job.
        """
        self._record_tracker_failure(job, tracker)
        index = item.index if kind == "map" else item
        if speculative:
            # The original attempt is still running; just allow a fresh
            # backup to launch later.
            state["duplicated"].discard(index)
            return
        if index in state["finished"]:
            return
        state["running"].pop(index, None)
        attempts = state["attempts"].get(index, 0) + 1
        state["attempts"][index] = attempts
        config = self.cluster.config
        if attempts > config.max_task_retries:
            if not all_done.triggered:
                all_done.fail(TaskFailure(task_id, cause))
            return
        delay = self._retry_backoff(attempts)
        self.tracer.emit(self.sim.now, EV.RECOVERY_TASK_RETRY, task_id,
                         job=job.name, attempt=attempts,
                         tracker=tracker.name, backoff_s=delay,
                         cause=str(cause))
        self.metrics.counter("recovery.task.retries",
                             "task attempts requeued after a failure",
                             {"phase": kind, "job": job.name}).inc()
        state["retrying"]["n"] += 1
        self.sim.process(
            self._requeue_proc(job, kind, state, item, delay, all_done,
                               on_requeue),
            name=f"{job.name}:retry:{task_id}")

    def _requeue_proc(self, job: Job, kind: str, state: dict, item,
                      delay: float, all_done: Event, on_requeue,
                      parked: int = 0):
        if delay > 0:
            yield self.sim.timeout(delay)
        state["retrying"]["n"] -= 1
        if all_done.triggered:
            return
        live = self._live_trackers()
        usable = [t for t in live
                  if not self._is_blacklisted(job, t)] or live
        if not usable:
            task_id = item.task_id if kind == "map" else f"r-{item:05d}"
            if parked >= self.MAX_TRACKER_WAITS:
                all_done.fail(TaskFailure(task_id, "no live trackers left"))
                return
            # A transient total tracker outage (say, the lone worker host
            # crashed with a rejoin already scheduled) must not kill the
            # job: park for a heartbeat and look again.  The wait is
            # bounded so a cluster that never recovers still terminates.
            state["retrying"]["n"] += 1
            self.sim.process(
                self._requeue_proc(job, kind, state, item,
                                   self.cluster.config.heartbeat_s,
                                   all_done, on_requeue, parked + 1),
                name=f"{job.name}:park:{task_id}")
            return
        if kind == "map":
            # Refresh the replica holders: a retried attempt must not try
            # to read its split from a datanode that died meanwhile.
            live_holders = tuple(
                dn for dn in item.holders
                if dn in self.cluster.namenode.datanodes
                and self._vm_live(dn.vm))
            state["pending"].insert(0, _MapSpec(item.index, item.records,
                                                item.nbytes, live_holders))
        else:
            state["pending"].insert(0, item)
        if on_requeue is not None:
            on_requeue()

    def _localize(self, job: Job):
        """Job localization: every TaskTracker pulls job.jar + config from
        the JobTracker/HDFS before it can run a task of this job.  The
        aggregate volume grows linearly with cluster size, which is what
        makes small jobs slower on larger virtual clusters (Fig. 6).
        """
        config = self.cluster.config
        if config.job_localization_bytes <= 0:
            return
        fabric = self.cluster.datacenter.fabric
        master = self.cluster.master
        pulls = []
        for tracker in self._live_trackers():
            pulls.append(fabric.transfer(
                master.node, tracker.vm.node,
                config.job_localization_bytes,
                name=f"{job.name}:localize:{tracker.name}"))
            pulls.append(tracker.vm.disk_io(
                config.job_localization_bytes,
                name=f"{job.name}:localize"))
        yield self.sim.all_of(pulls)

    # -- splits --------------------------------------------------------------
    def _make_map_specs(self, job: Job) -> list[_MapSpec]:
        namenode = self.cluster.namenode
        blocks = []
        for path in job.input_paths:
            # Hadoop semantics: an input path may be a file or a directory
            # of part files (a previous job's output).
            if namenode.exists(path):
                blocks.extend(namenode.get_file(path).blocks)
            else:
                children = namenode.list_files(prefix=path.rstrip("/") + "/")
                if not children:
                    raise JobConfigError(
                        f"job {job.name!r}: input {path!r} not found")
                for child in children:
                    blocks.extend(namenode.get_file(child).blocks)
        if not blocks:
            # Existing-but-empty input: a zero-map job that succeeds with
            # empty output (Hadoop's behaviour for empty input dirs).
            return []

        if job.force_num_maps is None:
            specs = []
            for i, block in enumerate(blocks):
                holders = tuple(namenode.replicas.get(block.block_id, ()))
                payload = namenode.block_store.get(block)
                specs.append(_MapSpec(i, payload, float(block.size), holders))
            return specs

        # MRBench-style forced map count: repack all records into n groups;
        # each group inherits the replica holders of its dominant block.
        n = job.force_num_maps
        all_records: list = []
        record_home: list[int] = []
        for bi, block in enumerate(blocks):
            payload = namenode.block_store.get(block)
            all_records.extend(payload)
            record_home.extend([bi] * len(payload))
        total_bytes = float(sum(b.size for b in blocks))
        if not all_records:
            raise JobConfigError(f"job {job.name!r}: empty input")
        specs = []
        chunk = -(-len(all_records) // n)
        for i in range(n):
            lo, hi = i * chunk, min((i + 1) * chunk, len(all_records))
            group = tuple(all_records[lo:hi])
            if lo >= len(all_records):
                group = ()
            home_block = blocks[record_home[lo]] if lo < len(all_records) \
                else blocks[0]
            holders = tuple(self.cluster.namenode.replicas.get(
                home_block.block_id, ()))
            nbytes = total_bytes * (len(group) / len(all_records))
            specs.append(_MapSpec(i, group, nbytes, holders))
        return specs

    # -- map phase --------------------------------------------------------------
    def _map_phase(self, job: Job, specs: list[_MapSpec], report: JobReport,
                   phase_span: Optional[Span] = None):
        # Shared phase state: the task queue plus what speculation needs —
        # which tasks are running (and since when), which have finished,
        # which already have a backup attempt, and completed durations.
        state = {
            "pending": list(specs),
            "running": {},        # spec.index -> (start_time, spec)
            "finished": set(),    # spec.index
            "duplicated": set(),  # spec.index with a backup launched
            "durations": [],      # completed map durations
            "span": phase_span,   # parent for task-attempt spans
            "retrying": {"n": 0},  # failed attempts awaiting their backoff
            "attempts": {},       # spec.index -> failed attempt count
        }
        outputs: list[_MapOutput] = []
        # The phase ends when every *task* has finished — idle trackers
        # still napping between heartbeats must not hold the job open.
        all_done = self.sim.event()
        remaining = {"n": len(specs)}
        if remaining["n"] == 0:
            all_done.succeed(None)

        def spawn(trackers):
            for tracker in trackers:
                for slot in range(tracker.map_slots.capacity):
                    self.sim.process(
                        self._map_worker(job, tracker, state, outputs,
                                         report, remaining, all_done,
                                         on_requeue=respawn),
                        name=f"{job.name}:mapworker:{tracker.name}:{slot}")

        def respawn():
            # A requeued task may find every original worker exited (they
            # leave when the queue drains); restaff the live trackers.
            spawn(t for t in self._live_trackers()
                  if not self._is_blacklisted(job, t))

        spawn(self.cluster.trackers)
        yield all_done
        outputs.sort(key=lambda o: o.spec.index)
        return outputs

    def _pick_speculative(self, state: dict, report: JobReport,
                          kind: str = "map"):
        """The longest-running straggler eligible for a backup attempt.

        Works for both phases: map ``state["running"]`` holds
        ``index -> (start, _MapSpec)``, reduce holds
        ``partition -> (start, partition)``.
        """
        config = self.cluster.config
        if not config.speculative_execution or not state["durations"]:
            return None
        mean = sum(state["durations"]) / len(state["durations"])
        threshold = config.speculative_slowdown * mean
        now = self.sim.now
        candidates = [
            (now - start, index, item)
            for index, (start, item) in state["running"].items()
            if index not in state["finished"]
            and index not in state["duplicated"]
            and (now - start) > threshold]
        if not candidates:
            return None
        _age, index, item = max(candidates, key=lambda trip: trip[0])
        state["duplicated"].add(index)
        if kind == "map":
            task_id = item.task_id
            report.speculated_maps += 1
            speculate_kind = EV.TASK_MAP_SPECULATE
        else:
            task_id = f"r-{index:05d}"
            report.speculated_reduces += 1
            speculate_kind = EV.TASK_REDUCE_SPECULATE
        self.tracer.emit(now, speculate_kind, task_id)
        self.metrics.counter(
            "mapreduce.tasks.speculated",
            "backup attempts launched for straggler tasks",
            {"phase": kind, "job": report.job_name}).inc()
        return item

    def _count_speculation_win(self, job: Job, kind: str,
                               speculative: bool) -> None:
        """Count a backup attempt that beat the original to the finish —
        the payoff side of the straggler counters."""
        if not speculative:
            return
        self.metrics.counter(
            "mapreduce.speculation.wins",
            "speculative attempts that finished before the original",
            {"phase": kind, "job": job.name}).inc()

    def _pick_map_task(self, tracker: "TaskTracker",
                       pending: list[_MapSpec]) -> tuple[Optional[_MapSpec], str]:
        """Locality-aware task selection for one tracker."""
        if not pending:
            return None, "-"
        if self.cluster.config.locality_aware:
            levels = (("node", self._is_node_local),
                      ("host", self._is_host_local))
            if self.cluster.multi_rack:
                # node > host > rack > off-rack: the rack tier only
                # exists on multi-rack topologies, so flat/one-rack runs
                # keep the exact pre-rack decision sequence.
                levels += (("rack", self._is_rack_local),)
            for level, match in levels:
                for spec in pending:
                    if match(tracker, spec):
                        pending.remove(spec)
                        return spec, level
            spec = pending.pop(0)
            return spec, "remote"
        spec = pending.pop(0)
        return spec, self._locality_of(tracker, spec)

    @staticmethod
    def _is_node_local(tracker: "TaskTracker", spec: _MapSpec) -> bool:
        return any(dn.vm is tracker.vm for dn in spec.holders)

    @staticmethod
    def _is_host_local(tracker: "TaskTracker", spec: _MapSpec) -> bool:
        return any(dn.vm.host is tracker.vm.host for dn in spec.holders)

    @staticmethod
    def _is_rack_local(tracker: "TaskTracker", spec: _MapSpec) -> bool:
        rack = tracker.vm.host.rack
        return rack is not None and any(dn.vm.host.rack is rack
                                        for dn in spec.holders)

    def _locality_of(self, tracker, spec) -> str:
        if self._is_node_local(tracker, spec):
            return "node"
        if self._is_host_local(tracker, spec):
            return "host"
        if self.cluster.multi_rack and self._is_rack_local(tracker, spec):
            return "rack"
        return "remote"

    def _map_worker(self, job: Job, tracker: "TaskTracker", state: dict,
                    outputs: list[_MapOutput], report: JobReport,
                    remaining: dict, all_done: Event, on_requeue=None):
        config = self.cluster.config
        pending = state["pending"]
        retrying = state["retrying"]
        while (pending or retrying["n"] > 0
               or (config.speculative_execution and remaining["n"] > 0)):
            if tracker.vm.state in (VMState.FAILED, VMState.STOPPED):
                break  # dead trackers take no more tasks (migration is
                       # transparent: MIGRATING VMs keep working)
            if self._is_blacklisted(job, tracker):
                break  # too many failures: this tracker sits the job out
            # Tasks are handed out on tracker heartbeats: whichever tracker
            # heartbeats next gets the work, so assignment order is random
            # across trackers (and the queue may drain while we wait).
            yield self.sim.timeout(
                float(self._rng.uniform(0.0, config.heartbeat_s)))
            spec, locality = self._pick_map_task(tracker, pending)
            speculative = False
            if spec is None:
                spec = self._pick_speculative(state, report, "map")
                if spec is None:
                    if remaining["n"] > 0 and (config.speculative_execution
                                               or retrying["n"] > 0):
                        continue  # keep heartbeating; stragglers or
                                  # requeued retries may appear
                    break
                speculative = True
                locality = self._locality_of(tracker, spec)
            yield tracker.map_slots.acquire()
            # A running task keeps the whole VM busy (JVM heap, buffers)
            # for its entire duration, not only during CPU bursts — this
            # drives the dirty-page rate seen by live migration.
            tracker.vm.activity += 1
            claimed = self.sim.now
            if report.first_task_at is None:
                report.first_task_at = claimed
            try:
                yield self.sim.timeout(config.task_startup_s)
                start = self.sim.now
                if not speculative:
                    state["running"][spec.index] = (start, spec)
                attempt_span = self.tracer.begin_span(
                    start, EV.TASK_MAP, spec.task_id, parent=state["span"],
                    tracker=tracker.name, locality=locality,
                    speculative=speculative, job=job.name)
                gen = self._run_map_task(job, tracker, spec, locality,
                                         report)
                failure = None
                try:
                    output, died = yield from _drive_racing(
                        self.sim, gen, tracker.vm.failure_event())
                    if died:
                        failure = VMStateError(
                            f"{tracker.name}: tracker died mid-attempt")
                except (VMStateError, TaskFailure) as exc:
                    output, failure = None, exc
                if failure is not None:
                    self.tracer.end_span(attempt_span, self.sim.now,
                                         failed=True)
                    self._handle_task_failure(
                        job, "map", state, spec, spec.task_id, speculative,
                        tracker, report, remaining, all_done, failure,
                        on_requeue=on_requeue)
                    continue
                self.tracer.end_span(attempt_span, self.sim.now,
                                     won=spec.index not in state["finished"])
                self.metrics.histogram(
                    "mapreduce.task.duration", "task attempt duration",
                    {"phase": "map", "job": job.name}).observe(
                        self.sim.now - start)
                if spec.index in state["finished"]:
                    continue  # the other attempt won the race
                self._count_speculation_win(job, "map", speculative)
                state["finished"].add(spec.index)
                state["running"].pop(spec.index, None)
                state["durations"].append(self.sim.now - start)
                outputs.append(output)
                spilled = sum(output.partition_bytes.values())
                report.tasks.append(TaskAttempt(
                    task_id=spec.task_id, kind="map", tracker=tracker.name,
                    start=start, end=self.sim.now, input_bytes=spec.nbytes,
                    output_bytes=spilled, locality=locality))
                self.tracer.emit(self.sim.now, EV.TASK_MAP_DONE,
                                 spec.task_id, tracker=tracker.name,
                                 locality=locality, speculative=speculative)
                remaining["n"] -= 1
                if remaining["n"] == 0 and not all_done.triggered:
                    all_done.succeed(None)
            finally:
                report.slot_seconds += self.sim.now - claimed
                tracker.vm.activity -= 1
                tracker.map_slots.release()
        return None

    def _run_map_task(self, job: Job, tracker: "TaskTracker", spec: _MapSpec,
                      locality: str, report: JobReport, count: bool = True):
        vm = tracker.vm
        # 1. read the split (from a still-live replica holder: a datanode
        # may have died since the specs were built).
        live_holders = tuple(dn for dn in spec.holders
                             if self._vm_live(dn.vm))
        if locality == "node" and any(dn.vm is vm for dn in live_holders):
            local = next(dn for dn in live_holders if dn.vm is vm)
            yield local.vm.disk_io(spec.nbytes, name=f"split:{spec.task_id}")
        elif live_holders:
            rack = vm.host.rack
            source = next(
                (dn for dn in live_holders if dn.vm.host is vm.host),
                next((dn for dn in live_holders
                      if rack is not None and dn.vm.host.rack is rack),
                     live_holders[0]))
            pending = [source.vm.disk_io(spec.nbytes,
                                         name=f"split:{spec.task_id}")]
            pending.append(self.cluster.datacenter.fabric.transfer(
                source.vm.node, vm.node, spec.nbytes,
                name=f"splitxfer:{spec.task_id}"))
            yield self.sim.all_of(pending)
        # 2. CPU.
        work = (job.map_cpu_per_byte * spec.nbytes
                + job.map_cpu_per_record * len(spec.records))
        if work > 0:
            yield vm.compute(work, name=f"map:{spec.task_id}")
        # 3. real map + combine (functional; cost already charged).
        ctx = Context(task_id=spec.task_id, config=job.params)
        try:
            pairs = run_mapper(job.mapper(), spec.records, ctx)
        except Exception as exc:
            raise TaskFailure(spec.task_id, exc) from exc
        n_mapped = len(pairs)
        if self.cluster.config.use_combiner:
            pairs = combine(job.combiner, pairs, ctx)
        # 4. partition + spill.
        n_parts = max(1, job.n_reduces)
        part = job.partitioner.partition
        buckets: list[list] = [[] for _ in range(n_parts)]
        for kv in pairs:
            buckets[part(kv[0], n_parts)].append(kv)
        partitions: dict[int, list] = dict(enumerate(buckets))
        sizeof = job.intermediate_sizeof
        partition_bytes = {
            p: float(sum(map(sizeof, rows)))
            for p, rows in partitions.items()}
        spill = sum(partition_bytes.values())
        if spill > 0 and not job.map_only:
            yield vm.disk_io(spill, name=f"spill:{spec.task_id}")
        # Counters land only when the attempt completes: a preempted or
        # superseded attempt must contribute nothing to the job totals.
        # ``count=False`` is the shuffle-recovery re-run, whose original
        # attempt already counted — it must not double-count either.
        if count:
            report.counters.merge(ctx.counters)
            report.counters.incr("job", "map_input_records",
                                 len(spec.records))
            report.counters.incr("job", "map_output_records", n_mapped)
        return _MapOutput(spec, tracker, partitions, partition_bytes,
                          job=job, report=report)

    # -- reduce phase --------------------------------------------------------
    def _reduce_phase(self, job: Job, map_outputs: list[_MapOutput],
                      report: JobReport,
                      phase_span: Optional[Span] = None):
        state = self._make_reduce_state(job)
        state["span"] = phase_span
        all_done = self.sim.event()
        remaining = {"n": job.n_reduces}
        if remaining["n"] == 0:
            all_done.succeed(None)

        def spawn(trackers):
            for tracker in trackers:
                for slot in range(tracker.reduce_slots.capacity):
                    self.sim.process(
                        self._reduce_worker(job, tracker, state, map_outputs,
                                            report, remaining, all_done,
                                            on_requeue=respawn),
                        name=f"{job.name}:reduceworker:"
                             f"{tracker.name}:{slot}")

        def respawn():
            spawn(t for t in self._live_trackers()
                  if not self._is_blacklisted(job, t))

        spawn(self.cluster.trackers)
        yield all_done
        return None

    @staticmethod
    def _make_reduce_state(job: Job) -> dict:
        """Shared reduce-phase state, mirroring the map phase plus a
        commit table (``committing``) so racing speculative attempts
        never write the same ``part-r-NNNNN`` file twice."""
        return {
            "pending": list(range(job.n_reduces)),
            "running": {},        # partition -> (start_time, partition)
            "finished": set(),    # partition
            "duplicated": set(),  # partition with a backup launched
            "durations": [],      # completed reduce durations
            "committing": {},     # partition -> attempt token
            "retrying": {"n": 0},  # failed attempts awaiting their backoff
            "attempts": {},       # partition -> failed attempt count
        }

    def _reduce_worker(self, job: Job, tracker: "TaskTracker", state: dict,
                       map_outputs: list[_MapOutput], report: JobReport,
                       remaining: dict, all_done: Event, on_requeue=None):
        config = self.cluster.config
        pending = state["pending"]
        retrying = state["retrying"]
        while (pending or retrying["n"] > 0
               or (config.speculative_execution and remaining["n"] > 0)):
            if tracker.vm.state in (VMState.FAILED, VMState.STOPPED):
                break
            if self._is_blacklisted(job, tracker):
                break  # too many failures: this tracker sits the job out
            yield self.sim.timeout(
                float(self._rng.uniform(0.0, config.heartbeat_s)))
            speculative = False
            if pending:
                partition = pending.pop(0)
            else:
                partition = self._pick_speculative(state, report, "reduce")
                if partition is None:
                    if remaining["n"] > 0 and (config.speculative_execution
                                               or retrying["n"] > 0):
                        continue  # keep heartbeating; stragglers or
                                  # requeued retries may appear
                    break
                speculative = True
            yield tracker.reduce_slots.acquire()
            tracker.vm.activity += 1
            claimed = self.sim.now
            if report.first_task_at is None:
                report.first_task_at = claimed
            try:
                yield self.sim.timeout(config.task_startup_s)
                start = self.sim.now
                if not speculative:
                    state["running"][partition] = (start, partition)
                token = object()
                attempt_span = self.tracer.begin_span(
                    start, EV.TASK_REDUCE, f"r-{partition:05d}",
                    parent=state["span"], tracker=tracker.name,
                    speculative=speculative, job=job.name)
                gen = self._run_reduce_task(
                    job, tracker, partition, map_outputs, report, state,
                    token, attempt_span)
                failure = None
                try:
                    # An attempt that already holds the commit token has
                    # (partially) written the output file; it must finish
                    # even if its tracker dies — single-writer commit.
                    result, died = yield from _drive_racing(
                        self.sim, gen, tracker.vm.failure_event(),
                        abortable=lambda:
                            state["committing"].get(partition) is not token)
                    if died:
                        failure = VMStateError(
                            f"{tracker.name}: tracker died mid-attempt")
                except (VMStateError, TaskFailure) as exc:
                    result, failure = None, exc
                if failure is not None:
                    if state["committing"].get(partition) is token:
                        del state["committing"][partition]
                    self.tracer.end_span(attempt_span, self.sim.now,
                                         failed=True)
                    self._handle_task_failure(
                        job, "reduce", state, partition,
                        f"r-{partition:05d}", speculative, tracker, report,
                        remaining, all_done, failure, on_requeue=on_requeue)
                    continue
                self.tracer.end_span(attempt_span, self.sim.now,
                                     won=result is not None)
                self.metrics.histogram(
                    "mapreduce.task.duration", "task attempt duration",
                    {"phase": "reduce", "job": job.name}).observe(
                        self.sim.now - start)
                if result is None or partition in state["finished"]:
                    continue  # the other attempt won the race
                self._count_speculation_win(job, "reduce", speculative)
                state["finished"].add(partition)
                state["running"].pop(partition, None)
                state["durations"].append(self.sim.now - start)
                nbytes_in, nbytes_out = result
                report.tasks.append(TaskAttempt(
                    task_id=f"r-{partition:05d}", kind="reduce",
                    tracker=tracker.name, start=start, end=self.sim.now,
                    input_bytes=nbytes_in, output_bytes=nbytes_out,
                    locality="-"))
                self.tracer.emit(self.sim.now, EV.TASK_REDUCE_DONE,
                                 f"r-{partition:05d}", tracker=tracker.name,
                                 speculative=speculative)
                remaining["n"] -= 1
                if remaining["n"] == 0 and not all_done.triggered:
                    all_done.succeed(None)
            finally:
                report.slot_seconds += self.sim.now - claimed
                tracker.vm.activity -= 1
                tracker.reduce_slots.release()
        return None

    def _run_reduce_task(self, job: Job, tracker: "TaskTracker",
                         partition: int, map_outputs: list[_MapOutput],
                         report: JobReport, state: dict, token: object,
                         attempt_span: Optional[Span] = None):
        vm = tracker.vm
        config = self.cluster.config
        # 1. shuffle: fetch this partition from every map's VM.
        fetch_sem = Resource(self.sim, config.shuffle_parallel_copies,
                             name=f"{vm.name}.fetchers")
        fetches = [self.sim.process(
            self._fetch(output, partition, vm, fetch_sem, attempt_span,
                        job_name=job.name),
            name=f"fetch:{output.spec.task_id}:r{partition}")
            for output in map_outputs
            if output.partition_bytes.get(partition, 0.0) > 0]
        if fetches:
            yield self.sim.all_of(fetches)
        rows: list = []
        for output in map_outputs:
            rows.extend(output.partitions.get(partition, ()))
        nbytes_in = sum(output.partition_bytes.get(partition, 0.0)
                        for output in map_outputs)
        report.shuffle_bytes += nbytes_in
        self.metrics.histogram(
            "mapreduce.shuffle.partition_bytes",
            "shuffle bytes fetched per reduce partition",
            {"job": job.name}).observe(nbytes_in)
        # 2. merge-sort + reduce CPU.
        n = len(rows)
        work = (job.reduce_cpu_per_byte * nbytes_in
                + job.reduce_cpu_per_record * n
                + C.SORT_CPU_PER_RECORD * n * math.log2(n + 2))
        if work > 0:
            yield vm.compute(work, name=f"reduce:r{partition}")
        # 3. real reduce.
        ctx = Context(task_id=f"r-{partition:05d}", config=job.params)
        try:
            reducer = (job.reducer or Reducer)()
            out_pairs = run_reducer(reducer, group_by_key(rows), ctx)
        except Exception as exc:
            raise TaskFailure(f"r-{partition:05d}", exc) from exc
        # Commit protocol: only one attempt per partition may write the
        # output file (and merge its counters); a racing speculative
        # attempt that arrives second discards its work.
        if (partition in state["finished"]
                or partition in state["committing"]):
            return None
        state["committing"][partition] = token
        report.counters.merge(ctx.counters)
        report.counters.incr("job", "reduce_input_records", n)
        report.counters.incr("job", "reduce_output_records", len(out_pairs))
        # 4. replicated output write.
        path = f"{job.output_path}/part-r-{partition:05d}"
        f = yield self.cluster.dfs.write_file(
            vm, path, out_pairs, sizeof=job.output_sizeof,
            replication=job.output_replication)
        report.output_paths.append(path)
        report.output_bytes += f.size
        return nbytes_in, float(f.size)

    def _fetch(self, output: _MapOutput, partition: int, to_vm, sem: Resource,
               parent_span: Optional[Span] = None, job_name: str = ""):
        """One shuffle fetch, bounded by the reduce's parallel-copy limit.

        If the map's VM died since the map ran, its intermediate output is
        gone; Hadoop re-executes the map, which we do on the fetching VM
        (charging startup, the split read and map CPU again) before
        copying.  The source can also die *between* the liveness check and
        the read — or between a recovery re-run and the fetch that needed
        it — so the whole sequence retries until the attempt budget runs
        out rather than crashing the fetch process.
        """
        config = self.cluster.config
        acquired = False
        pending: list[Event] = []
        try:
            yield sem.acquire()
            acquired = True
            for _ in range(config.max_task_retries + 1):
                if not self._vm_live(output.tracker.vm):
                    yield from self._recover_map_output(output, to_vm)
                nbytes = output.partition_bytes[partition]
                span = self.tracer.begin_span(
                    self.sim.now, EV.SHUFFLE_FETCH,
                    f"{output.spec.task_id}:r{partition}",
                    parent=parent_span, tracker=to_vm.name,
                    src=output.tracker.vm.name, nbytes=nbytes,
                    job=job_name)
                try:
                    yield self.sim.timeout(C.SHUFFLE_FETCH_OVERHEAD_S)
                    pending = [output.tracker.vm.disk_io(
                        nbytes, name=f"shufread:{output.spec.task_id}")]
                    if output.tracker.vm.node is not to_vm.node:
                        pending.append(
                            self.cluster.datacenter.fabric.transfer(
                                output.tracker.vm.node, to_vm.node, nbytes,
                                name=f"shuffle:{output.spec.task_id}"
                                     f":r{partition}"))
                    yield self.sim.all_of(pending)
                except VMStateError:
                    # The source died under us; loop back, recover the map
                    # output on a live VM and try again.
                    self.tracer.end_span(span, self.sim.now, failed=True)
                    continue
                self.tracer.end_span(span, self.sim.now)
                return None
            raise TaskFailure(f"{output.spec.task_id}:r{partition}",
                              "shuffle source kept failing")
        except Interrupt:
            # The owning reduce attempt was aborted: cancel any in-flight
            # sub-work so the virt/net layers bill only what moved.
            for ev in pending:
                if isinstance(ev, Process) and ev.is_alive:
                    ev.interrupt("fetch aborted")
            return None
        finally:
            # Only release what we actually acquired: an Interrupt landing
            # in the pending ``acquire()`` above must not mint a permit.
            if acquired:
                sem.release()
        return None

    def _recover_map_output(self, output: _MapOutput, to_vm):
        """Re-execute a lost map task on ``to_vm`` (Hadoop's map re-run).

        The functional output is recomputed deterministically from the
        (replicated) input split; the re-executed task's costs — startup,
        split read and map CPU — are charged to the recovering VM.  Its
        counters are *not* merged again (``count=False``): the original
        attempt already counted.

        Raises :class:`VMStateError` when ``to_vm`` itself is dead or no
        longer a tracker (a double failure): the caller's reduce attempt
        is doomed and must be retried on a live tracker.
        """
        spec = output.spec
        tracker = next((t for t in self.cluster.trackers if t.vm is to_vm),
                       None)
        if tracker is None or not self._vm_live(to_vm):
            raise VMStateError(
                f"{to_vm.name}: cannot recover {spec.task_id}: "
                "recovering tracker is dead")
        self.tracer.emit(self.sim.now, EV.TASK_MAP_RECOVER, spec.task_id,
                         on=to_vm.name, lost_with=output.tracker.vm.name)
        yield self.sim.timeout(self.cluster.config.task_startup_s)
        live_holders = tuple(
            dn for dn in spec.holders
            if dn in self.cluster.namenode.datanodes
            and self._vm_live(dn.vm))
        fresh_spec = _MapSpec(spec.index, spec.records, spec.nbytes,
                              live_holders)
        locality = self._locality_of(tracker, fresh_spec)
        job = output.job
        recovered = yield from self._run_map_task(job, tracker, fresh_spec,
                                                  locality, output.report,
                                                  count=False)
        output.tracker = tracker
        output.partitions = recovered.partitions
        output.partition_bytes = recovered.partition_bytes

    # -- map-only output --------------------------------------------------------
    def _write_map_only_output(self, job: Job, map_outputs: list[_MapOutput],
                               report: JobReport):
        for output in map_outputs:
            rows = output.partitions.get(0, [])
            path = f"{job.output_path}/part-m-{output.spec.index:05d}"
            f = yield self.cluster.dfs.write_file(
                output.tracker.vm, path, rows, sizeof=job.output_sizeof,
                replication=job.output_replication)
            report.output_paths.append(path)
            report.output_bytes += f.size
