"""Job counters (Hadoop-style two-level counter groups)."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Counters:
    """Nested ``group -> name -> int`` counters with merge support."""

    def __init__(self) -> None:
        self._groups: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int))

    def incr(self, group: str, name: str, amount: int = 1) -> None:
        self._groups[group][name] += amount

    def get(self, group: str, name: str) -> int:
        return self._groups.get(group, {}).get(name, 0)

    def group(self, group: str) -> Dict[str, int]:
        return dict(self._groups.get(group, {}))

    def merge(self, other: "Counters") -> None:
        for group, names in other._groups.items():
            for name, amount in names.items():
                self._groups[group][name] += amount

    def __iter__(self) -> Iterator[Tuple[str, str, int]]:
        for group in sorted(self._groups):
            for name in sorted(self._groups[group]):
                yield group, name, self._groups[group][name]

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        return {g: dict(names) for g, names in self._groups.items()}

    def __repr__(self) -> str:  # pragma: no cover
        total = sum(len(v) for v in self._groups.values())
        return f"<Counters {len(self._groups)} groups, {total} counters>"
