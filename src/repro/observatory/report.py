"""Rendering the observatory's findings: terminal text and HTML.

The HTML report is fully self-contained — inline CSS, no scripts, no
external assets — so it can be attached to a CI run or opened from a
results directory offline.  It shows three sections:

* **phase timeline** — the job's phase and critical-path spans as bars;
* **alert timeline** — every fired alert as a bar from fire to resolve
  (or to the end of the run while active), coloured by severity;
* **attribution table** — per-segment blame with per-class seconds, plus
  the per-phase and whole-job rollups.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.observatory.attribution import (CLASSES, JobBottleneckReport)
from repro.observatory.htmlkit import (CLASS_COLOURS as _CLASS_COLOURS,
                                       SEVERITY_COLOURS as _SEVERITY_COLOURS,
                                       page, timeline_bar)
from repro.observatory.slo import Alert

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitor.window import WindowSummary
    from repro.observatory.core import Observatory
    from repro.telemetry.timeline import CriticalPath, JobTimeline


@dataclass
class ObservatoryReport:
    """Everything one report render needs, already extracted."""

    generated_at: float
    digest: str
    alerts: list[Alert]
    window: list["WindowSummary"] = field(default_factory=list)
    job: Optional[str] = None
    timeline: Optional["JobTimeline"] = None
    path: Optional["CriticalPath"] = None
    attribution: Optional[JobBottleneckReport] = None

    # -- terminal ----------------------------------------------------------
    def describe(self) -> str:
        lines = [f"observatory report @ {self.generated_at:.2f} s — "
                 f"{len(self.alerts)} alerts, digest {self.digest}"]
        active = [a for a in self.alerts if a.active]
        if active:
            lines.append(f"  active: {len(active)}")
        for alert in self.alerts:
            lines.append("  " + alert.describe())
        if self.attribution is not None:
            lines.append("")
            lines.append(self.attribution.describe())
        return "\n".join(lines)

    # -- HTML --------------------------------------------------------------
    def html(self) -> str:
        end = max([self.generated_at]
                  + [a.resolved_at or self.generated_at
                     for a in self.alerts])
        start = 0.0
        if self.timeline is not None:
            start = min(start, self.timeline.job_span.start)
            end = max(end, self.timeline.job_span.end)
        total = max(end - start, 1e-9)

        def bar(t0: float, t1: float, colour: str, label: str) -> str:
            return timeline_bar(t0, t1, start, total, colour, label)

        parts = [
            f"<h1>Cluster observatory</h1><p class='meta'>generated at "
            f"t={self.generated_at:.2f}&thinsp;s &middot; "
            f"{len(self.alerts)} alerts &middot; digest "
            f"<code>{self.digest}</code></p>",
        ]

        if self.timeline is not None:
            parts.append(f"<h2>Phase timeline — {_html.escape(self.job)}"
                         f"</h2>")
            shown = [self.timeline.job_span]
            shown += [s for s in self.timeline.spans
                      if s.kind.startswith("job.phase.")]
            for span in shown:
                parts.append(bar(span.start, span.end, "#9ecae1",
                                 f"{span.kind}:{span.name}"))
            if self.path is not None:
                for seg in self.path.segments:
                    colour = (_CLASS_COLOURS["wait"] if seg.span is None
                              else "#6baed6")
                    parts.append(bar(seg.start, seg.end, colour,
                                     f"  path {seg.label}"))

        parts.append("<h2>Alert timeline</h2>")
        if not self.alerts:
            parts.append("<p class='meta'>no alerts fired</p>")
        for alert in self.alerts:
            colour = _SEVERITY_COLOURS.get(alert.severity, "#888")
            until = (alert.resolved_at if alert.resolved_at is not None
                     else end)
            state = "" if alert.resolved_at is not None else " (active)"
            parts.append(bar(alert.fired_at, until, colour,
                             f"{alert.slo} {alert.target}{state}"))

        if self.attribution is not None:
            rep = self.attribution
            parts.append("<h2>Bottleneck attribution</h2>")
            parts.append(f"<p class='meta'>makespan {rep.makespan:.2f}"
                         f"&thinsp;s &middot; {rep.coverage:.0%} "
                         f"attributed &middot; dominant class "
                         f"<b>{rep.dominant}</b></p>")
            head = "".join(f"<th>{c}</th>" for c in (*CLASSES, "wait"))
            parts.append(f"<table><tr><th>scope</th><th>blame</th>{head}"
                         f"<th>seconds</th></tr>")

            def cells(seconds: dict) -> str:
                return "".join(
                    f"<td>{seconds.get(c, 0.0):.2f}</td>"
                    for c in (*CLASSES, "wait"))

            for scope in ("map", "reduce", "other"):
                totals = rep.phase_seconds(scope)
                if not totals:
                    continue
                top = max(sorted(totals), key=lambda k: totals[k])
                parts.append(f"<tr><td>phase:{scope}</td><td>{top}</td>"
                             f"{cells(totals)}<td>"
                             f"{sum(totals.values()):.2f}</td></tr>")
            totals = rep.class_seconds
            parts.append(f"<tr><td><b>job</b></td><td>{rep.dominant}</td>"
                         f"{cells(totals)}<td>"
                         f"{sum(totals.values()):.2f}</td></tr>")
            parts.append("</table>")
            parts.append("<h2>Critical-path segments</h2>")
            parts.append("<table><tr><th>start</th><th>label</th>"
                         "<th>phase</th><th>blame</th><th>dur&thinsp;s"
                         "</th><th>covered&thinsp;s</th><th>flows</th>"
                         "</tr>")
            for seg in rep.segments:
                parts.append(
                    f"<tr><td>{seg.start:.2f}</td>"
                    f"<td>{_html.escape(seg.label)}</td>"
                    f"<td>{seg.phase}</td><td>{seg.blame}</td>"
                    f"<td>{seg.duration:.2f}</td>"
                    f"<td>{seg.covered_s:.2f}</td>"
                    f"<td>{seg.n_flows}</td></tr>")
            parts.append("</table>")

        if self.window:
            parts.append("<h2>Rolling nmon window</h2>")
            parts.append("<table><tr><th>vm</th><th></th><th>cpu</th>"
                         "<th>disk&thinsp;B/s</th><th>net&thinsp;B/s</th>"
                         "<th>tasks</th></tr>")
            for w in self.window:
                parts.append(
                    f"<tr><td>{_html.escape(w.vm)}</td><td></td>"
                    f"<td>{w.cpu_mean:.0%}</td>"
                    f"<td>{w.disk_rate:,.0f}</td>"
                    f"<td>{w.net_rate:,.0f}</td>"
                    f"<td>{w.activity_mean:.1f}</td></tr>")
            parts.append("</table>")

        return page("observatory report", parts)

    def write_html(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.html())
        return path


def build_report(obs: "Observatory", job: Optional[str] = None
                 ) -> ObservatoryReport:
    """Extract a report from a (running or stopped) observatory."""
    timeline = path = attribution = None
    if job is not None:
        timeline = obs.telemetry.job_timeline(job)
        path = timeline.critical_path()
        if obs.telemetry.flow_log is not None:
            attribution = obs.telemetry.attribution(job)
    window = (obs.nmon_window.summaries()
              if obs.nmon_window is not None else [])
    return ObservatoryReport(
        generated_at=obs.sim.now, digest=obs.digest(),
        alerts=obs.alerts(), window=window, job=job,
        timeline=timeline, path=path, attribution=attribution)
