"""Multi-window multi-burn-rate SLO evaluation over the time-series store.

Threshold alerting (PR 6's service mode) pages the instant a rolling
signal crosses a line — which flaps under diurnal/burst traffic and says
nothing about *how much* of the service's promise has been spent.  This
module replaces it with error-budget math in the Google SRE style:

* each :class:`BurnPolicy` names an **error-fraction series** in a
  :class:`~repro.telemetry.timeseries.TimeSeriesStore` (one sample per
  control tick, each sample the fraction of that tick's events that
  violated the objective — or a 0/1 indicator for state objectives like
  backlog) and an error **budget** (the long-run fraction the service is
  allowed to burn);
* a **burn rate** is the observed error fraction over a window divided
  by the budget — burn 1x spends the budget exactly, burn 10x spends it
  ten times too fast;
* each policy evaluates several :class:`BurnWindow` pairs; an alert
  fires only when **both** the long window (evidence the burn is real)
  and the short window (evidence it is *still happening*) exceed the
  pair's burn threshold.  The long window keeps one bad tick from
  paging; the short window makes the alert resolve promptly once the
  burn stops.

The engine fires into the existing
:class:`~repro.observatory.slo.AlertBook` under the *same SLO names* the
threshold path uses (``service-backlog`` / ``service-p99`` /
``service-rejection``), so the
:class:`~repro.cloud.autoscaler.ElasticAutoscaler`'s alert-cursor
contract picks burn alerts up unchanged.  ``experiments/service.py``
validates the swap with an on/off ablation on identical arrival traces:
zero clean-run false positives, earlier-or-equal first alert on bursts.

Window lengths and budgets are expressed in **sim-time seconds** and
scaled to the experiments' horizons (minutes, not the SRE book's
30-day months); the detection-time algebra is the same: a total outage
is caught after ``burn x budget x long_s`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.observatory.slo import AlertBook
    from repro.telemetry.timeseries import TimeSeriesStore

#: Error-fraction series names the service controller records.
SERIES_LATENCY = "slo.error.latency"
SERIES_REJECTION = "slo.error.rejection"
SERIES_BACKLOG = "slo.error.backlog"


@dataclass(frozen=True)
class BurnWindow:
    """One (long, short) window pair with its burn-rate threshold."""

    long_s: float
    short_s: float
    burn: float
    label: str = "fast"

    def __post_init__(self) -> None:
        if not (0 < self.short_s <= self.long_s):
            raise ConfigError(
                f"need 0 < short_s <= long_s, got {self.short_s}/"
                f"{self.long_s}")
        if self.burn <= 0:
            raise ConfigError(f"burn threshold must be > 0, got {self.burn}")


@dataclass(frozen=True)
class BurnPolicy:
    """Error budget for one SLO, evaluated over one store series."""

    slo: str                  # AlertBook SLO name to fire/resolve
    series: str               # error-fraction series in the store
    budget: float             # allowed long-run error fraction
    attribution: str = "capacity"
    windows: tuple[BurnWindow, ...] = ()

    def __post_init__(self) -> None:
        if not 0 < self.budget < 1:
            raise ConfigError(f"budget must be in (0, 1), got {self.budget}")
        for window in self.windows:
            if window.burn * self.budget > 1.0:
                raise ConfigError(
                    f"{self.slo}: burn {window.burn} x budget "
                    f"{self.budget} exceeds 1.0 — an error fraction can "
                    f"never reach it, the alert would be dead")


#: Default window pairs: a fast pair that catches a hard burn within
#: ~a sim-minute, and a slow pair that catches a simmering one.
DEFAULT_BURN_WINDOWS = (
    BurnWindow(long_s=300.0, short_s=60.0, burn=10.0, label="fast"),
    BurnWindow(long_s=1800.0, short_s=300.0, burn=2.0, label="slow"),
)

#: The service-mode policy catalogue.  Budgets are scaled to experiment
#: horizons: 2% of completions may miss the latency target, 2% of
#: control ticks may queue beyond the backlog objective, 1% of arrivals
#: may be rejected, before the budget is spent at burn 1x.
SERVICE_BURN_POLICIES: tuple[BurnPolicy, ...] = (
    BurnPolicy("service-backlog", SERIES_BACKLOG, budget=0.02,
               attribution="capacity", windows=DEFAULT_BURN_WINDOWS),
    BurnPolicy("service-p99", SERIES_LATENCY, budget=0.02,
               attribution="capacity", windows=DEFAULT_BURN_WINDOWS),
    BurnPolicy("service-rejection", SERIES_REJECTION, budget=0.01,
               attribution="admission",
               windows=(BurnWindow(300.0, 60.0, 5.0, "fast"),
                        BurnWindow(1800.0, 300.0, 2.0, "slow"))),
)


@dataclass(frozen=True)
class BurnState:
    """One policy's burn rates at one evaluation (for reports/tests)."""

    slo: str
    window: str
    long_burn: float
    short_burn: float
    firing: bool


class BurnRateEngine:
    """Evaluates burn policies over a store; fires into an alert book.

    The caller records error-fraction samples (one per control tick —
    :meth:`observe_service_tick` covers the service-mode trio) and calls
    :meth:`evaluate` each tick.  Alerts carry the burn context in
    ``detail`` and the worst long-window burn as ``value``; they
    resolve with 0.5x hysteresis once every window's long burn calms.
    """

    def __init__(self, store: "TimeSeriesStore", book: "AlertBook",
                 target: str,
                 policies: tuple[BurnPolicy, ...] = SERVICE_BURN_POLICIES,
                 labels: Optional[dict] = None,
                 backlog_objective: float = 1.0):
        if not policies:
            raise ConfigError("need at least one burn policy")
        self.store = store
        self.book = book
        self.target = target
        self.policies = tuple(policies)
        self.labels = dict(labels) if labels else None
        #: Backlog per slot counted as budget burn.  Deliberately a
        #: *third* of the threshold path's paging line (3.0): budget
        #: math needs an objective that trips early and pages only when
        #: the burn is sustained.
        self.backlog_objective = backlog_objective
        self.evaluations = 0
        self.last_states: list[BurnState] = []

    # -- recording ---------------------------------------------------------
    def record(self, series: str, fraction: float,
               at: Optional[float] = None) -> None:
        """Record one error-fraction sample (clamped to [0, 1])."""
        self.store.record(series, min(1.0, max(0.0, fraction)),
                          labels=self.labels, at=at)

    def observe_service_tick(self, now: float, *, latency_error: float,
                             rejection_frac: float,
                             backlog_per_slot: float) -> None:
        """Record the service-mode error trio for one control tick."""
        self.record(SERIES_LATENCY, latency_error, at=now)
        self.record(SERIES_REJECTION, rejection_frac, at=now)
        self.record(SERIES_BACKLOG,
                    1.0 if backlog_per_slot > self.backlog_objective
                    else 0.0, at=now)

    # -- evaluation --------------------------------------------------------
    def _burn(self, policy: BurnPolicy, t0: float, t1: float) -> float:
        frac = self.store.mean_over(policy.series, t0, t1,
                                    labels=self.labels)
        return frac / policy.budget

    def evaluate(self, now: float) -> list[BurnState]:
        """Fire/resolve every policy; returns the per-window burn states."""
        self.evaluations += 1
        states: list[BurnState] = []
        for policy in self.policies:
            worst: Optional[tuple[float, float, BurnWindow]] = None
            for window in policy.windows:
                long_burn = self._burn(policy, now - window.long_s, now)
                short_burn = self._burn(policy, now - window.short_s, now)
                firing = (long_burn >= window.burn
                          and short_burn >= window.burn)
                states.append(BurnState(policy.slo, window.label,
                                        long_burn, short_burn, firing))
                if firing and (worst is None or long_burn > worst[0]):
                    worst = (long_burn, short_burn, window)
            if worst is not None:
                long_burn, short_burn, window = worst
                self.book.fire(
                    policy.slo, self.target, long_burn,
                    policy.attribution,
                    detail=(f"{window.label} burn {long_burn:.1f}x/"
                            f"{short_burn:.1f}x over {window.long_s:.0f}s/"
                            f"{window.short_s:.0f}s "
                            f"(budget {policy.budget:g})"))
            elif self.book.is_active(policy.slo, self.target):
                calm = all(
                    self._burn(policy, now - window.long_s, now)
                    < window.burn * 0.5
                    for window in policy.windows)
                if calm:
                    self.book.resolve(policy.slo, self.target)
        self.last_states = states
        return states

    def digest(self) -> str:
        """The underlying store's digest (series content, byte-stable)."""
        return self.store.digest()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<BurnRateEngine target={self.target} "
                f"policies={len(self.policies)} "
                f"evaluations={self.evaluations}>")
