"""Cluster observatory: online anomaly detection, per-job bottleneck
attribution and SLO alerting on top of :mod:`repro.telemetry`.

Typical use::

    obs = cluster.observatory()          # or cluster.telemetry.observatory()
    obs.start()
    cluster.run_job(job)
    obs.stop()
    print(obs.report(job="wordcount").describe())

See :mod:`repro.observatory.core` for the lifecycle,
:mod:`repro.observatory.detectors` for the detector catalogue,
:mod:`repro.observatory.slo` for the SLO schema and alert book, and
:mod:`repro.observatory.attribution` for critical-path blame.
"""

from repro.observatory.attribution import (FlowLog, FlowRecord,
                                           JobBottleneckReport,
                                           SegmentAttribution, attribute,
                                           classify)
from repro.observatory.burnrate import (DEFAULT_BURN_WINDOWS,
                                        SERVICE_BURN_POLICIES, BurnPolicy,
                                        BurnRateEngine, BurnWindow)
from repro.observatory.core import Observatory
from repro.observatory.detectors import DEFAULT_DETECTORS, Detector
from repro.observatory.report import ObservatoryReport, build_report
from repro.observatory.slo import (DEFAULT_SLOS, SEVERITIES, Alert,
                                   AlertBook, SloSpec)

__all__ = [
    "Alert", "AlertBook", "BurnPolicy", "BurnRateEngine", "BurnWindow",
    "DEFAULT_BURN_WINDOWS", "DEFAULT_DETECTORS", "DEFAULT_SLOS", "Detector",
    "FlowLog", "FlowRecord", "JobBottleneckReport", "Observatory",
    "ObservatoryReport", "SERVICE_BURN_POLICIES", "SEVERITIES",
    "SegmentAttribution", "SloSpec", "attribute", "build_report", "classify",
]
