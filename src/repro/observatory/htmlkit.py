"""Shared building blocks for self-contained HTML reports.

Both the observatory report (:mod:`repro.observatory.report`) and the
campaign control room (:mod:`repro.parallel.console`) render the same
way: one inline stylesheet, no scripts, no external assets — a file that
can be attached to a CI run or opened offline.  This module holds the
pieces they share: the base CSS, the colour tables, the page frame, the
labelled timeline-bar row, and a pure-div column chart for series.
"""

from __future__ import annotations

import html as _html
from typing import Iterable, Optional, Sequence

SEVERITY_COLOURS = {"info": "#4c78a8", "warning": "#e8a838",
                    "critical": "#d62f2f"}
CLASS_COLOURS = {"cpu": "#4c78a8", "network": "#59a14f",
                 "disk": "#e8a838", "nfs": "#b07aa1", "wait": "#bab0ac"}

#: The shared stylesheet (one string per rule, joined without spaces).
BASE_CSS: tuple[str, ...] = (
    "body{font:13px/1.5 -apple-system,Segoe UI,sans-serif;"
    "margin:2em;color:#222;max-width:70em}",
    "h1{font-size:1.3em}h2{font-size:1.05em;margin-top:1.6em}",
    ".row{display:flex;align-items:center;margin:2px 0}",
    ".lbl{flex:0 0 22em;overflow:hidden;text-overflow:ellipsis;"
    "white-space:nowrap;font-family:ui-monospace,monospace;"
    "font-size:11px;padding-right:.6em}",
    ".lane{position:relative;flex:1;height:14px;"
    "background:#f4f4f4;border-radius:3px}",
    ".bar{position:absolute;top:1px;bottom:1px;border-radius:2px;"
    "min-width:2px}",
    "table{border-collapse:collapse;margin-top:.5em}",
    "td,th{border:1px solid #ddd;padding:3px 8px;"
    "text-align:right;font-size:12px}",
    "td:first-child,th:first-child,td:nth-child(2),"
    "th:nth-child(2){text-align:left;"
    "font-family:ui-monospace,monospace}",
    ".meta{color:#666}",
    ".chart{display:flex;align-items:flex-end;gap:1px;height:64px;"
    "background:#f8f8f8;border-radius:3px;padding:2px;flex:1}",
    ".col{flex:1;min-width:1px;border-radius:1px 1px 0 0}",
)


def page(title: str, body_parts: Iterable[str]) -> str:
    """Wrap body fragments in the shared self-contained page frame."""
    return "".join((
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title><style>",
        *BASE_CSS,
        "</style></head><body>",
        *body_parts,
        "</body></html>",
    ))


def bar_row(label: str, left_pct: float, width_pct: float,
            colour: str) -> str:
    """One labelled timeline lane with a single positioned bar."""
    return (f'<div class="row"><span class="lbl">'
            f'{_html.escape(label)}</span>'
            f'<span class="lane"><span class="bar" style="left:'
            f'{left_pct:.2f}%;width:{max(width_pct, 0.15):.2f}%;'
            f'background:{colour}"></span></span></div>')


def timeline_bar(t0: float, t1: float, start: float, total: float,
                 colour: str, label: str) -> str:
    """A :func:`bar_row` positioned on a [start, start+total] axis."""
    total = max(total, 1e-9)
    left = 100.0 * (t0 - start) / total
    width = 100.0 * (t1 - t0) / total
    return bar_row(label, left, width, colour)


def column_chart(label: str, values: Sequence[float], colour: str,
                 ceiling: Optional[float] = None,
                 over_colour: str = "#d62f2f") -> str:
    """A labelled pure-div column chart (heights scaled to the max).

    With ``ceiling`` set, columns exceeding it render in
    ``over_colour`` — the RSS-vs-ceiling view.
    """
    peak = max([v for v in values if v is not None] + [1e-9])
    if ceiling is not None:
        peak = max(peak, ceiling)
    cols = []
    for v in values:
        if v is None:
            cols.append('<span class="col" style="height:0"></span>')
            continue
        h = max(1.0, 100.0 * v / peak)
        c = (over_colour if ceiling is not None and v > ceiling
             else colour)
        cols.append(f'<span class="col" style="height:{h:.1f}%;'
                    f'background:{c}"></span>')
    return (f'<div class="row"><span class="lbl">'
            f'{_html.escape(label)}</span>'
            f'<span class="chart">{"".join(cols)}</span></div>')
