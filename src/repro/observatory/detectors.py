"""Streaming anomaly detectors.

Each detector watches one class of failure through *legitimately
observable* signals — trace events, nmon rolling-window rates, fair-share
load/utilization samples, the flow log, HDFS replica counts — never the
chaos injector's own state.  The observatory drives them two ways:

* ``on_event(event)`` — called synchronously from tracer subscriptions
  (task attempt edges, shuffle fetches, VM lifecycle events);
* ``tick(now)`` — called from the observatory's periodic sim process.

Detectors fire/resolve alerts through the shared :class:`AlertBook`;
thresholds come from the registered :class:`SloSpec`s so experiments can
tighten or loosen them declaratively.

All state is plain counters, dicts, and (for the rate detectors)
sim-time series buckets in a :class:`~repro.telemetry.timeseries.
TimeSeriesStore`: detectors never open flows, never consume randomness,
and never block — a detectors-on run must leave the simulated outcome
bit-identical (asserted by the perf bench).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.observatory.attribution import classify
from repro.telemetry import events as EV
from repro.telemetry.timeseries import TimeSeriesStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.observatory.core import Observatory

_EPS = 1e-9
#: 1 / Φ⁻¹(3/4): scales a median-absolute-deviation onto σ for normal
#: data, the conventional robust z-score denominator.
_MAD_SIGMA = 1.4826


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class Detector:
    """Base detector: override :meth:`tick` and/or :meth:`on_event`."""

    #: Tracer-kind prefixes this detector wants events for.
    prefixes: tuple[str, ...] = ()

    def __init__(self, obs: "Observatory"):
        self.obs = obs
        self.book = obs.book

    def tick(self, now: float) -> None:  # pragma: no cover - default
        pass

    def on_event(self, event) -> None:  # pragma: no cover - default
        pass


class StragglerDetector(Detector):
    """Task attempts running far beyond the phase's robust runtime norm.

    Finished attempt runtimes per attempt kind (map / reduce) feed a
    median/MAD baseline; a *running* attempt whose age exceeds both the
    MAD-score threshold and an absolute 1.5× median guard is flagged.
    The guard keeps tight distributions (MAD → 0 on homogeneous clusters)
    from flagging ordinary jitter.
    """

    prefixes = ("task.map.attempt.", "task.reduce.attempt.")
    MIN_SAMPLES = 5
    MIN_RATIO = 1.5

    def __init__(self, obs: "Observatory"):
        super().__init__(obs)
        #: span id → ((kind, job), alert target, start time)
        self._running: dict[int, tuple[tuple[str, str], str, float]] = {}
        #: (kind, job) → finished runtimes.  Baselines are per *job*: a
        #: heavy job's normal attempts are not stragglers just because a
        #: concurrent tiny job finishes its own attempts faster.
        self._finished: dict[tuple[str, str], list[float]] = {}

    def on_event(self, event) -> None:
        span_id = event.attrs.get("span")
        kind = event.kind.rsplit(".", 1)[0]
        job = str(event.attrs.get("job", ""))
        if event.kind.endswith(".start"):
            target = f"{job}:{event.source}" if job else event.source
            self._running[span_id] = ((kind, job), target, event.time)
            return
        started = self._running.pop(span_id, None)
        if started is None:
            return
        group, target, start = started
        self.book.resolve("straggler-task", target)
        if not event.attrs.get("failed"):
            self._finished.setdefault(group, []).append(event.time - start)

    def tick(self, now: float) -> None:
        spec = self.book.spec("straggler-task")
        for group, target, start in self._running.values():
            runtimes = self._finished.get(group, ())
            if len(runtimes) < self.MIN_SAMPLES:
                continue
            med = _median(list(runtimes))
            mad = _median([abs(r - med) for r in runtimes])
            age = now - start
            score = (age - med) / max(_MAD_SIGMA * mad, _EPS)
            if spec.violated_by(score) and age >= self.MIN_RATIO * med:
                self.book.fire(
                    "straggler-task", target, score, "node",
                    detail=f"{group[0]} running {age:.1f}s vs median "
                           f"{med:.1f}s")


class SkewDetector(Detector):
    """Reduce-partition shuffle-byte imbalance.

    Shuffle fetch spans carry ``nbytes``; accumulating them per partition
    gives each reducer's input size as it materializes.  The largest
    partition is compared against the median — hash partitioning keeps
    this near 1, a hot key drives it up.
    """

    prefixes = ("shuffle.fetch.start", EV.JOB_SUBMIT, EV.JOB_DONE)
    MIN_PARTITIONS = 4
    MIN_BYTES = 1 << 20

    def __init__(self, obs: "Observatory"):
        super().__init__(obs)
        self._bytes: dict[tuple[str, str], float] = {}  # (job, "r5") → bytes

    def on_event(self, event) -> None:
        if event.kind in (EV.JOB_SUBMIT, EV.JOB_DONE):
            # A resubmitted job reuses its partition tokens, and a
            # finished job's shuffle shape is history — either way drop
            # only *its* buckets.  Clearing everything punished
            # concurrent tenants: jobs with different reduce counts
            # pooled their bytes and a healthy mix looked hot.
            job = event.source
            for key in [k for k in self._bytes if k[0] == job]:
                del self._bytes[key]
            return
        token = event.source.rsplit(":", 1)[-1]
        key = (str(event.attrs.get("job", "")), token)
        self._bytes[key] = (self._bytes.get(key, 0.0)
                            + float(event.attrs.get("nbytes", 0.0)))

    def tick(self, now: float) -> None:
        spec = self.book.spec("reducer-skew")
        jobs: dict[str, list[tuple[str, str]]] = {}
        for key in self._bytes:
            jobs.setdefault(key[0], []).append(key)
        for job, keys in sorted(jobs.items()):
            # Skew is a per-job property: each job's partitions are
            # compared only against that job's own median.
            if len(keys) < self.MIN_PARTITIONS:
                continue
            med = _median([self._bytes[k] for k in keys])
            if med < self.MIN_BYTES:
                continue
            worst = max(sorted(keys), key=lambda k: self._bytes[k])
            ratio = self._bytes[worst] / med
            target = f"{job}:{worst[1]}" if job else worst[1]
            if spec.violated_by(ratio):
                self.book.fire(
                    "reducer-skew", target, ratio, "data",
                    detail=f"partition holds {ratio:.1f}x the median "
                           f"shuffle bytes")
            else:
                self.book.resolve("reducer-skew", target)


class HostLoadDetector(Detector):
    """Hosts whose CPU runs hot *and* well above the cluster norm.

    Busy fraction is the derivative of the fair-share busy-time integral
    between ticks.  Both an absolute threshold (the SLO) and a relative
    margin over the cluster median are required, so a uniformly saturated
    map phase — every host at 100% — is load, not an anomaly.
    """

    MARGIN = 0.35

    def __init__(self, obs: "Observatory"):
        super().__init__(obs)
        # Counter samples live in a time-series store rather than an
        # ad-hoc (t, busy) dict: the newest bucket's last/last_at *is*
        # the previous tick's sample, so the difference quotient below
        # is bit-identical to the old per-detector state while the
        # series stay queryable and digestable like any other metric.
        self._store = TimeSeriesStore(obs.sim, step=obs.interval)

    def _busy_rates(self, now: float) -> dict[str, float]:
        rates: dict[str, float] = {}
        for res in self.obs.resources:
            if not res.name.endswith(".cpu"):
                continue
            busy = res.busy_time(now)
            series = self._store.series("observatory.host.busy_s",
                                        labels={"res": res.name})
            prev = series.latest(1)
            series.observe(now, busy)
            if not prev or now - prev[0].last_at <= _EPS:
                continue
            rates[res.name] = ((busy - prev[0].last)
                               / (now - prev[0].last_at))
        return rates

    def tick(self, now: float) -> None:
        spec = self.book.spec("hot-host")
        rates = self._busy_rates(now)
        if len(rates) < 2:
            return
        med = _median(list(rates.values()))
        for name in sorted(rates):
            host = name[:-len(".cpu")]
            rate = rates[name]
            if spec.violated_by(rate) and rate >= med + self.MARGIN:
                self.book.fire(
                    "hot-host", host, rate, "cpu",
                    detail=f"cpu busy {rate:.0%} vs cluster median "
                           f"{med:.0%}")
            else:
                self.book.resolve("hot-host", host)


class LinkHealthDetector(Detector):
    """Saturated links moving traffic far below their rated speed.

    Over each tick window two interface counters are differenced: the
    busy-time integral (fraction of the window the link had demand) and
    the byte counter (:meth:`moved_through`, the ifstat view).  A healthy
    link that is busy for ``b`` of the window carries ``≈ b × nominal``
    bytes — busy fraction and throughput fraction coincide.  Only a link
    whose effective capacity dropped can be pegged *and* move a small
    fraction of nominal, so one full window of evidence suffices and a
    saturated-but-healthy link can never false-positive.  Nominal speeds
    are snapshotted when the observatory starts (the rated link speed an
    operator knows), never re-read.
    """

    SATURATED = 0.9

    def __init__(self, obs: "Observatory"):
        super().__init__(obs)
        self._nominal: dict[str, float] = {}
        # Both interface counters stream into per-resource series (see
        # HostLoadDetector for why this is a bit-identical drop-in for
        # the old (t, busy, moved) tuples).
        self._store = TimeSeriesStore(obs.sim, step=obs.interval)
        self._watched = [res for res in obs.resources
                         if res.name.endswith((".nic", ".bridge"))]
        for res in self._watched:
            self._nominal[res.name] = res.capacity

    def tick(self, now: float) -> None:
        degraded = self.book.spec("degraded-link")
        partitioned = self.book.spec("partitioned-link")
        for res in self._watched:
            busy = res.busy_time(now)
            moved = res.moved_through(now)
            labels = {"res": res.name}
            busy_series = self._store.series("observatory.link.busy_s",
                                             labels=labels)
            moved_series = self._store.series("observatory.link.moved_b",
                                              labels=labels)
            prev_busy = busy_series.latest(1)
            prev_moved = moved_series.latest(1)
            busy_series.observe(now, busy)
            moved_series.observe(now, moved)
            if not prev_busy or now - prev_busy[0].last_at <= _EPS:
                continue
            dt = now - prev_busy[0].last_at
            busy_rate = (busy - prev_busy[0].last) / dt
            fraction = ((moved - prev_moved[0].last) / dt
                        / self._nominal[res.name])
            pegged = busy_rate >= self.SATURATED
            if pegged and partitioned.violated_by(fraction):
                self.book.resolve("degraded-link", res.name)
                self.book.fire(
                    "partitioned-link", res.name, fraction, "network",
                    detail=f"pegged {busy_rate:.0%} of the window, "
                           f"moving {fraction:.1%} of nominal")
            elif pegged and degraded.violated_by(fraction):
                self.book.resolve("partitioned-link", res.name)
                self.book.fire(
                    "degraded-link", res.name, fraction, "network",
                    detail=f"pegged {busy_rate:.0%} of the window, "
                           f"moving {fraction:.1%} of nominal")
            else:
                self.book.resolve("degraded-link", res.name)
                self.book.resolve("partitioned-link", res.name)


class DiskHealthDetector(Detector):
    """VMs whose live disk flows run far below their max-min fair share.

    Max-min fair sharing guarantees every *uncapped* flow at least its
    equal share at its tightest path resource —
    ``min over path of capacity / n_flows_through``.  A live guest-disk
    flow running ≥ ``threshold``× below that floor is therefore provably
    throttled by something off the fair-share books: a per-flow cap, i.e.
    a gray-failing virtual disk.  Ordinary congestion can never trip
    this test (a congested flow still gets its equal share), and a
    degraded *link* shrinks ``capacity`` — and hence the floor — so link
    faults self-suppress rather than masquerade as disk faults.

    Belt and braces, a link alert on the VM's host also suppresses the
    disk alert while active and for one window after it resolves —
    blame the cause, not the echo.
    """

    SUSTAIN = 2
    #: In-flight flows younger than this are ignored: a flow mid-open
    #: may not have been assigned its steady rate yet.
    MIN_LIVE_S = 1.0

    def __init__(self, obs: "Observatory"):
        super().__init__(obs)
        self._strikes: dict[str, int] = {}
        self._vm_names = {vm.name for vm in obs.telemetry.vms}
        self._host_of = {vm.name: vm.host.name
                         for vm in obs.telemetry.vms
                         if vm.host is not None}

    def _link_suspect(self, vm: str, now: float) -> bool:
        """True when a link alert on the VM's host explains slow flows
        still inside the evidence window."""
        host = self._host_of.get(vm)
        if host is None:
            return False
        prefix = host + "."
        for slo in ("degraded-link", "partitioned-link"):
            for alert in self.book.history(slo):
                if not alert.target.startswith(prefix):
                    continue
                if (alert.resolved_at is None
                        or now - alert.resolved_at <= self.obs.window_s):
                    return True
        return False

    def _shortfalls(self, now: float) -> dict[str, float]:
        """vm → worst fair-share shortfall ratio over its live disk flows."""
        fss = self.obs.telemetry.datacenter.fss
        worst: dict[str, float] = {}
        for flow in fss.active_flows:
            vm = flow.name.split(":", 1)[0]
            if vm not in self._vm_names:
                continue
            if classify(flow.name,
                        tuple(r.name for r in flow.path)) != "disk":
                continue
            if now - flow.start_time < self.MIN_LIVE_S:
                continue
            floor = min(
                r.capacity / max(1, len(fss.flows_through(r)))
                for r in dict.fromkeys(flow.path))
            ratio = floor / max(flow.rate, _EPS)
            if ratio > worst.get(vm, 0.0):
                worst[vm] = ratio
        return worst

    def tick(self, now: float) -> None:
        spec = self.book.spec("slow-disk")
        worst = self._shortfalls(now)
        for vm in sorted(self._vm_names):
            ratio = worst.get(vm, 1.0)
            if spec.violated_by(ratio) and self._link_suspect(vm, now):
                self._strikes[vm] = 0
                continue
            if spec.violated_by(ratio):
                self._strikes[vm] = self._strikes.get(vm, 0) + 1
                if self._strikes[vm] >= self.SUSTAIN:
                    self.book.fire(
                        "slow-disk", vm, ratio, "disk",
                        detail=f"disk flows at {ratio:.1f}x below the "
                               f"max-min fair share floor")
            else:
                self._strikes[vm] = 0
                self.book.resolve("slow-disk", vm)


class NodeLivenessDetector(Detector):
    """Crashed workers, and whole hosts losing all their residents.

    ``vm.failed`` / ``vm.recovered`` trace events carry node liveness;
    the host→residents map (snapshotted every tick, so a crashed host's
    final population is known) upgrades a simultaneous wipeout of one
    host's VMs to ``host-down``.
    """

    #: Failures of one host's VMs within this many seconds count as one
    #: correlated event.
    CORRELATION_S = 10.0

    prefixes = (EV.VM_FAILED, EV.VM_RECOVERED)

    def __init__(self, obs: "Observatory"):
        super().__init__(obs)
        self._host_of: dict[str, str] = {}
        self._residents: dict[str, set[str]] = {}
        self._failures: dict[str, dict[str, float]] = {}  # host → vm → t
        self._snapshot()

    def _snapshot(self) -> None:
        datacenter = self.obs.telemetry.datacenter
        if datacenter is None:
            return
        for machine in datacenter.machines:
            names = set(machine.vms)
            if names:
                self._residents[machine.name] = names
            for vm in names:
                self._host_of[vm] = machine.name

    def on_event(self, event) -> None:
        vm = event.source
        if event.kind == EV.VM_RECOVERED:
            self.book.resolve("node-down", vm)
            host = self._host_of.get(vm)
            if host is not None:
                self._failures.get(host, {}).pop(vm, None)
                self.book.resolve("host-down", host)
            return
        self.book.fire("node-down", vm, 0.0, "node",
                       detail="worker VM stopped responding")
        host = self._host_of.get(vm)
        if host is None:
            return
        fails = self._failures.setdefault(host, {})
        fails[vm] = event.time
        recent = {v for v, t in fails.items()
                  if event.time - t <= self.CORRELATION_S}
        residents = self._residents.get(host, set())
        if residents and recent >= residents:
            self.book.fire(
                "host-down", host, 0.0, "node",
                detail=f"all {len(residents)} resident VMs failed "
                       f"together")

    def tick(self, now: float) -> None:
        self._snapshot()


class ReplicationDetector(Detector):
    """Blocks below their replication target (namenode scan per tick)."""

    def __init__(self, obs: "Observatory"):
        super().__init__(obs)
        cluster = obs.cluster
        self._namenode = getattr(cluster, "namenode", None)
        self._target = (cluster.config.dfs_replication
                        if cluster is not None else 0)

    def tick(self, now: float) -> None:
        if self._namenode is None:
            return
        from repro.hdfs.replication import under_replicated
        short = under_replicated(self._namenode, self._target)
        if short:
            self.book.fire(
                "under-replicated", "hdfs", float(len(short)), "data",
                detail=f"{len(short)} blocks below replication "
                       f"{self._target}")
        else:
            self.book.resolve("under-replicated", "hdfs")


#: Default detector suite, construction order = evaluation order.
DEFAULT_DETECTORS = (
    StragglerDetector, SkewDetector, HostLoadDetector, LinkHealthDetector,
    DiskHealthDetector, NodeLivenessDetector, ReplicationDetector,
)
