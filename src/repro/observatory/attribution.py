"""Per-job bottleneck attribution from flow-level accounting.

``telemetry.bottleneck()`` answers the *cluster-wide* question (which
shared resource was busiest over the whole run).  This module answers the
per-job one: *what was each stretch of this job's critical path actually
waiting on?*

The fair-share engine hands every finished flow to the :class:`FlowLog`
(via ``FairShareSystem.flow_log``).  :func:`attribute` then walks the
job's :meth:`critical_path` segments and matches each span against the
flows that moved its bytes/cycles — by name-token intersection (task ids,
reduce-partition tokens, map ids appear in both span names and flow
names) plus interval containment for nested HDFS/NFS traffic.  Each
matched flow is classified into one of the paper's four contended
resource classes:

* ``cpu`` — VCPU/core fair-share flows;
* ``network`` — NIC / netback / bridge transfers (shuffle, splits, HDFS
  pipelines);
* ``disk`` — guest virtual-disk I/O (routed over the host NIC to the NFS
  backend — the paper's point that VM disk I/O *is* network traffic — but
  operationally the guest's disk);
* ``nfs`` — image-store traffic proper (boot fetches, job localization).

The blame of a segment is the class with the most covered seconds; path
gaps are explicit ``wait`` segments (heartbeat latency, slot queues,
phase barriers).  Coverage — the fraction of the makespan that is either
matched-flow time or attributed wait — is reported so thin attributions
are visible rather than silently wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.sim.trace import Span
from repro.telemetry import events as EV
from repro.telemetry.timeline import JobTimeline, PathSegment

_EPS = 1e-9

#: Resource classes a segment can be blamed on (plus ``wait``).
CLASSES = ("cpu", "network", "disk", "nfs")

_NET_SUFFIXES = (".nic", ".vnic", ".bridge", ".netback")


@dataclass(frozen=True)
class FlowRecord:
    """One finished fair-share flow, reduced to what attribution needs."""

    name: str
    klass: str                    # one of CLASSES
    resources: tuple[str, ...]    # resource names on the path
    start: float
    end: float
    size: float
    moved: float
    tokens: frozenset[str] = field(default=frozenset())

    @property
    def duration(self) -> float:
        return self.end - self.start


def classify(name: str, resources: Sequence[str]) -> str:
    """Map a flow onto its contended resource class."""
    if name.startswith("nfs:") or ":localize:" in name:
        return "nfs"
    for res in resources:
        if res.endswith(".disk"):
            return "disk"
    if any(res.startswith("nfs") for res in resources):
        # Guest virtual-disk I/O: the path is (host NIC, NFS vnic), but
        # what the guest experiences is its disk.
        return "disk"
    for res in resources:
        if res.endswith(_NET_SUFFIXES):
            return "network"
    return "cpu"


class FlowLog:
    """Append-only record of finished flows (``FairShareSystem.flow_log``).

    Duck-typed sink: the engine calls ``append(flow)`` with the live
    :class:`~repro.sim.fairshare.FluidFlow` once its rate/end_time are
    final; the log snapshots it immediately (the engine may reuse nothing,
    but the flow object stays mutable).
    """

    def __init__(self) -> None:
        self.records: list[FlowRecord] = []

    def append(self, flow) -> None:
        resources = tuple(r.name for r in flow.path)
        name = flow.name
        self.records.append(FlowRecord(
            name=name, klass=classify(name, resources),
            resources=resources, start=flow.start_time,
            end=flow.end_time, size=flow.size, moved=flow.transferred,
            tokens=frozenset(name.split(":"))))

    def __len__(self) -> int:
        return len(self.records)

    def between(self, start: float, end: float) -> list[FlowRecord]:
        return [r for r in self.records
                if r.end > start + _EPS and r.start < end - _EPS]


def _span_tokens(span: Span) -> set[str]:
    """Name tokens a span shares with the flows that served it."""
    if span.kind == EV.TASK_REDUCE:
        # Attempt spans are named "r-00005"; the reduce-side flows carry
        # the compact partition token "r5".
        try:
            return {f"r{int(span.name.rsplit('-', 1)[-1])}"}
        except ValueError:
            return {span.name}
    return set(span.name.split(":"))


@dataclass
class SegmentAttribution:
    """One critical-path segment with its flow-level blame."""

    start: float
    end: float
    label: str                    # span label or "wait"
    phase: str                    # "map" / "reduce" / "other"
    blame: str                    # one of CLASSES, or "wait"
    class_seconds: dict[str, float]
    covered_s: float              # union of matched-flow time (0 for wait)
    n_flows: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class JobBottleneckReport:
    """Per-job, per-phase bottleneck attribution."""

    job: str
    makespan: float
    segments: list[SegmentAttribution]

    @property
    def class_seconds(self) -> dict[str, float]:
        """Attributed seconds per class over the whole path (incl. wait)."""
        out: dict[str, float] = {}
        for seg in self.segments:
            if seg.blame == "wait":
                out["wait"] = out.get("wait", 0.0) + seg.duration
            else:
                for klass, s in seg.class_seconds.items():
                    out[klass] = out.get(klass, 0.0) + s
        return out

    def phase_seconds(self, phase: str) -> dict[str, float]:
        out: dict[str, float] = {}
        for seg in self.segments:
            if seg.phase != phase:
                continue
            if seg.blame == "wait":
                out["wait"] = out.get("wait", 0.0) + seg.duration
            else:
                for klass, s in seg.class_seconds.items():
                    out[klass] = out.get(klass, 0.0) + s
        return out

    @property
    def coverage(self) -> float:
        """Fraction of the makespan that is attributed (flows or waits)."""
        if self.makespan <= 0:
            return 0.0
        covered = sum(seg.covered_s if seg.blame != "wait"
                      else seg.duration for seg in self.segments)
        return min(1.0, covered / self.makespan)

    @property
    def dominant(self) -> str:
        """The class (excluding wait) with the most attributed seconds."""
        totals = self.class_seconds
        work = {k: v for k, v in totals.items() if k != "wait"}
        if not work:
            return "wait"
        return max(sorted(work), key=lambda k: work[k])

    def describe(self) -> str:
        totals = self.class_seconds
        order = [k for k in (*CLASSES, "wait") if k in totals]
        head = ", ".join(f"{k}={totals[k]:.2f}s" for k in order)
        lines = [f"bottleneck attribution of {self.job}: "
                 f"{self.makespan:.2f} s makespan, "
                 f"{self.coverage:.0%} attributed — {head}"]
        for seg in self.segments:
            lines.append(
                f"  {seg.start:9.2f} → {seg.end:9.2f} "
                f"{seg.duration:8.2f} s  [{seg.phase:<6}] "
                f"{seg.blame:<8} {seg.label}")
        return "\n".join(lines)


def _union(intervals: list[tuple[float, float]]) -> float:
    total = 0.0
    edge = float("-inf")
    for start, end in sorted(intervals):
        if end <= edge:
            continue
        total += end - max(start, edge)
        edge = end
    return total


def _phase_of(seg: PathSegment, phases: list[tuple[str, float, float]]
              ) -> str:
    mid = (seg.start + seg.end) / 2.0
    for label, start, end in phases:
        if start - _EPS <= mid <= end + _EPS:
            return label
    return "other"


def attribute(timeline: JobTimeline, flow_log: FlowLog
              ) -> JobBottleneckReport:
    """Blame each critical-path segment on a contended resource class."""
    path = timeline.critical_path()
    phases = []
    for span in timeline.by_kind(EV.PHASE_MAP):
        phases.append(("map", span.start, span.end))
    for span in timeline.by_kind(EV.PHASE_REDUCE):
        phases.append(("reduce", span.start, span.end))

    # Token → records index over the job window only.
    window = flow_log.between(path.start, path.end)
    index: dict[str, list[FlowRecord]] = {}
    for record in window:
        for token in record.tokens:
            index.setdefault(token, []).append(record)

    segments: list[SegmentAttribution] = []
    for seg in path.segments:
        phase = _phase_of(seg, phases)
        if seg.span is None:
            segments.append(SegmentAttribution(
                start=seg.start, end=seg.end, label="wait", phase=phase,
                blame="wait", class_seconds={}, covered_s=0.0, n_flows=0))
            continue
        span = seg.span
        category = EV.category_of(span.kind)
        tokens = _span_tokens(span)
        matched: dict[int, FlowRecord] = {}
        for token in tokens:
            for record in index.get(token, ()):
                matched[id(record)] = record
        if category in ("task", "hdfs"):
            # Nested HDFS traffic (pipeline transfers, datanode writes)
            # is named by block id, which no span name carries — claim
            # flows fully inside the span that look like DFS traffic.
            for token in ("dfs", "hdfs"):
                for record in index.get(token, ()):
                    if (record.start >= span.start - _EPS
                            and record.end <= span.end + _EPS):
                        matched[id(record)] = record
        if category in ("vm", "migration"):
            # Boot-time image fetches and migration copies carry the VM
            # name or hit the image store.
            for token in ("nfs", *span.name.split(":")):
                for record in index.get(token, ()):
                    if (record.end > span.start + _EPS
                            and record.start < span.end - _EPS):
                        matched[id(record)] = record

        by_class: dict[str, list[tuple[float, float]]] = {}
        clipped: list[tuple[float, float]] = []
        n_flows = 0
        for record in matched.values():
            start = max(record.start, seg.start)
            end = min(record.end, seg.end)
            if end - start <= _EPS:
                continue
            n_flows += 1
            by_class.setdefault(record.klass, []).append((start, end))
            clipped.append((start, end))
        class_seconds = {klass: _union(intervals)
                         for klass, intervals in by_class.items()}
        if class_seconds:
            blame = max(sorted(class_seconds),
                        key=lambda k: class_seconds[k])
        else:
            blame = "cpu" if category == "task" else "wait"
        segments.append(SegmentAttribution(
            start=seg.start, end=seg.end, label=seg.label, phase=phase,
            blame=blame, class_seconds=class_seconds,
            covered_s=_union(clipped), n_flows=n_flows))

    return JobBottleneckReport(job=path.job, makespan=path.makespan,
                               segments=segments)
