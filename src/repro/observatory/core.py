"""The :class:`Observatory` — online detection wired onto one cluster.

An observatory attaches to a telemetry facade (and optionally its
cluster, for namenode access), registers the SLO catalogue, subscribes
its detectors to the tracer, and runs a periodic sim process that gives
every detector a ``tick``.  While running it:

* fires/resolves :class:`~repro.observatory.slo.Alert`\\ s through one
  :class:`~repro.observatory.slo.AlertBook` (also emitted as
  ``observatory.alert.*`` trace events);
* keeps the flow log enabled so per-job bottleneck attribution
  (:func:`~repro.observatory.attribution.attribute`) has data;
* maintains the incremental nmon rolling window the report renders.

The observatory is strictly read-only with respect to the simulation: it
opens no flows, consumes no randomness, and only adds its own timeout
events — so a detectors-on run leaves simulated outputs and the engine's
deterministic counters bit-identical (checked by
``benchmarks/perf/perf_bench.py --observatory``).

Stop it (:meth:`Observatory.stop`) once the workload is done: like the
nmon monitor, its parked tick timeout is withdrawn so it neither keeps
the simulation alive nor drags the clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import MonitorError
from repro.observatory.detectors import DEFAULT_DETECTORS, Detector
from repro.observatory.slo import DEFAULT_SLOS, Alert, AlertBook, SloSpec
from repro.sim.kernel import Event, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitor.window import RollingWindow
    from repro.observatory.attribution import JobBottleneckReport
    from repro.observatory.report import ObservatoryReport
    from repro.telemetry.facade import Telemetry


class Observatory:
    """Online anomaly detection + SLO alerting for one cluster scope."""

    def __init__(self, telemetry: "Telemetry", cluster=None,
                 slos: Sequence[SloSpec] = DEFAULT_SLOS,
                 interval: float = 5.0, window: float = 30.0,
                 detectors: Sequence[type] = DEFAULT_DETECTORS):
        if interval <= 0:
            raise MonitorError(f"interval must be > 0, got {interval}")
        self.telemetry = telemetry
        self.cluster = cluster
        self.sim = telemetry.sim
        self.interval = float(interval)
        self.window_s = float(window)
        self.book = AlertBook(self.sim, telemetry.tracer)
        for spec in slos:
            self.book.register(spec)
        #: Shared fair-share resources the load/link detectors watch.
        self.resources = telemetry.shared_resources()
        self.detectors: list[Detector] = [cls(self) for cls in detectors]
        self.nmon_window: Optional["RollingWindow"] = None
        self.ticks = 0
        self._running = False
        self._proc: Optional[Process] = None
        self._pending: Optional[Event] = None
        self._started_monitor = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Observatory":
        """Begin watching (idempotent); returns self for chaining."""
        if self._running:
            return self
        self._running = True
        self.telemetry.enable_flow_log()
        if self.telemetry.vms:
            monitor = self.telemetry.monitor
            if not monitor.running:
                self.telemetry.start_monitor()
                self._started_monitor = True
            self.nmon_window = self.telemetry.rolling_window(self.window_s)
        for detector in self.detectors:
            for prefix in detector.prefixes:
                self.telemetry.tracer.subscribe(detector.on_event, prefix)
        self._proc = self.sim.process(self._ticker(), name="observatory")
        return self

    def stop(self) -> None:
        """Stop ticking and withdraw the parked wakeup (idempotent)."""
        if not self._running:
            return
        self._running = False
        for detector in self.detectors:
            if detector.prefixes:
                self.telemetry.tracer.unsubscribe(detector.on_event)
        if self._pending is not None and not self._pending.processed:
            self._pending.cancel()
        self._pending = None
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("observatory stopped")
        self._proc = None
        if self._started_monitor:
            self.telemetry.stop_monitor()
            self._started_monitor = False

    def _ticker(self):
        while self._running:
            self.tick_now()
            self._pending = self.sim.timeout(self.interval)
            try:
                yield self._pending
            except Interrupt:
                return None
            finally:
                self._pending = None
        return None

    def tick_now(self) -> None:
        """Run one detector evaluation pass at the current sim time."""
        now = self.sim.now
        self.ticks += 1
        if self.nmon_window is not None:
            self.nmon_window.advance(now)
        for detector in self.detectors:
            detector.tick(now)

    # -- queries -----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def alerts(self, slo: Optional[str] = None) -> list[Alert]:
        """Full alert history (optionally one SLO's)."""
        return self.book.history(slo)

    def active_alerts(self, slo: Optional[str] = None) -> list[Alert]:
        return self.book.active(slo)

    def digest(self) -> str:
        """Deterministic content digest of the alert history."""
        return self.book.digest()

    def attribution(self, job_name: str) -> "JobBottleneckReport":
        """Per-job critical-path bottleneck attribution."""
        return self.telemetry.attribution(job_name)

    def report(self, job: Optional[str] = None) -> "ObservatoryReport":
        """Assemble the renderable report (terminal and HTML)."""
        from repro.observatory.report import build_report
        return build_report(self, job=job)

    def __repr__(self) -> str:  # pragma: no cover
        state = "running" if self._running else "stopped"
        return (f"<Observatory {state} detectors={len(self.detectors)} "
                f"alerts={len(self.book.alerts)}>")
