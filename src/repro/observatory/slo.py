"""Declarative SLOs and the alert book.

An :class:`SloSpec` names one observable *signal*, a threshold and a
direction; the detectors (:mod:`repro.observatory.detectors`) evaluate the
signal and, on violation, **fire** an alert against a concrete *target*
(a task id, a VM, a host, a link).  The :class:`AlertBook` deduplicates —
one active :class:`Alert` per ``(slo, target)`` pair, updated in place
while the violation persists — and records fire/resolve edges both as
immutable history and as ``observatory.alert.*`` trace events.

Alerts carry an *attribution* — the resource class the detector blames
(``cpu`` / ``network`` / ``disk`` / ``nfs`` / ``node`` / ``data``) — which
is what the chaos validation matrix checks and what the alert-driven tuner
rules key on.

Everything here is deterministic: :meth:`AlertBook.digest` hashes the full
fire/resolve history with fixed float formatting, so two same-seed runs
must produce byte-identical digests (asserted in CI).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import MonitorError
from repro.telemetry import events as EV

#: Alert severities, mildest first (index = rank).
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a named signal."""

    name: str                 # e.g. "straggler-task"
    signal: str               # e.g. "task.runtime.madscore"
    threshold: float
    severity: str = "warning"
    direction: str = "above"  # violate when value is above/below threshold
    description: str = ""

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise MonitorError(f"unknown severity {self.severity!r}")
        if self.direction not in ("above", "below"):
            raise MonitorError(f"unknown direction {self.direction!r}")

    def violated_by(self, value: float) -> bool:
        if self.direction == "above":
            return value > self.threshold
        return value < self.threshold


@dataclass
class Alert:
    """One (possibly still active) SLO violation against one target."""

    slo: str
    target: str
    severity: str
    attribution: str          # blamed resource class
    fired_at: float
    value: float              # signal value when fired (worst seen)
    detail: str = ""
    resolved_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    @property
    def duration(self) -> Optional[float]:
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.fired_at

    def describe(self) -> str:
        state = ("ACTIVE" if self.active
                 else f"resolved @ {self.resolved_at:.2f}")
        return (f"[{self.severity:>8}] {self.slo:<18} {self.target:<14} "
                f"value={self.value:.3f} blames={self.attribution:<8} "
                f"fired @ {self.fired_at:.2f}  {state}"
                + (f"  — {self.detail}" if self.detail else ""))


#: The catalogue the observatory watches by default.  Thresholds are
#: deliberately *relative/robust* (MAD scores, ratios to peer medians,
#: fractions of nominal capacity) so a healthy but busy cluster fires
#: nothing — the chaos matrix asserts zero alerts on the fault-free run.
DEFAULT_SLOS: tuple[SloSpec, ...] = (
    SloSpec("straggler-task", "task.runtime.madscore", 4.0, "warning",
            description="attempt runtime is a robust outlier vs the "
                        "phase's finished-attempt distribution"),
    # Hash partitioning of Zipfian data (natural text, sorted keys) sits
    # near 3x on small reduce counts, so the skew bar clears it: only a
    # genuinely hot key (adversarial hotkey mixes drive 4.5x+) fires.
    SloSpec("reducer-skew", "shuffle.partition.imbalance", 4.0, "warning",
            description="largest reduce partition's shuffle bytes vs the "
                        "median partition"),
    SloSpec("hot-host", "host.cpu.busy", 0.9, "warning",
            description="host CPU busy fraction over the rolling window, "
                        "and well above the cluster median"),
    SloSpec("degraded-link", "link.capacity.fraction", 0.5, "critical",
            direction="below",
            description="saturated NIC moving traffic far below its "
                        "nominal capacity"),
    SloSpec("partitioned-link", "link.capacity.fraction", 0.01, "critical",
            direction="below",
            description="NIC effectively unable to move any traffic"),
    SloSpec("slow-disk", "disk.rate.ratio", 3.0, "critical",
            description="VM disk flows running this far below their "
                        "max-min fair-share floor, sustained"),
    SloSpec("node-down", "vm.alive", 1.0, "critical", direction="below",
            description="worker VM stopped heartbeating (vm.failed)"),
    SloSpec("host-down", "host.vms.alive", 1.0, "critical",
            direction="below",
            description="every resident VM of one host failed together"),
    SloSpec("under-replicated", "hdfs.replication.shortfall", 0.0,
            "warning",
            description="blocks below their replication target"),
)


#: Service-mode SLOs (:mod:`repro.cloud.controller` evaluates these each
#: control tick; the autoscaler keys on them).  Targets are the service
#: name, so one alert per service per condition.  Thresholds are relative
#: (backlog per slot, p99-vs-target ratio, rejection fraction) so a
#: provisioned-for-its-load service fires nothing — the experiments assert
#: zero alerts on the clean steady run.
SERVICE_SLOS: tuple[SloSpec, ...] = (
    SloSpec("service-backlog", "service.backlog.per_slot", 3.0, "warning",
            description="queued jobs per schedulable slot — sustained "
                        "values mean the pool is underprovisioned"),
    SloSpec("service-p99", "service.latency.p99.ratio", 1.0, "warning",
            description="rolling p99 completion latency over the tenant "
                        "latency target"),
    SloSpec("service-rejection", "service.rejection.rate", 0.05, "critical",
            description="fraction of recent arrivals rejected by "
                        "admission control"),
)


class AlertBook:
    """Fire/resolve ledger with one active alert per (slo, target)."""

    def __init__(self, sim=None, tracer=None):
        self.sim = sim
        self.tracer = tracer
        self.slos: dict[str, SloSpec] = {}
        self.alerts: list[Alert] = []       # full history, fire order
        self._active: dict[tuple[str, str], Alert] = {}

    def register(self, spec: SloSpec) -> None:
        self.slos[spec.name] = spec

    def spec(self, name: str) -> SloSpec:
        try:
            return self.slos[name]
        except KeyError:
            raise MonitorError(f"unregistered SLO {name!r}") from None

    @property
    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    # -- fire / resolve ----------------------------------------------------
    def fire(self, slo: str, target: str, value: float,
             attribution: str, detail: str = "") -> Alert:
        """Raise (or refresh) the alert for ``(slo, target)``.

        While active, repeated fires keep the original ``fired_at`` and
        retain the *worst* observed value.
        """
        spec = self.spec(slo)
        key = (slo, target)
        alert = self._active.get(key)
        if alert is not None:
            worse = (value > alert.value if spec.direction == "above"
                     else value < alert.value)
            if worse:
                alert.value = value
                if detail:
                    alert.detail = detail
            return alert
        alert = Alert(slo=slo, target=target, severity=spec.severity,
                      attribution=attribution, fired_at=self._now,
                      value=value, detail=detail)
        self._active[key] = alert
        self.alerts.append(alert)
        if self.tracer is not None:
            self.tracer.emit(self._now, EV.OBSERVATORY_ALERT_FIRED, target,
                             slo=slo, severity=spec.severity,
                             attribution=attribution, value=value)
        return alert

    def resolve(self, slo: str, target: str) -> Optional[Alert]:
        """Clear the active alert for ``(slo, target)`` if any."""
        alert = self._active.pop((slo, target), None)
        if alert is None:
            return None
        alert.resolved_at = self._now
        if self.tracer is not None:
            self.tracer.emit(self._now, EV.OBSERVATORY_ALERT_RESOLVED,
                             target, slo=slo, severity=alert.severity)
        return alert

    # -- queries -----------------------------------------------------------
    def active(self, slo: Optional[str] = None) -> list[Alert]:
        out = [a for a in self.alerts if a.active]
        if slo is not None:
            out = [a for a in out if a.slo == slo]
        return out

    def history(self, slo: Optional[str] = None) -> list[Alert]:
        if slo is None:
            return list(self.alerts)
        return [a for a in self.alerts if a.slo == slo]

    def is_active(self, slo: str, target: str) -> bool:
        return (slo, target) in self._active

    def count(self, slo: Optional[str] = None) -> int:
        return len(self.history(slo))

    # -- determinism -------------------------------------------------------
    def digest(self) -> str:
        """Stable content digest over the full fire/resolve history.

        Floats are fixed-formatted so the digest is byte-stable; two
        same-seed runs must agree (asserted by tests and the CI
        ``observatory-smoke`` job).
        """
        h = hashlib.sha256()
        for a in sorted(self.alerts,
                        key=lambda a: (a.fired_at, a.slo, a.target)):
            resolved = ("%.6f" % a.resolved_at
                        if a.resolved_at is not None else "active")
            h.update((f"{a.slo}|{a.target}|{a.severity}|{a.attribution}|"
                      f"{a.fired_at:.6f}|{resolved}|{a.value:.6f}\n")
                     .encode("utf-8"))
        return h.hexdigest()[:16]

    def describe(self) -> str:
        if not self.alerts:
            return "no alerts"
        return "\n".join(a.describe() for a in self.alerts)
