"""The elastic cluster-per-job service.

Lifecycle of one request:

1. **queue** — requests wait until the datacenter has DRAM for the
   requested cluster (admission is capacity-based, FIFO with skipping of
   requests that cannot currently fit behind ones that can);
2. **provision** — VMs are placed greedily on the hosts with the most free
   DRAM and booted from the NFS image store (timed: image fetch + guest
   boot), then assembled into a :class:`HadoopVirtualCluster`;
3. **stage + run** — the request's input is uploaded (timed) and its job
   executed by the MapReduce engine;
4. **collect + teardown** — output records are gathered, the VMs stopped,
   and the DRAM returned to the pool, admitting waiting requests.

Multiple requests run concurrently when capacity allows — the service is
the elasticity layer the paper's future-work section sketches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.cloud.admission import (ADMIT, DEFER, REJECT_IMPOSSIBLE,
                                   AgingFifoGate)
from repro.config import HadoopConfig, VMConfig
from repro.errors import ConfigError, PlacementError
from repro.hdfs.client import default_sizeof
from repro.mapreduce.job import Job
from repro.mapreduce.runner import JobReport, MapReduceRunner
from repro.platform.cluster import HadoopVirtualCluster
from repro.platform.vhadoop import VHadoopPlatform
from repro.scheduler import JobScheduler, SchedulerReport, SchedulingPolicy
from repro.sim.kernel import Event
from repro.telemetry import events as EV

#: A request's job factory receives the input path and an output path.
JobFactory = Callable[[str, str], Job]


@dataclass
class ServiceRequest:
    """One on-demand computation."""

    name: str
    n_nodes: int
    records: Sequence[Any]
    make_job: JobFactory
    sizeof: Callable[[Any], int] = default_sizeof
    vm_config: Optional[VMConfig] = None
    hadoop_config: Optional[HadoopConfig] = None
    #: Who submitted it — admission decisions and service accounting key
    #: on this (see :mod:`repro.cloud.tenants`).
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigError("a request needs >= 2 nodes (master + worker)")
        if not self.records:
            raise ConfigError(f"request {self.name!r} has no input records")


@dataclass
class ServiceOutcome:
    """What the requester gets back."""

    request: ServiceRequest
    submitted_at: float
    started_at: float = 0.0      # when provisioning began
    finished_at: float = 0.0
    report: Optional[JobReport] = None
    output: list = field(default_factory=list)

    @property
    def queue_wait_s(self) -> float:
        return self.started_at - self.submitted_at

    @property
    def total_s(self) -> float:
        return self.finished_at - self.submitted_at


@dataclass
class _QueueEntry:
    """A waiting request plus how often younger requests jumped past it."""

    request: ServiceRequest
    done: Event
    outcome: ServiceOutcome
    skips: int = 0
    #: Whether the defer decision has been announced (one telemetry event
    #: per stay in the queue, not one per admission scan).
    deferred: bool = False


class OnDemandVHadoopService:
    """Elastic cluster-per-job execution over one platform.

    ``max_head_skips`` is the aging guard on admission: once the oldest
    waiting request has been skipped by that many younger admissions, the
    scan stops at it — capacity drains until the head fits, so a large
    request can no longer starve behind an endless stream of small ones.
    ``None`` restores the unbounded legacy behaviour.
    """

    def __init__(self, platform: VHadoopPlatform,
                 max_head_skips: Optional[int] = 16):
        self._gate = AgingFifoGate(max_head_skips)
        self.platform = platform
        self.datacenter = platform.datacenter
        self.sim = platform.sim
        self._queue: list[_QueueEntry] = []
        self._ids = itertools.count()
        self.completed: list[ServiceOutcome] = []

    @property
    def max_head_skips(self) -> Optional[int]:
        return self._gate.max_head_skips

    # -- public --------------------------------------------------------------
    def submit(self, request: ServiceRequest) -> Event:
        """Queue a request; the event's value is a :class:`ServiceOutcome`.

        A request that could never fit the datacenter — more nodes than
        its total (empty) capacity holds — is rejected synchronously with
        :class:`~repro.errors.PlacementError` instead of queueing forever.
        """
        capacity = self._max_possible_nodes(request)
        if request.n_nodes > capacity:
            self._announce(request, REJECT_IMPOSSIBLE,
                           f"n_nodes={request.n_nodes} > datacenter "
                           f"capacity {capacity}")
            raise PlacementError(
                f"request {request.name!r} wants {request.n_nodes} nodes "
                f"but the datacenter can host at most {capacity} VMs of "
                f"its size")
        done = self.sim.event()
        outcome = ServiceOutcome(request=request, submitted_at=self.sim.now)
        self._queue.append(_QueueEntry(request, done, outcome))
        self._admit()
        return done

    def run_all(self, events: Sequence[Event]) -> list[ServiceOutcome]:
        """Drive the simulator until every given request completes."""
        gate = self.sim.all_of(list(events))
        self.sim.run_until(gate)
        return [events_value for events_value in
                (event.value for event in events)]

    @property
    def queued(self) -> int:
        return len(self._queue)

    # -- capacity ---------------------------------------------------------------
    def _vm_memory(self, request: ServiceRequest) -> int:
        config = request.vm_config or self.datacenter.config.vm
        return config.memory

    def _fits(self, request: ServiceRequest) -> bool:
        memory = self._vm_memory(request)
        slots = sum(machine.dram_free // memory
                    for machine in self.datacenter.machines)
        return slots >= request.n_nodes

    def _max_possible_nodes(self, request: ServiceRequest) -> int:
        """VMs of this request's size an *empty* datacenter could host."""
        memory = self._vm_memory(request)
        return sum(machine.config.guest_dram // memory
                   for machine in self.datacenter.machines)

    def _announce(self, request: ServiceRequest, decision: str,
                  reason: str) -> None:
        """Emit the admission-decision telemetry event (one per verdict)."""
        self.datacenter.tracer.emit(
            self.sim.now, EV.CLOUD_ADMISSION, request.name,
            tenant=request.tenant, decision=decision, reason=reason)

    def _admit(self) -> None:
        """Start every queued request that currently fits (FIFO scan with
        bounded skipping — see :class:`~repro.cloud.admission.AgingFifoGate`).

        Admission reserves the cluster's DRAM *synchronously* (a hold per
        VM) so that several same-instant admissions cannot double-book the
        capacity; the hold is swapped for real VM residency when the serve
        process provisions.  Each verdict is announced as a
        ``cloud.admission.decision`` event: ``admit`` when a request
        starts, ``defer`` the first time it is left waiting.
        """
        for entry in self._gate.admittable(
                self._queue, lambda e: self._fits(e.request)):
            request = entry.request
            self._queue.remove(entry)
            hosts = self._place(request)
            memory = self._vm_memory(request)
            for machine in hosts:
                machine.reserve_dram(memory, f"svc-hold:{request.name}")
            self._announce(request, ADMIT,
                           f"fits n_nodes={request.n_nodes}"
                           + (f" after {entry.skips} skips"
                              if entry.skips else ""))
            self.sim.process(
                self._serve(request, entry.done, entry.outcome, hosts),
                name=f"svc:{request.name}")
        for entry in self._queue:
            if not entry.deferred:
                entry.deferred = True
                self._announce(entry.request, DEFER,
                               f"insufficient capacity for "
                               f"n_nodes={entry.request.n_nodes}")

    # -- serving -------------------------------------------------------------
    def _place(self, request: ServiceRequest) -> list:
        """Greedy biggest-gap placement; returns one machine per VM."""
        memory = self._vm_memory(request)
        budget = {m.name: m.dram_free for m in self.datacenter.machines}
        hosts = []
        for _ in range(request.n_nodes):
            machine = max(self.datacenter.machines,
                          key=lambda m: budget[m.name])
            if budget[machine.name] < memory:
                raise PlacementError(
                    f"capacity vanished while placing {request.name!r}")
            budget[machine.name] -= memory
            hosts.append(machine)
        return hosts

    def _serve(self, request: ServiceRequest, done: Event,
               outcome: ServiceOutcome, hosts: list):
        outcome.started_at = self.sim.now
        instance = next(self._ids)
        cluster_name = f"svc-{request.name}-{instance}"

        # Swap the admission holds for real VM residency — atomic: no
        # simulated time passes between the release and the placements.
        memory = self._vm_memory(request)
        vms = []
        for i, machine in enumerate(hosts):
            machine.release_dram(memory)
            vms.append(self.datacenter.create_vm(
                f"{cluster_name}-vm{i:02d}", machine,
                config=request.vm_config))
        boots = [self.datacenter.boot_vm(vm) for vm in vms]
        yield self.sim.all_of(boots)

        cluster = HadoopVirtualCluster(cluster_name, self.datacenter,
                                       vms[0], vms[1:],
                                       config=request.hadoop_config)
        runner = MapReduceRunner(cluster)
        try:
            # Stage input (timed) and run.
            input_path = f"/{cluster_name}/input"
            upload = cluster.dfs.write_file(cluster.master, input_path,
                                            request.records,
                                            sizeof=request.sizeof)
            yield upload
            job = request.make_job(input_path, f"/{cluster_name}/output")
            report = yield runner.submit(job)
            outcome.report = report
            outcome.output = runner.read_output(report)
        finally:
            # Teardown: stop every VM, returning DRAM to the pool.
            for vm in vms:
                if vm.host is not None:
                    vm.stop()
            outcome.finished_at = self.sim.now
            self.completed.append(outcome)
            self.datacenter.tracer.emit(
                self.sim.now, EV.CLOUD_REQUEST_DONE, request.name,
                total=outcome.total_s, waited=outcome.queue_wait_s)
            self._admit()  # freed capacity may admit queued requests
        done.succeed(outcome)
        return outcome


class SharedVHadoopService:
    """Multi-tenant execution on one long-lived shared cluster.

    Where :class:`OnDemandVHadoopService` boots a cluster per job, this
    mode keeps one :class:`HadoopVirtualCluster` warm and pushes every
    request through a :class:`~repro.scheduler.JobScheduler` — no boot or
    teardown cost per job, jobs interleave at slot granularity, and tenants
    are isolated by scheduler pools.  ``request.n_nodes`` is ignored: the
    cluster is whatever was provisioned.
    """

    def __init__(self, platform: VHadoopPlatform,
                 cluster: HadoopVirtualCluster,
                 policy: Optional[SchedulingPolicy] = None):
        self.platform = platform
        self.cluster = cluster
        self.sim = platform.sim
        self.scheduler = JobScheduler(
            cluster, policy=policy,
            runner=platform.runners.get(cluster.name))
        self._ids = itertools.count()
        self.completed: list[ServiceOutcome] = []

    def submit(self, request: ServiceRequest,
               pool: str = "default") -> Event:
        """Stage the request's input and submit its job to ``pool``; the
        event's value is a :class:`ServiceOutcome`."""
        done = self.sim.event()
        outcome = ServiceOutcome(request=request, submitted_at=self.sim.now)
        instance = next(self._ids)
        base = f"/shared/{request.name}-{instance}"
        self.sim.process(self._serve(request, pool, base, done, outcome),
                         name=f"shared-svc:{request.name}")
        return done

    def _serve(self, request: ServiceRequest, pool: str, base: str,
               done: Event, outcome: ServiceOutcome):
        outcome.started_at = self.sim.now
        upload = self.cluster.dfs.write_file(
            self.cluster.master, f"{base}/input", request.records,
            sizeof=request.sizeof)
        yield upload
        job = request.make_job(f"{base}/input", f"{base}/output")
        report = yield self.scheduler.submit(job, pool=pool)
        outcome.report = report
        outcome.output = self.scheduler.runner.read_output(report)
        outcome.finished_at = self.sim.now
        self.completed.append(outcome)
        self.cluster.tracer.emit(
            self.sim.now, EV.CLOUD_REQUEST_DONE, request.name,
            total=outcome.total_s, waited=outcome.queue_wait_s, shared=True)
        done.succeed(outcome)
        return outcome

    def run_all(self, events: Sequence[Event]) -> list[ServiceOutcome]:
        """Drive the simulator until every given request completes."""
        gate = self.sim.all_of(list(events))
        self.sim.run_until(gate)
        return [event.value for event in events]

    def scheduler_report(self) -> SchedulerReport:
        return self.scheduler.finalize()
