"""Alert-driven elastic autoscaling — the first closed control loop.

The observatory (and the service controller's own SLO evaluation) write
into an :class:`~repro.observatory.slo.AlertBook`; the
:class:`ElasticAutoscaler` *acts* on it, driving an
:class:`~repro.platform.provisioning.ElasticWorkerPool`:

* **scale out** on ``service-backlog`` / ``service-p99`` alerts — a fresh
  fire, or one still active after the cooldown (the book deduplicates,
  so a persisting violation fires exactly once; acting only on fires
  would scale once and stall);
* **replace** capacity on fresh ``node-down`` alerts, bypassing the
  cooldown — lost workers are not a demand signal;
* **avoid** the targets of active ``hot-host`` alerts when placing new
  VMs;
* **scale in** conservatively: only after ``scale_in_ticks`` consecutive
  ticks of low utilisation with no active service alerts, one worker at
  a time, never below the pool's floor — so a clean, correctly
  provisioned run never churns.

Alert consumption follows the tuner's one-shot cursor contract
(:class:`AlertCursor`): each rule keeps a position in the book's
append-only history and processes every fire exactly once, while *active*
state is re-read live.  Decisions are pure functions of (book, pool,
utilisation), so same-seed runs scale identically — the action log and
``cloud.autoscale.action`` events are digest-pinned in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.observatory.slo import Alert, AlertBook
from repro.telemetry import events as EV


class AlertCursor:
    """One-shot consumer of one SLO's fire history in an alert book.

    ``fresh()`` returns every alert of the SLO fired since the last call
    — each fire is seen exactly once, the same contract as the tuner's
    alert-driven rules.  Resolves are *not* replayed; callers needing
    live state use :meth:`AlertBook.active`.
    """

    def __init__(self, book: AlertBook, slo: str):
        self.book = book
        self.slo = slo
        self._cursor = 0

    def fresh(self) -> list[Alert]:
        history = self.book.history(self.slo)
        new = history[self._cursor:]
        self._cursor = len(history)
        return new


@dataclass(frozen=True)
class ScalingAction:
    """One actuation the autoscaler performed."""

    at: float
    action: str        # grow / shrink / replace
    amount: int        # workers started or drains initiated
    trigger: str       # slo name, or "utilization" for scale-in
    size_after: int    # pool.size after acting
    detail: str = ""

    def line(self) -> str:
        return (f"{self.at:.6f}|{self.action}|{self.amount}|{self.trigger}|"
                f"{self.size_after}|{self.detail}")


class ElasticAutoscaler:
    """Drives an ElasticWorkerPool from alert-book state, once per tick."""

    #: SLOs whose alerts mean "add capacity".
    SCALE_OUT_SLOS = ("service-backlog", "service-p99")

    def __init__(self, pool, book: AlertBook, service: str = "service",
                 cooldown_s: float = 120.0, grow_step: int = 2,
                 scale_in_util: float = 0.3, scale_in_ticks: int = 6,
                 tracer=None, metrics=None):
        if cooldown_s < 0:
            raise ConfigError("cooldown_s must be >= 0")
        if grow_step < 1:
            raise ConfigError("grow_step must be >= 1")
        if not 0.0 <= scale_in_util < 1.0:
            raise ConfigError("scale_in_util must be in [0, 1)")
        if scale_in_ticks < 1:
            raise ConfigError("scale_in_ticks must be >= 1")
        self.pool = pool
        self.book = book
        self.service = service
        self.cooldown_s = cooldown_s
        self.grow_step = grow_step
        self.scale_in_util = scale_in_util
        self.scale_in_ticks = scale_in_ticks
        self.tracer = tracer
        self.metrics = metrics
        self.actions: list[ScalingAction] = []
        self._out_cursors = [AlertCursor(book, slo)
                             for slo in self.SCALE_OUT_SLOS]
        self._down_cursor = AlertCursor(book, "node-down")
        self._last_grow_at: Optional[float] = None
        self._low_ticks = 0

    # -- the control step --------------------------------------------------
    def tick(self, now: float, utilization: float) -> list[ScalingAction]:
        """One control decision; returns the actions taken this tick."""
        taken: list[ScalingAction] = []
        avoid = self.avoid_hosts()

        # Replacement: every fresh node-down alert is capacity already
        # lost — grow immediately, no cooldown (not a demand signal).
        down = self._down_cursor.fresh()
        if down:
            started = self.pool.grow(len(down), avoid_hosts=avoid)
            if started:
                taken.append(self._record(
                    now, "replace", started, "node-down",
                    detail=",".join(sorted(a.target for a in down))))

        # Scale-out: fresh fires always qualify; a still-active alert
        # qualifies again once the cooldown has elapsed (the book fires
        # once per violation episode — see module docstring).
        trigger = None
        for cursor in self._out_cursors:
            if cursor.fresh():
                trigger = cursor.slo
                break
        in_cooldown = (self._last_grow_at is not None
                       and now - self._last_grow_at < self.cooldown_s)
        if trigger is None and not in_cooldown:
            for slo in self.SCALE_OUT_SLOS:
                if self.book.active(slo):
                    trigger = slo
                    break
        if trigger is not None and not in_cooldown:
            started = self.pool.grow(self.grow_step, avoid_hosts=avoid)
            if started:
                self._last_grow_at = now
                taken.append(self._record(now, "grow", started, trigger))

        # Scale-in: sustained low utilisation, no active service alerts.
        calm = not any(self.book.active(slo)
                       for slo in self.SCALE_OUT_SLOS + ("node-down",))
        if calm and utilization < self.scale_in_util and trigger is None:
            self._low_ticks += 1
            if self._low_ticks >= self.scale_in_ticks:
                self._low_ticks = 0
                stopped = self.pool.shrink(1)
                if stopped:
                    taken.append(self._record(
                        now, "shrink", stopped, "utilization",
                        detail=f"util={utilization:.3f}"))
        else:
            self._low_ticks = 0

        if self.metrics is not None:
            self.metrics.gauge(
                "service.workers.elastic", "elastic pool size",
                {"service": self.service}).set(self.pool.size)
        return taken

    def avoid_hosts(self) -> set[str]:
        """Hosts currently under an active hot-host alert."""
        return {a.target for a in self.book.active("hot-host")}

    def _record(self, now: float, action: str, amount: int, trigger: str,
                detail: str = "") -> ScalingAction:
        record = ScalingAction(at=now, action=action, amount=amount,
                               trigger=trigger, size_after=self.pool.size,
                               detail=detail)
        self.actions.append(record)
        if self.tracer is not None:
            self.tracer.emit(now, EV.CLOUD_AUTOSCALE, self.service,
                             action=action, amount=amount, trigger=trigger,
                             size=self.pool.size)
        return record
