"""Open-loop traffic for the always-on service.

Arrival processes generate timestamped :class:`Arrival` records *lazily*
(``stream(horizon)`` is an iterator — a million-submission run never holds
a million objects at once) and *deterministically*: every draw comes from
one named RNG stream, so the same seed yields a byte-identical trace,
pinned by :func:`trace_digest` in tests and CI.

Open-loop means arrival times never depend on service state — the
generator keeps offering load whether or not the service keeps up, which
is what makes backlog growth, load shedding and autoscaling observable at
all (a closed loop self-throttles and hides them).

Shapes:

* :class:`PoissonTraffic` — homogeneous Poisson at a fixed rate;
* :class:`DiurnalTraffic` — sinusoidal day/night rate (thinning);
* :class:`BurstTraffic` — base rate with periodic multiplied bursts;
* :class:`TraceReplay` — replays a recorded list verbatim.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.cloud.tenants import TenantRegistry
from repro.errors import ConfigError

#: (class name, min MB, max MB, probability) — the service job mix.
JOB_CLASSES: tuple[tuple[str, float, float, float], ...] = (
    ("small", 16.0, 128.0, 0.60),
    ("medium", 128.0, 1024.0, 0.30),
    ("large", 1024.0, 8192.0, 0.10),
)


def mean_job_size_mb() -> float:
    """Expected job size under the mix (log-uniform mean per class),
    used to size service capacity against an offered arrival rate."""
    return sum(prob * (hi - lo) / math.log(hi / lo)
               for _, lo, hi, prob in JOB_CLASSES)


@dataclass(frozen=True)
class Arrival:
    """One offered request, before admission."""

    at: float            # arrival time (s)
    tenant: str
    job_class: str       # small / medium / large
    size_mb: float       # input volume
    request_id: str

    def line(self) -> str:
        """Fixed-format record (the unit the trace digest hashes)."""
        return (f"{self.at:.6f}|{self.tenant}|{self.job_class}|"
                f"{self.size_mb:.3f}|{self.request_id}")


def trace_digest(arrivals: Iterable[Arrival]) -> str:
    """Streaming sha256 over the fixed-format arrival lines (16 hex chars).

    Mirrors :meth:`~repro.observatory.slo.AlertBook.digest`: same-seed
    runs must agree byte-for-byte, asserted by tests and the CI
    ``service-smoke`` job.
    """
    h = hashlib.sha256()
    for arrival in arrivals:
        h.update(arrival.line().encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()[:16]


class ArrivalProcess:
    """Base: turns a time sequence into tenant/class/size-decorated
    arrivals.  Subclasses implement :meth:`_times`."""

    def __init__(self, name: str, tenants: TenantRegistry, rng):
        if len(tenants) == 0:
            raise ConfigError("traffic needs at least one tenant")
        self.name = name
        self.tenants = tenants
        self.rng = rng
        self._seq = 0
        # Cumulative tenant weights for O(log n) weighted choice.
        self._names = tenants.names
        self._cum: list[float] = []
        total = 0.0
        for spec in tenants:
            total += spec.weight
            self._cum.append(total)
        self._total_weight = total

    # -- decoration --------------------------------------------------------
    def _pick_tenant(self) -> str:
        draw = float(self.rng.uniform(0.0, self._total_weight))
        lo, hi = 0, len(self._cum) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cum[mid] <= draw:
                lo = mid + 1
            else:
                hi = mid
        return self._names[lo]

    def _pick_class(self) -> tuple[str, float]:
        draw = float(self.rng.uniform(0.0, 1.0))
        acc = 0.0
        for name, lo_mb, hi_mb, prob in JOB_CLASSES:
            acc += prob
            if draw < acc or name == JOB_CLASSES[-1][0]:
                # Log-uniform size inside the class band.
                u = float(self.rng.uniform(0.0, 1.0))
                size = lo_mb * math.exp(u * math.log(hi_mb / lo_mb))
                return name, size
        raise AssertionError("unreachable")  # pragma: no cover

    def _decorate(self, at: float) -> Arrival:
        tenant = self._pick_tenant()
        job_class, size_mb = self._pick_class()
        request_id = f"{self.name}-{self._seq:08d}"
        self._seq += 1
        return Arrival(at=at, tenant=tenant, job_class=job_class,
                       size_mb=size_mb, request_id=request_id)

    # -- the stream --------------------------------------------------------
    def _times(self, horizon_s: float) -> Iterator[float]:
        raise NotImplementedError

    def stream(self, horizon_s: float) -> Iterator[Arrival]:
        """Lazily yield arrivals with ``at`` strictly below ``horizon_s``."""
        if horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        for at in self._times(horizon_s):
            yield self._decorate(at)

    def materialize(self, horizon_s: float) -> list[Arrival]:
        return list(self.stream(horizon_s))


class PoissonTraffic(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_per_s``."""

    def __init__(self, name: str, tenants: TenantRegistry, rng,
                 rate_per_s: float, start_s: float = 0.0):
        super().__init__(name, tenants, rng)
        if rate_per_s <= 0:
            raise ConfigError("rate_per_s must be positive")
        self.rate_per_s = float(rate_per_s)
        self.start_s = float(start_s)

    def _times(self, horizon_s: float) -> Iterator[float]:
        t = self.start_s
        while True:
            t += float(self.rng.exponential(1.0 / self.rate_per_s))
            if t >= horizon_s:
                return
            yield t


class _ThinnedProcess(ArrivalProcess):
    """Non-homogeneous Poisson via Lewis–Shedler thinning.

    Subclasses provide ``peak_rate`` and ``rate_at(t)``; candidates are
    drawn at the peak rate and accepted with probability
    ``rate_at(t) / peak_rate`` — exact, and deterministic under the named
    RNG stream.
    """

    peak_rate: float

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def _times(self, horizon_s: float) -> Iterator[float]:
        t = 0.0
        while True:
            t += float(self.rng.exponential(1.0 / self.peak_rate))
            if t >= horizon_s:
                return
            if float(self.rng.uniform(0.0, 1.0)) < (self.rate_at(t)
                                                    / self.peak_rate):
                yield t


class DiurnalTraffic(_ThinnedProcess):
    """Sinusoidal day/night load: rate(t) = base·(1 + amp·sin(2πt/period))."""

    def __init__(self, name: str, tenants: TenantRegistry, rng,
                 base_rate_per_s: float, amplitude: float = 0.6,
                 period_s: float = 86400.0, phase: float = 0.0):
        super().__init__(name, tenants, rng)
        if base_rate_per_s <= 0:
            raise ConfigError("base_rate_per_s must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigError("amplitude must be in [0, 1)")
        self.base_rate_per_s = float(base_rate_per_s)
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        self.phase = float(phase)
        self.peak_rate = self.base_rate_per_s * (1.0 + self.amplitude)

    def rate_at(self, t: float) -> float:
        return self.base_rate_per_s * (
            1.0 + self.amplitude
            * math.sin(2.0 * math.pi * t / self.period_s + self.phase))


class BurstTraffic(_ThinnedProcess):
    """Base-rate Poisson with periodic multiplied burst windows.

    Every ``burst_every_s`` the rate jumps to ``base · burst_factor`` for
    ``burst_duration_s`` — the flash-crowd shape the autoscaler ablation
    uses.  ``burst_factor=1`` degenerates to plain Poisson.
    """

    def __init__(self, name: str, tenants: TenantRegistry, rng,
                 base_rate_per_s: float, burst_factor: float = 4.0,
                 burst_every_s: float = 3600.0,
                 burst_duration_s: float = 300.0,
                 first_burst_at_s: Optional[float] = None):
        super().__init__(name, tenants, rng)
        if base_rate_per_s <= 0:
            raise ConfigError("base_rate_per_s must be positive")
        if burst_factor < 1.0:
            raise ConfigError("burst_factor must be >= 1")
        if not 0 < burst_duration_s <= burst_every_s:
            raise ConfigError(
                "need 0 < burst_duration_s <= burst_every_s")
        self.base_rate_per_s = float(base_rate_per_s)
        self.burst_factor = float(burst_factor)
        self.burst_every_s = float(burst_every_s)
        self.burst_duration_s = float(burst_duration_s)
        self.first_burst_at_s = (float(first_burst_at_s)
                                 if first_burst_at_s is not None
                                 else float(burst_every_s))
        self.peak_rate = self.base_rate_per_s * self.burst_factor

    def in_burst(self, t: float) -> bool:
        if t < self.first_burst_at_s:
            return False
        offset = (t - self.first_burst_at_s) % self.burst_every_s
        return offset < self.burst_duration_s

    def rate_at(self, t: float) -> float:
        if self.in_burst(t):
            return self.base_rate_per_s * self.burst_factor
        return self.base_rate_per_s


class TraceReplay(ArrivalProcess):
    """Replay a recorded arrival list verbatim (ignores its own RNG)."""

    def __init__(self, name: str, tenants: TenantRegistry, rng,
                 trace: Iterable[Arrival]):
        super().__init__(name, tenants, rng)
        self.trace = sorted(trace, key=lambda a: (a.at, a.request_id))
        for arrival in self.trace:
            if arrival.tenant not in tenants:
                raise ConfigError(
                    f"trace references unknown tenant {arrival.tenant!r}")

    def stream(self, horizon_s: float) -> Iterator[Arrival]:
        if horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        for arrival in self.trace:
            if arrival.at >= horizon_s:
                return
            yield arrival

    def _times(self, horizon_s: float) -> Iterator[float]:  # pragma: no cover
        raise NotImplementedError("TraceReplay overrides stream()")
