"""On-demand vHadoop service (the paper's future work, implemented).

"Future work will include integrating the vHadoop platform to open source
cloud computing system to provide scalable on-demand computation service
for processing data-intensive (or big-data) applications with parallel
machine learning algorithms."  (paper, Section VI)

:class:`~repro.cloud.service.OnDemandVHadoopService` accepts job requests,
elastically provisions hadoop virtual clusters against the datacenter's
DRAM capacity (booting VMs from the NFS image store), queues requests that
do not fit, runs each job, and tears the cluster down — an EMR-style
cluster-per-job service on top of the platform.
"""

from repro.cloud.service import (OnDemandVHadoopService, ServiceOutcome,
                                 ServiceRequest, SharedVHadoopService)

__all__ = ["OnDemandVHadoopService", "ServiceOutcome", "ServiceRequest",
           "SharedVHadoopService"]
