"""The cloud service layer (the paper's future work, implemented).

"Future work will include integrating the vHadoop platform to open source
cloud computing system to provide scalable on-demand computation service
for processing data-intensive (or big-data) applications with parallel
machine learning algorithms."  (paper, Section VI)

Three service shapes on top of the platform:

* :class:`~repro.cloud.service.OnDemandVHadoopService` — EMR-style
  cluster-per-job: provision, run, tear down (capacity-gated admission
  through an :class:`~repro.cloud.admission.AgingFifoGate`);
* :class:`~repro.cloud.service.SharedVHadoopService` — one warm cluster,
  jobs interleaved at slot granularity under a scheduler policy;
* the **always-on service mode** — open-loop traffic
  (:mod:`repro.cloud.traffic`) from a tenant fleet
  (:mod:`repro.cloud.tenants`) through admission control
  (:mod:`repro.cloud.admission`) into a
  :class:`~repro.cloud.controller.ServiceController`, with SLO alerting
  and alert-driven elastic autoscaling
  (:mod:`repro.cloud.autoscaler`) — the platform's first closed
  monitor → decide → actuate loop.
"""

from repro.cloud.adversaries import (ADVERSARY_KINDS, AdversarySpec,
                                     BatchSpamTraffic, HotKeyFloodTraffic,
                                     StragglerSkewTraffic,
                                     make_adversary_traffic)
from repro.cloud.admission import (ADMIT, DEFER, REJECT_IMPOSSIBLE,
                                   REJECT_OVERLOAD, REJECT_QUOTA,
                                   AdmissionController, AdmissionDecision,
                                   AgingFifoGate)
from repro.cloud.autoscaler import (AlertCursor, ElasticAutoscaler,
                                    ScalingAction)
from repro.cloud.controller import (CostModel, ServiceController,
                                    ServiceReport, SharedClusterBackend,
                                    SlotModelBackend)
from repro.cloud.service import (OnDemandVHadoopService, ServiceOutcome,
                                 ServiceRequest, SharedVHadoopService)
from repro.cloud.tenants import (LatencyHistogram, TenantRegistry,
                                 TenantSpec, TenantStats)
from repro.cloud.traffic import (Arrival, BurstTraffic, DiurnalTraffic,
                                 PoissonTraffic, TraceReplay, trace_digest)

__all__ = [
    "ADMIT", "ADVERSARY_KINDS", "DEFER", "REJECT_IMPOSSIBLE",
    "REJECT_OVERLOAD", "REJECT_QUOTA",
    "AdmissionController", "AdmissionDecision", "AdversarySpec",
    "AgingFifoGate",
    "AlertCursor", "Arrival", "BatchSpamTraffic", "BurstTraffic",
    "CostModel", "HotKeyFloodTraffic", "StragglerSkewTraffic",
    "make_adversary_traffic",
    "DiurnalTraffic", "ElasticAutoscaler", "LatencyHistogram",
    "OnDemandVHadoopService", "PoissonTraffic", "ScalingAction",
    "ServiceController", "ServiceOutcome", "ServiceReport",
    "ServiceRequest", "SharedClusterBackend", "SharedVHadoopService",
    "SlotModelBackend", "TenantRegistry", "TenantSpec", "TenantStats",
    "TraceReplay", "trace_digest",
]
