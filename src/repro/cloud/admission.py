"""Admission control for both cloud service modes.

Two admission mechanisms live here:

* :class:`AgingFifoGate` — the capacity gate of the cluster-per-job
  :class:`~repro.cloud.service.OnDemandVHadoopService`, extracted from its
  historical ``_admit`` scan: FIFO with bounded skipping, where each
  admission that jumps a waiting request ages it and an aged-out queue
  head stops the scan (no starvation of large requests behind small
  ones).

* :class:`AdmissionController` — the always-on service's per-arrival
  policy: a hard per-tenant in-flight quota, then graded load shedding by
  priority class once the service overloads.  Batch traffic sheds first
  (at ``shed_start``), interactive last (at ``shed_hard``), standard
  midway — so an overloaded service degrades from the bottom of the
  priority ladder upward instead of collapsing uniformly.

Every decision is an explicit :data:`AdmissionDecision` with a stable
reason string; decisions are pure functions of their inputs (no RNG), so
same-seed runs reject byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.cloud.tenants import TenantSpec, TenantStats
from repro.errors import ConfigError

# -- decisions ---------------------------------------------------------------
ADMIT = "admit"
DEFER = "defer"                      # queued, not yet schedulable
REJECT_QUOTA = "reject-quota"        # tenant over its in-flight quota
REJECT_OVERLOAD = "reject-overload"  # shed by priority under overload
REJECT_IMPOSSIBLE = "reject-impossible"  # can never fit this datacenter

DECISIONS = (ADMIT, DEFER, REJECT_QUOTA, REJECT_OVERLOAD, REJECT_IMPOSSIBLE)


@dataclass(frozen=True)
class AdmissionDecision:
    """One arrival's verdict, with a stable human-readable reason."""

    decision: str
    reason: str = ""

    def __post_init__(self) -> None:
        if self.decision not in DECISIONS:
            raise ConfigError(f"unknown decision {self.decision!r}")

    @property
    def admitted(self) -> bool:
        return self.decision == ADMIT

    @property
    def rejected(self) -> bool:
        return self.decision in (REJECT_QUOTA, REJECT_OVERLOAD,
                                 REJECT_IMPOSSIBLE)


class AdmissionController:
    """Quota + graded-priority load shedding for the always-on service.

    ``overload`` is the caller-supplied pressure signal — the controller
    uses backlog per schedulable slot.  Below ``shed_start`` everything
    within quota is admitted; between ``shed_start`` and ``shed_hard`` the
    priority ladder sheds bottom-up (batch, then standard); at or above
    ``shed_hard`` even interactive traffic is shed.
    """

    def __init__(self, shed_start: float = 2.0, shed_hard: float = 4.0):
        if not 0 < shed_start < shed_hard:
            raise ConfigError("need 0 < shed_start < shed_hard")
        self.shed_start = float(shed_start)
        self.shed_hard = float(shed_hard)

    def shed_threshold(self, spec: TenantSpec) -> float:
        """Overload level at which this tenant's class starts shedding."""
        n_ranks = 3  # interactive / standard / batch
        step = (self.shed_hard - self.shed_start) / (n_ranks - 1)
        # rank 0 (interactive) sheds at shed_hard, rank 2 (batch) at
        # shed_start.
        return self.shed_start + step * (n_ranks - 1 - spec.priority_rank)

    def decide(self, spec: TenantSpec, stats: TenantStats,
               overload: float) -> AdmissionDecision:
        if stats.inflight >= spec.quota_inflight:
            return AdmissionDecision(
                REJECT_QUOTA,
                f"inflight={stats.inflight} >= quota={spec.quota_inflight}")
        threshold = self.shed_threshold(spec)
        if overload >= threshold:
            return AdmissionDecision(
                REJECT_OVERLOAD,
                f"overload={overload:.3f} >= {threshold:.3f} "
                f"({spec.priority})")
        return AdmissionDecision(ADMIT)


class AgingFifoGate:
    """FIFO-with-bounded-skipping admission over a waiting queue.

    Entries must expose a mutable ``skips`` counter.  ``admittable``
    yields, in scan order, each entry that currently ``fits`` — aging
    every blocked entry it jumps — and stops early once the queue head
    has exhausted its skip budget (``max_head_skips``; ``None`` means
    unbounded skipping, ``0`` strict FIFO).

    It is a generator on purpose: the caller reserves capacity for each
    yielded entry *before* advancing, so later ``fits`` checks see the
    reduced capacity and same-instant admissions cannot double-book.
    """

    def __init__(self, max_head_skips: Optional[int] = 16):
        if max_head_skips is not None and max_head_skips < 0:
            raise ConfigError("max_head_skips must be >= 0 or None")
        self.max_head_skips = max_head_skips

    def admittable(self, queue: list,
                   fits: Callable[[object], bool]) -> Iterator[object]:
        blocked: list = []
        for entry in list(queue):
            if (self.max_head_skips is not None and blocked
                    and blocked[0].skips >= self.max_head_skips):
                return  # the head has aged out its skip budget
            if not fits(entry):
                blocked.append(entry)
                continue
            for older in blocked:
                older.skips += 1
            yield entry
