"""Tenants of the always-on service: specs, SLOs and per-tenant accounting.

A :class:`TenantSpec` declares who a tenant is (priority class, in-flight
quota, latency target); the :class:`TenantRegistry` owns the fleet and can
mint deterministic synthetic fleets for experiments.  Per-tenant outcomes
accumulate in :class:`TenantStats`, whose latency percentiles come from a
:class:`LatencyHistogram` — log-spaced bins with O(1) memory, so a million
completions cost nothing to rank and two same-seed runs quantise
identically (bin edges are pure functions of the constructor arguments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ConfigError

#: Priority classes, most important first.  Admission sheds load from the
#: bottom of this ladder upward (batch first, interactive last).
PRIORITIES = ("interactive", "standard", "batch")


class LatencyHistogram:
    """Fixed log-spaced latency histogram with deterministic quantiles.

    ``quantile(q)`` returns the *upper edge* of the bin holding the q-th
    sample — a deterministic over-estimate with bounded relative error
    (``growth - 1``), independent of arrival order.  Exact values are
    deliberately not kept: at ~1M samples a sorted list dominates memory
    and wall time, while 256 bin counters do not.
    """

    def __init__(self, lo: float = 0.1, hi: float = 1e5,
                 n_bins: int = 256):
        if not (lo > 0 and hi > lo and n_bins >= 2):
            raise ConfigError("need 0 < lo < hi and n_bins >= 2")
        self.lo = float(lo)
        self.hi = float(hi)
        self.n_bins = int(n_bins)
        self._log_lo = math.log(lo)
        self._scale = (n_bins - 1) / (math.log(hi) - self._log_lo)
        self.counts = [0] * n_bins
        self.n = 0
        self.total = 0.0
        self.max_seen = 0.0

    def _edge(self, index: int) -> float:
        return math.exp(self._log_lo + (index + 1) / self._scale)

    def observe(self, value: float) -> None:
        if value < 0:
            raise ConfigError(f"negative latency {value!r}")
        self.n += 1
        self.total += value
        if value > self.max_seen:
            self.max_seen = value
        if value <= self.lo:
            index = 0
        else:
            index = min(self.n_bins - 1,
                        int((math.log(value) - self._log_lo) * self._scale))
        self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Upper edge of the bin containing the q-th sample (0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"q must be in [0, 1], got {q}")
        if self.n == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.n))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index == self.n_bins - 1:
                    return self.max_seen  # overflow bin: exact max
                return min(self._edge(index), self.max_seen)
        return self.max_seen

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples whose *bin* lies above ``threshold``.

        A sample counts as "bad" when the upper edge of its bin exceeds
        the threshold — consistent with :meth:`quantile`, which also
        answers in upper edges, so ``fraction_above(quantile(q)) <= 1-q``
        deterministically.  Returns 0.0 when empty.
        """
        if self.n == 0:
            return 0.0
        bad = 0
        for index, count in enumerate(self.counts):
            if count and self._edge(index) > threshold:
                bad += count
        return bad / self.n

    def merge(self, other: "LatencyHistogram") -> None:
        if (other.lo, other.hi, other.n_bins) != (self.lo, self.hi,
                                                  self.n_bins):
            raise ConfigError("cannot merge histograms with different bins")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.n += other.n
        self.total += other.total
        self.max_seen = max(self.max_seen, other.max_seen)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the always-on service."""

    name: str
    priority: str = "standard"      # one of PRIORITIES
    weight: float = 1.0             # relative share of offered load
    quota_inflight: int = 8         # max concurrent admitted jobs
    latency_slo_s: float = 600.0    # p99 completion-latency target

    def __post_init__(self) -> None:
        if self.priority not in PRIORITIES:
            raise ConfigError(f"unknown priority {self.priority!r}")
        if self.weight <= 0:
            raise ConfigError("tenant weight must be positive")
        if self.quota_inflight < 1:
            raise ConfigError("quota_inflight must be >= 1")
        if self.latency_slo_s <= 0:
            raise ConfigError("latency_slo_s must be positive")

    @property
    def priority_rank(self) -> int:
        """0 = most important (shed last)."""
        return PRIORITIES.index(self.priority)


@dataclass
class TenantStats:
    """Everything counted about one tenant's traffic."""

    tenant: str
    submitted: int = 0
    admitted: int = 0
    rejected_quota: int = 0
    rejected_overload: int = 0
    completed: int = 0
    failed: int = 0
    inflight: int = 0
    busy_slot_seconds: float = 0.0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    queue_wait: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def rejected(self) -> int:
        return self.rejected_quota + self.rejected_overload

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.submitted if self.submitted else 0.0

    @property
    def goodput(self) -> float:
        """Completed fraction of everything submitted so far."""
        return self.completed / self.submitted if self.submitted else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected_quota": self.rejected_quota,
            "rejected_overload": self.rejected_overload,
            "completed": self.completed,
            "failed": self.failed,
            "rejection_rate": round(self.rejection_rate, 6),
            "goodput": round(self.goodput, 6),
            "latency_p50": round(self.latency.p50, 3),
            "latency_p99": round(self.latency.p99, 3),
            "wait_p50": round(self.queue_wait.p50, 3),
            "wait_p99": round(self.queue_wait.p99, 3),
        }


class TenantRegistry:
    """The fleet of tenants one service instance carries."""

    def __init__(self):
        self._specs: dict[str, TenantSpec] = {}
        self._stats: dict[str, TenantStats] = {}

    def register(self, spec: TenantSpec) -> TenantSpec:
        if spec.name in self._specs:
            raise ConfigError(f"tenant {spec.name!r} already registered")
        self._specs[spec.name] = spec
        self._stats[spec.name] = TenantStats(tenant=spec.name)
        return spec

    def ensure(self, name: str, **kwargs) -> TenantSpec:
        """Fetch the spec for ``name``, registering a default if new."""
        spec = self._specs.get(name)
        if spec is None:
            spec = self.register(TenantSpec(name=name, **kwargs))
        return spec

    def spec(self, name: str) -> TenantSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigError(f"unknown tenant {name!r}") from None

    def stats(self, name: str) -> TenantStats:
        self.spec(name)
        return self._stats[name]

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[TenantSpec]:
        return iter(self._specs.values())

    @property
    def names(self) -> list[str]:
        return list(self._specs)

    def all_stats(self) -> dict[str, TenantStats]:
        return dict(self._stats)

    def total_weight(self) -> float:
        return sum(spec.weight for spec in self)

    # -- synthetic fleets --------------------------------------------------
    @classmethod
    def synthetic(cls, n_tenants: int, rng,
                  latency_slo_s: float = 600.0,
                  quota_scale: float = 32.0) -> "TenantRegistry":
        """Mint a deterministic fleet of ``n_tenants`` synthetic tenants.

        Weights are Zipf-ish (a few heavy hitters, a long tail), priorities
        follow a fixed 20/60/20 interactive/standard/batch split, and
        quotas are ``ceil(quota_scale * weight) + 2`` — size
        ``quota_scale`` to the offered load (roughly ``expected total
        inflight / total weight`` times the headroom you want) so quotas
        bite on abusive bursts rather than on steady fair traffic; the
        flat ``+2`` keeps Poisson noise from rejecting tail tenants whose
        expected inflight is below one.  All
        draws come from the caller's named ``rng`` stream so the fleet is
        a pure function of the seed.
        """
        if n_tenants < 1:
            raise ConfigError("n_tenants must be >= 1")
        if quota_scale <= 0:
            raise ConfigError("quota_scale must be > 0")
        registry = cls()
        width = max(3, len(str(n_tenants - 1)))
        for index in range(n_tenants):
            weight = 1.0 / (1 + index) ** 0.8
            draw = float(rng.uniform(0.0, 1.0))
            if draw < 0.2:
                priority, slo_scale = "interactive", 0.5
            elif draw < 0.8:
                priority, slo_scale = "standard", 1.0
            else:
                priority, slo_scale = "batch", 2.0
            registry.register(TenantSpec(
                name=f"tenant-{index:0{width}d}",
                priority=priority,
                weight=weight,
                quota_inflight=int(math.ceil(quota_scale * weight)) + 2,
                latency_slo_s=latency_slo_s * slo_scale))
        return registry
