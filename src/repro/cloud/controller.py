"""The always-on service controller: traffic → admission → backend → SLOs.

:class:`ServiceController` runs as a pair of sim processes over one
arrival stream:

* the **offer** process replays the open-loop traffic, asks the
  :class:`~repro.cloud.admission.AdmissionController` for a verdict per
  arrival (quota, then graded load shedding) and hands admitted work to
  the backend;
* the **control** process ticks every ``tick_s``: it evaluates the
  :data:`~repro.observatory.slo.SERVICE_SLOS` against rolling service
  state (backlog per slot, rolling p99 vs target, rejection rate) into an
  :class:`~repro.observatory.slo.AlertBook` with hysteresis, lets the
  :class:`~repro.cloud.autoscaler.ElasticAutoscaler` act on the book, and
  samples the public timeline (workers / backlog / in-flight /
  utilisation / p99).

Two backends provide two fidelities of the same contract:

* :class:`SharedClusterBackend` — every admitted arrival becomes a real
  MapReduce job on a warm :class:`~repro.cloud.service.SharedVHadoopService`
  cluster (full task/shuffle/HDFS simulation).  Use for demos, tests and
  for *calibrating* the surrogate.
* :class:`SlotModelBackend` — a job-granularity queueing surrogate: an
  elastic pool of service slots where a job's service time comes from a
  :class:`CostModel` fitted against real scheduler runs.  ~2 kernel
  events per job, which is what makes million-submission experiments
  tractable.

Determinism: arrivals, decisions and completions are pure functions of
the seed; :meth:`ServiceReport.digest` pins the whole run (trace digest,
counters, autoscaler actions, alert history) and CI compares it across
two fresh processes.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cloud.admission import (ADMIT, REJECT_OVERLOAD, REJECT_QUOTA,
                                   AdmissionController)
from repro.cloud.tenants import LatencyHistogram, TenantRegistry
from repro.cloud.traffic import Arrival, ArrivalProcess
from repro.errors import ConfigError
from repro.observatory.slo import SERVICE_SLOS, AlertBook
from repro.telemetry import events as EV


# -- the surrogate cost model ------------------------------------------------
@dataclass(frozen=True)
class CostModel:
    """Linear job-service-time model: ``base_s + per_mb_s * size_mb``.

    Fit it from real runs (:meth:`fit`) so the surrogate backend's
    latencies track the full simulation's.
    """

    base_s: float = 30.0
    per_mb_s: float = 0.05

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.per_mb_s < 0:
            raise ConfigError("need base_s > 0 and per_mb_s >= 0")

    def service_time(self, size_mb: float) -> float:
        return self.base_s + self.per_mb_s * size_mb

    @classmethod
    def fit(cls, samples: list) -> "CostModel":
        """Least-squares fit of (size_mb, elapsed_s) pairs."""
        if len(samples) < 2:
            raise ConfigError("need >= 2 calibration samples")
        n = len(samples)
        sx = sum(s for s, _ in samples)
        sy = sum(e for _, e in samples)
        sxx = sum(s * s for s, _ in samples)
        sxy = sum(s * e for s, e in samples)
        denom = n * sxx - sx * sx
        if abs(denom) < 1e-12:
            return cls(base_s=max(1e-3, sy / n), per_mb_s=0.0)
        slope = (n * sxy - sx * sy) / denom
        intercept = (sy - slope * sx) / n
        return cls(base_s=max(1e-3, intercept), per_mb_s=max(0.0, slope))


# -- backends ----------------------------------------------------------------
class _SurrogatePool:
    """ScalingTarget over the surrogate backend's slot count."""

    def __init__(self, backend: "SlotModelBackend", min_size: int,
                 max_size: int, boot_s: float):
        self.backend = backend
        self.min_size = min_size
        self.max_size = max_size
        self.boot_s = boot_s
        self.booting = 0
        self.retired = 0

    @property
    def size(self) -> int:
        return self.backend.slots + self.booting

    def grow(self, n: int = 1, avoid_hosts=()) -> int:
        started = 0
        for _ in range(n):
            if self.size >= self.max_size:
                break
            self.booting += 1
            self.backend.sim.process(self._bring_up(),
                                     name="svc-surrogate:boot")
            started += 1
        return started

    def _bring_up(self):
        yield self.backend.sim.timeout(self.boot_s)
        self.booting -= 1
        self.backend.add_slot()

    def shrink(self, n: int = 1) -> int:
        stopped = 0
        for _ in range(n):
            if self.size <= self.min_size:
                break
            if not self.backend.remove_slot():
                break
            self.retired += 1
            stopped += 1
        return stopped


class SlotModelBackend:
    """Job-granularity queueing surrogate over an elastic slot pool.

    Admitted jobs queue FIFO; each of ``slots`` perpetual worker
    processes takes the head, holds it for ``cost.service_time(size_mb)``
    and reports completion.  No tasks, no shuffle, no HDFS — the
    :class:`CostModel` stands in for all of it, calibrated against the
    full simulation.
    """

    def __init__(self, sim, cost: CostModel, slots: int,
                 elastic_min: Optional[int] = None, elastic_max: int = 512,
                 boot_s: float = 45.0):
        if slots < 1:
            raise ConfigError("slots must be >= 1")
        self.sim = sim
        self.cost = cost
        self.slots = 0
        #: Set by the controller: ``on_done(tenant, submitted_at, wait_s)``.
        self.on_done: Optional[Callable] = None
        self._queue: deque = deque()   # (tenant, size_mb, enqueued_at)
        #: One park event per idle worker — a submission wakes exactly one
        #: worker, not the whole pool (no thundering herd at 1M arrivals).
        self._parked: deque = deque()
        self._retiring = 0
        self.busy = 0
        self.pool = _SurrogatePool(
            self, min_size=slots if elastic_min is None else elastic_min,
            max_size=elastic_max, boot_s=boot_s)
        for _ in range(slots):
            self.add_slot()

    # -- capacity ----------------------------------------------------------
    def add_slot(self) -> None:
        self.slots += 1
        self.sim.process(self._worker(), name="svc-surrogate:slot")

    def remove_slot(self) -> bool:
        """Gracefully retire one slot (takes effect between jobs)."""
        if self.slots - self._retiring <= 0:
            return False
        self._retiring += 1
        self._signal()  # a parked worker can exit immediately
        return True

    def total_slots(self) -> int:
        return self.slots - self._retiring

    def backlog(self) -> int:
        return len(self._queue)

    def utilization(self) -> float:
        total = self.total_slots()
        return self.busy / total if total > 0 else 1.0

    # -- the service loop --------------------------------------------------
    def submit(self, arrival: Arrival, spec) -> None:
        self._queue.append((arrival.tenant, arrival.size_mb, self.sim.now))
        self._signal()

    def _signal(self) -> None:
        if self._parked:
            self._parked.popleft().succeed(None)

    def _worker(self):
        while True:
            if self._retiring > 0:
                self._retiring -= 1
                self.slots -= 1
                return
            if not self._queue:
                park = self.sim.event()
                self._parked.append(park)
                yield park
                continue
            tenant, size_mb, enqueued_at = self._queue.popleft()
            wait_s = self.sim.now - enqueued_at
            self.busy += 1
            yield self.sim.timeout(self.cost.service_time(size_mb))
            self.busy -= 1
            if self.on_done is not None:
                self.on_done(tenant, enqueued_at, wait_s, True)


class SharedClusterBackend:
    """Full-fidelity backend: real jobs on a warm shared cluster.

    Every admitted arrival is turned into a :class:`ServiceRequest` (by
    default a wordcount over a small materialized sample whose serialized
    sizes are scaled to the arrival's ``size_mb`` — the volume-scaling
    trick the experiments use) and submitted to the tenant's priority
    pool on the :class:`~repro.cloud.service.SharedVHadoopService`.
    """

    #: Fixed sample corpus; sizes are scaled per arrival.
    SAMPLE_LINES = ["alpha beta gamma delta", "beta gamma", "gamma delta",
                    "delta epsilon zeta"] * 4

    def __init__(self, service, request_factory: Optional[Callable] = None,
                 pool=None):
        self.service = service
        self.sim = service.sim
        self.scheduler = service.scheduler
        self.request_factory = request_factory or self._default_request
        #: The autoscaler's actuator (an ElasticWorkerPool), if any.
        self.pool = pool
        self.on_done: Optional[Callable] = None

    def _default_request(self, arrival: Arrival):
        from repro.cloud.service import ServiceRequest
        from repro.workloads.wordcount import (lines_as_records,
                                               wordcount_job)
        records = lines_as_records(self.SAMPLE_LINES)
        per_record = max(1, int(arrival.size_mb * (1 << 20) / len(records)))
        return ServiceRequest(
            name=arrival.request_id,
            n_nodes=2,  # ignored by the shared service
            records=records,
            make_job=lambda inp, out: wordcount_job(inp, out, n_reduces=2),
            sizeof=lambda record: per_record,
            tenant=arrival.tenant)

    def submit(self, arrival: Arrival, spec) -> None:
        request = self.request_factory(arrival)
        submitted_at = self.sim.now
        event = self.service.submit(request, pool=spec.priority)
        self.sim.process(self._watch(event, arrival.tenant, submitted_at),
                         name=f"svc-watch:{arrival.request_id}")

    def _watch(self, event, tenant: str, submitted_at: float):
        try:
            outcome = yield event
            wait_s = (outcome.report.wait_s
                      if outcome.report is not None else 0.0)
            ok = True
        except Exception:
            wait_s, ok = 0.0, False
        if self.on_done is not None:
            self.on_done(tenant, submitted_at, wait_s, ok)

    def backlog(self) -> int:
        return (self.scheduler.backlog("map")
                + self.scheduler.backlog("reduce"))

    def total_slots(self) -> int:
        return self.scheduler.total_slots("map")

    def utilization(self) -> float:
        busy = total = 0
        from repro.virt.vm import VMState
        for tracker in self.scheduler.cluster.trackers:
            if tracker.vm.state in (VMState.FAILED, VMState.STOPPED):
                continue
            busy += tracker.map_slots.in_use + tracker.reduce_slots.in_use
            total += (tracker.map_slots.capacity
                      + tracker.reduce_slots.capacity)
        return busy / total if total else 1.0


# -- the report --------------------------------------------------------------
@dataclass
class TimelinePoint:
    at: float
    workers: int
    backlog: int
    inflight: int
    utilization: float
    p99: float

    def as_row(self) -> list:
        return [round(self.at, 3), self.workers, self.backlog,
                self.inflight, round(self.utilization, 4),
                round(self.p99, 3)]


class ServiceReport:
    """Everything measured about one service run."""

    def __init__(self, name: str, tenants: TenantRegistry,
                 book: AlertBook):
        self.name = name
        self.tenants = tenants
        self.book = book
        self.submitted = 0
        self.admitted = 0
        self.rejected_quota = 0
        self.rejected_overload = 0
        self.completed = 0
        self.failed = 0
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.timeline: list[TimelinePoint] = []
        self.actions: list = []          # autoscaler ScalingActions
        self.trace_digest = ""
        #: Time-series store digest when burn-rate SLOs were on ("" off).
        self.burn_digest = ""
        self.horizon_s = 0.0
        self.finished_at = 0.0

    @property
    def rejected(self) -> int:
        return self.rejected_quota + self.rejected_overload

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.submitted if self.submitted else 0.0

    @property
    def goodput(self) -> float:
        return self.completed / self.submitted if self.submitted else 0.0

    def counters(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected_quota": self.rejected_quota,
            "rejected_overload": self.rejected_overload,
            "completed": self.completed,
            "failed": self.failed,
            "alerts": len(self.book.alerts),
            "scaling_actions": len(self.actions),
        }

    def digest(self) -> str:
        """Stable digest over counters, tenants, actions and alerts."""
        h = hashlib.sha256()
        for key, value in sorted(self.counters().items()):
            h.update(f"{key}={value}\n".encode())
        for name in sorted(self.tenants.names):
            stats = self.tenants.stats(name)
            h.update((f"{name}|{stats.submitted}|{stats.admitted}|"
                      f"{stats.rejected}|{stats.completed}\n").encode())
        for action in self.actions:
            h.update(action.line().encode())
            h.update(b"\n")
        h.update(self.book.digest().encode())
        h.update(self.trace_digest.encode())
        if self.burn_digest:
            h.update(self.burn_digest.encode())
        return h.hexdigest()[:16]

    def as_dict(self, timeline_stride: int = 1) -> dict:
        per_tenant = {name: self.tenants.stats(name).as_dict()
                      for name in sorted(self.tenants.names)}
        return {
            "service": self.name,
            "horizon_s": self.horizon_s,
            "finished_at": round(self.finished_at, 3),
            "counters": self.counters(),
            "rejection_rate": round(self.rejection_rate, 6),
            "goodput": round(self.goodput, 6),
            "latency_p50": round(self.latency.p50, 3),
            "latency_p99": round(self.latency.p99, 3),
            "wait_p50": round(self.queue_wait.p50, 3),
            "wait_p99": round(self.queue_wait.p99, 3),
            "n_tenants": len(self.tenants),
            "tenants": per_tenant,
            "timeline": [p.as_row() for p
                         in self.timeline[::max(1, timeline_stride)]],
            "scaling_actions": [a.line() for a in self.actions],
            "alerts": [a.slo for a in self.book.alerts],
            "trace_digest": self.trace_digest,
            "burn_digest": self.burn_digest,
            "digest": self.digest(),
        }

    def to_json(self, timeline_stride: int = 1) -> str:
        return json.dumps(self.as_dict(timeline_stride), indent=2,
                          sort_keys=True)


# -- the controller ----------------------------------------------------------
class ServiceController:
    """Runs one always-on service: open-loop traffic through admission
    into a backend, with SLO evaluation and (optionally) autoscaling."""

    def __init__(self, sim, backend, tenants: TenantRegistry,
                 traffic: ArrivalProcess,
                 admission: Optional[AdmissionController] = None,
                 book: Optional[AlertBook] = None,
                 autoscaler=None,
                 name: str = "service",
                 tick_s: float = 5.0,
                 latency_target_s: float = 600.0,
                 rolling_ticks: int = 24,
                 tracer=None, metrics=None,
                 verbose_telemetry: bool = False,
                 burn_engine=None):
        if tick_s <= 0:
            raise ConfigError("tick_s must be positive")
        if rolling_ticks < 1:
            raise ConfigError("rolling_ticks must be >= 1")
        self.sim = sim
        self.backend = backend
        self.tenants = tenants
        self.traffic = traffic
        self.admission = admission or AdmissionController()
        self.book = book if book is not None else AlertBook(sim=sim,
                                                            tracer=tracer)
        for spec in SERVICE_SLOS:
            if spec.name not in self.book.slos:
                self.book.register(spec)
        self.autoscaler = autoscaler
        #: Optional :class:`~repro.observatory.burnrate.BurnRateEngine`.
        #: When set, the per-tick SLO evaluation is error-budget math
        #: over the engine's time-series store instead of instantaneous
        #: thresholds; the engine fires the same SLO names into the same
        #: book, so the autoscaler is unaffected by the swap.
        self.burn_engine = burn_engine
        self.name = name
        self.tick_s = tick_s
        self.latency_target_s = latency_target_s
        self.tracer = tracer
        self.metrics = metrics
        #: Per-request trace events are off by default: a million-arrival
        #: run must not materialize a million TraceEvents.  Aggregates
        #: always flow into the metrics registry.
        self.verbose_telemetry = verbose_telemetry
        self.report = ServiceReport(name, tenants, self.book)
        self.inflight = 0
        backend.on_done = self._on_done
        self._trace_hash = hashlib.sha256()
        self._offer_done = False
        # Rolling per-tick windows for the SLO signals.
        self._window: deque = deque(maxlen=rolling_ticks)
        self._tick_hist = LatencyHistogram()
        self._tick_submitted = 0
        self._tick_rejected = 0

    # -- lifecycle ---------------------------------------------------------
    def run(self, horizon_s: float) -> ServiceReport:
        """Offer traffic until ``horizon_s``, drain, return the report."""
        if horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        self.report.horizon_s = horizon_s
        done = self.sim.event()
        self.sim.process(self._offer(horizon_s),
                         name=f"svc-ctl:offer:{self.name}")
        self.sim.process(self._control(done),
                         name=f"svc-ctl:tick:{self.name}")
        self.sim.run_until(done)
        self.report.finished_at = self.sim.now
        self.report.trace_digest = self._trace_hash.hexdigest()[:16]
        if self.burn_engine is not None:
            self.report.burn_digest = self.burn_engine.digest()
        if self.autoscaler is not None:
            self.report.actions = list(self.autoscaler.actions)
        return self.report

    # -- offer path --------------------------------------------------------
    def _offer(self, horizon_s: float):
        for arrival in self.traffic.stream(horizon_s):
            delay = arrival.at - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._handle(arrival)
        self._offer_done = True

    def _handle(self, arrival: Arrival) -> None:
        self._trace_hash.update(arrival.line().encode("utf-8"))
        self._trace_hash.update(b"\n")
        spec = self.tenants.spec(arrival.tenant)
        stats = self.tenants.stats(arrival.tenant)
        stats.submitted += 1
        self.report.submitted += 1
        self._tick_submitted += 1
        slots = self.backend.total_slots()
        overload = self.backend.backlog() / max(1, slots)
        decision = self.admission.decide(spec, stats, overload)
        if self.verbose_telemetry and self.tracer is not None:
            self.tracer.emit(self.sim.now, EV.CLOUD_ADMISSION,
                             arrival.request_id, tenant=arrival.tenant,
                             decision=decision.decision,
                             reason=decision.reason)
        if decision.decision == REJECT_QUOTA:
            stats.rejected_quota += 1
            self.report.rejected_quota += 1
            self._tick_rejected += 1
            return
        if decision.decision == REJECT_OVERLOAD:
            stats.rejected_overload += 1
            self.report.rejected_overload += 1
            self._tick_rejected += 1
            return
        assert decision.decision == ADMIT
        stats.admitted += 1
        stats.inflight += 1
        self.report.admitted += 1
        self.inflight += 1
        self.backend.submit(arrival, spec)

    def _on_done(self, tenant: str, submitted_at: float, wait_s: float,
                 ok: bool) -> None:
        now = self.sim.now
        latency = now - submitted_at
        stats = self.tenants.stats(tenant)
        stats.inflight -= 1
        self.inflight -= 1
        if ok:
            stats.completed += 1
            self.report.completed += 1
            stats.latency.observe(latency)
            stats.queue_wait.observe(wait_s)
            stats.busy_slot_seconds += latency - wait_s
            self.report.latency.observe(latency)
            self.report.queue_wait.observe(wait_s)
            self._tick_hist.observe(latency)
        else:
            stats.failed += 1
            self.report.failed += 1
        if self.verbose_telemetry and self.tracer is not None:
            self.tracer.emit(now, EV.SERVICE_REQUEST_DONE, tenant,
                             latency=latency, wait=wait_s, ok=ok)

    # -- control path ------------------------------------------------------
    def _control(self, done):
        while True:
            yield self.sim.timeout(self.tick_s)
            self._tick()
            if (self._offer_done and self.inflight == 0
                    and self.backend.backlog() == 0):
                break
        done.succeed(None)

    def _rolling(self) -> tuple[float, float]:
        """(rolling p99, rolling rejection rate) over the window."""
        merged = LatencyHistogram()
        submitted = rejected = 0
        for hist, sub, rej in self._window:
            merged.merge(hist)
            submitted += sub
            rejected += rej
        rate = rejected / submitted if submitted else 0.0
        return merged.p99, rate

    def _tick(self) -> None:
        now = self.sim.now
        slots = self.backend.total_slots()
        backlog = self.backend.backlog()
        utilization = self.backend.utilization()
        backlog_per_slot = backlog / max(1, slots)
        if self.burn_engine is not None:
            # Error fractions of *this* tick, recorded before the
            # accumulators reset: the engine's windows do the rolling.
            self.burn_engine.observe_service_tick(
                now,
                latency_error=self._tick_hist.fraction_above(
                    self.latency_target_s),
                rejection_frac=(self._tick_rejected / self._tick_submitted
                                if self._tick_submitted else 0.0),
                backlog_per_slot=backlog_per_slot)
        self._window.append((self._tick_hist, self._tick_submitted,
                             self._tick_rejected))
        self._tick_hist = LatencyHistogram()
        self._tick_submitted = 0
        self._tick_rejected = 0

        p99, rejection_rate = self._rolling()
        if self.burn_engine is not None:
            self.burn_engine.evaluate(now)
        else:
            self._evaluate_slos(backlog_per_slot, p99, rejection_rate)
        if self.autoscaler is not None:
            self.autoscaler.tick(now, utilization)
        self.report.timeline.append(TimelinePoint(
            at=now, workers=slots, backlog=backlog, inflight=self.inflight,
            utilization=utilization, p99=p99))
        if self.metrics is not None:
            labels = {"service": self.name}
            self.metrics.gauge("service.backlog", "queued jobs",
                               labels).set(backlog)
            self.metrics.gauge("service.inflight", "admitted jobs in "
                               "flight", labels).set(self.inflight)
            self.metrics.gauge("service.slots", "schedulable service "
                               "slots", labels).set(slots)
            self.metrics.gauge("service.utilization", "busy slot "
                               "fraction", labels).set(utilization)

    def _evaluate_slos(self, backlog_per_slot: float, p99: float,
                       rejection_rate: float) -> None:
        """Fire/resolve the service SLOs with 0.5x-threshold hysteresis."""
        signals = {
            "service-backlog": (backlog_per_slot, "capacity"),
            "service-p99": (p99 / self.latency_target_s
                            if self.latency_target_s > 0 else 0.0,
                            "capacity"),
            "service-rejection": (rejection_rate, "admission"),
        }
        for slo, (value, attribution) in signals.items():
            spec = self.book.spec(slo)
            if spec.violated_by(value):
                self.book.fire(slo, self.name, value, attribution,
                               detail=f"{spec.signal}={value:.3f}")
            elif (self.book.is_active(slo, self.name)
                    and value < spec.threshold * 0.5):
                self.book.resolve(slo, self.name)
