"""Adversarial tenant actors: traffic sources engineered to hurt.

Hand-written service traffic (:mod:`repro.cloud.traffic`) is friendly by
construction — tenant/class/size draws follow the configured mix.  Real
multi-tenant clusters also see *adversarial* tenants, and the scenario
fuzzer (:mod:`repro.fuzz`) treats them as a first-class dimension.  Each
actor is deterministic for a seed (the same two-process byte-identical
contract as every other traffic source, pinned by ``trace_digest`` in
tests) and comes in two forms:

* an **arrival process** usable anywhere a
  :class:`~repro.cloud.traffic.ArrivalProcess` is (service mode,
  admission studies): one misbehaving tenant riding on top of a normal
  registry;
* a **payload builder** used by the fuzz runner to materialize the
  adversarial job itself (the records that make the job hostile).

Actors
------
``hotkey``
    Hot-key flood: a corpus where one token dominates, so one reducer
    key absorbs most of the shuffle — the classic hot-partition skew.
``skew``
    Straggler-inducing partition skew: record keys crafted so the hash
    partitioner funnels almost everything into one reduce partition.
``spam``
    Noisy-neighbor batch spam: a dense train of tiny jobs from one
    tenant that steals scheduler heartbeats and slots from everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cloud.traffic import ArrivalProcess
from repro.errors import ConfigError

#: The adversary kinds the fuzzer composes into scenarios.
ADVERSARY_KINDS = ("hotkey", "skew", "spam")


@dataclass(frozen=True)
class AdversarySpec:
    """One adversarial actor in a scenario: who misbehaves and how hard.

    ``intensity`` scales the attack (1 = mild, 3 = vicious): the hot-key
    fraction, the skew ratio, or the spam job count.
    """

    kind: str
    intensity: int = 1
    tenant: str = "adversary"

    def validate(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise ConfigError(
                f"unknown adversary kind {self.kind!r}; "
                f"expected one of {sorted(ADVERSARY_KINDS)}")
        if not 1 <= self.intensity <= 3:
            raise ConfigError(
                f"adversary intensity must be in 1..3, got {self.intensity}")
        if not self.tenant:
            raise ConfigError("adversary needs a tenant name")

    def key(self) -> str:
        return f"{self.kind}|{self.intensity}|{self.tenant}"


# -- payload builders (fuzz runner side) ------------------------------------

def hot_key_lines(rng, n_lines: int, intensity: int = 1,
                  hot_word: str = "hotspot") -> list[str]:
    """A wordcount corpus where ``hot_word`` dominates.

    Intensity 1/2/3 makes ~50/70/90% of all tokens the hot word, so the
    reducer that owns it sees a single giant value list while its peers
    idle — the shuffle-side hot-partition attack.
    """
    fraction = {1: 0.5, 2: 0.7, 3: 0.9}[intensity]
    words_per_line = 12
    lines = []
    for _ in range(n_lines):
        tokens = []
        for _ in range(words_per_line):
            if float(rng.uniform(0.0, 1.0)) < fraction:
                tokens.append(hot_word)
            else:
                tokens.append(f"w{int(rng.integers(0, 512)):03d}")
        lines.append(" ".join(tokens))
    return lines


def skewed_keys(rng, n_records: int, n_reduces: int,
                intensity: int = 1) -> list[tuple[str, int]]:
    """Records whose keys hash-partition almost entirely into one bucket.

    Keys are rejection-sampled so ``hash(key) % n_reduces`` lands in
    partition 0 for the skewed share (60/80/95% by intensity) — the
    straggler-inducing partition-skew attack against any hash
    partitioner, independent of key distribution assumptions.
    """
    from repro.mapreduce.api import HashPartitioner
    partitioner = HashPartitioner()
    share = {1: 0.6, 2: 0.8, 3: 0.95}[intensity]
    records = []
    for i in range(n_records):
        want_hot = float(rng.uniform(0.0, 1.0)) < share
        for attempt in range(64):
            key = f"k{int(rng.integers(0, 1 << 30)):08x}"
            bucket = partitioner.partition(key, max(1, n_reduces))
            if (bucket == 0) == want_hot or n_reduces <= 1:
                break
        records.append((key, i))
    return records


def spam_job_count(intensity: int = 1) -> int:
    """How many tiny jobs the noisy neighbor floods in (per actor)."""
    return {1: 2, 2: 4, 3: 6}[intensity]


# -- arrival processes (service mode side) ----------------------------------

class _PinnedTenantProcess(ArrivalProcess):
    """Base for adversaries: every arrival comes from the actor's tenant."""

    def __init__(self, name: str, tenants, rng, tenant: str):
        super().__init__(name, tenants, rng)
        if tenant not in tenants.names:
            raise ConfigError(f"adversary tenant {tenant!r} is not in the "
                              "registry")
        self.tenant = tenant

    def _pick_tenant(self) -> str:
        return self.tenant


class HotKeyFloodTraffic(_PinnedTenantProcess):
    """Bursty single-tenant flood: quiet baseline, then dense bursts.

    Models a tenant that periodically hammers the service with
    correlated requests (every burst arrives back-to-back at
    ``burst_rate``), starving admission windows for everyone else.
    """

    def __init__(self, name: str, tenants, rng, tenant: str,
                 burst_every_s: float = 120.0, burst_len_s: float = 10.0,
                 burst_rate: float = 2.0):
        super().__init__(name, tenants, rng, tenant)
        if burst_every_s <= 0 or burst_len_s <= 0 or burst_rate <= 0:
            raise ConfigError("burst parameters must be positive")
        self.burst_every_s = burst_every_s
        self.burst_len_s = burst_len_s
        self.burst_rate = burst_rate

    def _times(self, horizon_s: float) -> Iterator[float]:
        t = 0.0
        while t < horizon_s:
            burst_start = t
            burst_end = min(burst_start + self.burst_len_s, horizon_s)
            at = burst_start
            while at < burst_end:
                at += float(self.rng.exponential(1.0 / self.burst_rate))
                if at < burst_end:
                    yield at
            t = burst_start + self.burst_every_s


class StragglerSkewTraffic(_PinnedTenantProcess):
    """Steady arrivals whose sizes are pinned to the heaviest class.

    Every request is a maximal ``large`` job — the tenant that always
    submits the work most likely to straggle and hold slots.
    """

    def __init__(self, name: str, tenants, rng, tenant: str,
                 rate_per_s: float = 0.02):
        super().__init__(name, tenants, rng, tenant)
        if rate_per_s <= 0:
            raise ConfigError("rate_per_s must be positive")
        self.rate_per_s = rate_per_s

    def _pick_class(self) -> tuple[str, float]:
        from repro.cloud.traffic import JOB_CLASSES
        name, _lo, hi, _prob = JOB_CLASSES[-1]
        # Consume one draw so the stream stays aligned with the base
        # class and the trace digest is a pure function of the seed.
        self.rng.uniform(0.0, 1.0)
        return name, hi

    def _times(self, horizon_s: float) -> Iterator[float]:
        t = 0.0
        while True:
            t += float(self.rng.exponential(1.0 / self.rate_per_s))
            if t >= horizon_s:
                return
            yield t


class BatchSpamTraffic(_PinnedTenantProcess):
    """Noisy neighbor: a dense Poisson train of tiny batch jobs."""

    def __init__(self, name: str, tenants, rng, tenant: str,
                 rate_per_s: float = 0.5, size_mb: float = 16.0):
        super().__init__(name, tenants, rng, tenant)
        if rate_per_s <= 0 or size_mb <= 0:
            raise ConfigError("rate_per_s and size_mb must be positive")
        self.rate_per_s = rate_per_s
        self.size_mb = size_mb

    def _pick_class(self) -> tuple[str, float]:
        self.rng.uniform(0.0, 1.0)
        return "small", self.size_mb

    def _times(self, horizon_s: float) -> Iterator[float]:
        t = 0.0
        while True:
            t += float(self.rng.exponential(1.0 / self.rate_per_s))
            if t >= horizon_s:
                return
            yield t


def make_adversary_traffic(spec: AdversarySpec, tenants, rng,
                           name: Optional[str] = None) -> ArrivalProcess:
    """Build the arrival process for an :class:`AdversarySpec`."""
    spec.validate()
    label = name or f"adv-{spec.kind}"
    if spec.kind == "hotkey":
        return HotKeyFloodTraffic(label, tenants, rng, spec.tenant,
                                  burst_rate=0.5 * spec.intensity + 0.5)
    if spec.kind == "skew":
        return StragglerSkewTraffic(label, tenants, rng, spec.tenant,
                                    rate_per_s=0.01 * spec.intensity)
    return BatchSpamTraffic(label, tenants, rng, spec.tenant,
                            rate_per_s=0.25 * spec.intensity)
