"""vHadoop reproduction.

A functional discrete-event reproduction of *"vHadoop: A Scalable Hadoop
Virtual Cluster Platform for MapReduce-Based Parallel Machine Learning with
Performance Consideration"* (Ye et al., IEEE CLUSTER 2012 Workshops).

Quickstart
----------
>>> from repro import VHadoopPlatform, PlatformConfig, ClusterSpec
>>> platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=0))
>>> cluster = platform.provision_cluster("demo", ClusterSpec.single_host(4))
>>> cluster.n_nodes
4

Layers (bottom-up): :mod:`repro.sim` (event kernel + max-min fair sharing),
:mod:`repro.net` / :mod:`repro.virt` (Xen-like testbed with live
migration), :mod:`repro.hdfs` / :mod:`repro.mapreduce` (functional Hadoop),
:mod:`repro.ml` (the six Mahout clustering algorithms),
:mod:`repro.monitor` / :mod:`repro.tuner` (nmon + MapReduce Tuner),
:mod:`repro.platform` (the vHadoop facade), and :mod:`repro.experiments`
(one harness per paper table/figure).
"""

from repro._version import __version__
from repro.config import (HadoopConfig, HostConfig, PlatformConfig,
                          TopologySpec, VMConfig)
from repro.platform import (ClusterSpec, HadoopVirtualCluster,
                            VHadoopPlatform, balanced_placement,
                            cross_domain_placement, normal_placement)
from repro.virt import Datacenter, VirtLM

__all__ = [
    "ClusterSpec",
    "Datacenter",
    "HadoopConfig",
    "HadoopVirtualCluster",
    "HostConfig",
    "PlatformConfig",
    "TopologySpec",
    "VHadoopPlatform",
    "VMConfig",
    "VirtLM",
    "__version__",
    "balanced_placement",
    "cross_domain_placement",
    "normal_placement",
]
