"""Synthetic English-like text corpus.

Fig. 2 of the paper feeds Wordcount with TOEFL reading materials of varying
sizes.  What Wordcount's cost depends on is the byte volume, the line
structure, and the skew of the word distribution — English word frequencies
are famously Zipfian.  We generate lines of words drawn from a Zipf(1.1)
distribution over a synthetic vocabulary, which preserves all three.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def _make_vocabulary(size: int, rng: np.random.Generator) -> list[str]:
    """Pronounceable pseudo-words of 2-12 letters."""
    vocab = []
    seen = set()
    while len(vocab) < size:
        syllables = int(rng.integers(1, 5))
        word = "".join(
            _CONSONANTS[int(rng.integers(len(_CONSONANTS)))]
            + _VOWELS[int(rng.integers(len(_VOWELS)))]
            for _ in range(syllables))
        if word not in seen:
            seen.add(word)
            vocab.append(word)
    return vocab


def generate_corpus(nbytes: int, vocabulary_size: int = 8000,
                    words_per_line: int = 12, zipf_s: float = 1.1,
                    rng: Optional[np.random.Generator] = None) -> list[str]:
    """Lines of Zipfian text totalling roughly ``nbytes`` UTF-8 bytes.

    Returns a list of lines (the Wordcount input records).  Deterministic
    given ``rng``.
    """
    if nbytes <= 0:
        raise ValueError("nbytes must be positive")
    rng = rng or np.random.default_rng(0)
    vocab = _make_vocabulary(vocabulary_size, rng)
    # Zipf ranks: probability ~ 1/rank^s over the vocabulary.
    ranks = np.arange(1, vocabulary_size + 1, dtype=float)
    probs = ranks ** (-zipf_s)
    probs /= probs.sum()
    lines: list[str] = []
    produced = 0
    # Draw in batches for speed.
    batch = max(64, words_per_line * 64)
    buffer: list[str] = []
    while produced < nbytes:
        idx = rng.choice(vocabulary_size, size=batch, p=probs)
        buffer.extend(vocab[i] for i in idx)
        while len(buffer) >= words_per_line and produced < nbytes:
            line = " ".join(buffer[:words_per_line])
            del buffer[:words_per_line]
            lines.append(line)
            produced += len(line) + 1
    return lines


def corpus_sizeof(line: str) -> int:
    """Serialized size of one corpus line (bytes + newline)."""
    return len(line) + 1
