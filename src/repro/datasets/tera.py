"""TeraGen-style records.

The official TeraGen produces 100-byte records: a 10-byte random key, a
10-byte row id and 78 bytes of filler.  We keep the exact sizing (TeraSort
performance is entirely volume-driven) with an integer row id and a random
10-byte key; the filler is *not* materialized — its bytes are accounted by
``tera_sizeof``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

TERA_RECORD_BYTES = 100
TERA_KEY_BYTES = 10


@dataclass(frozen=True, order=True)
class TeraRecord:
    """One 100-byte record: 10-byte key, row id (filler is implicit)."""

    key: bytes
    row: int

    def __post_init__(self) -> None:
        if len(self.key) != TERA_KEY_BYTES:
            raise ValueError(f"key must be {TERA_KEY_BYTES} bytes")


def teragen(n_records: int, rng: Optional[np.random.Generator] = None
            ) -> list[TeraRecord]:
    """Generate ``n_records`` records with uniformly random keys."""
    if n_records < 0:
        raise ValueError("n_records must be >= 0")
    rng = rng or np.random.default_rng(0)
    keys = rng.integers(0, 256, size=(n_records, TERA_KEY_BYTES),
                        dtype=np.uint8)
    return [TeraRecord(bytes(keys[i].tobytes()), i) for i in range(n_records)]


def tera_sizeof(_record) -> int:
    return TERA_RECORD_BYTES


def records_for_bytes(nbytes: int) -> int:
    """How many TeraGen records make up ``nbytes``."""
    return max(1, nbytes // TERA_RECORD_BYTES)
