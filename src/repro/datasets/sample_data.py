"""DisplayClustering sample data.

Mahout's ``DisplayClustering`` examples (the paper's Figs. 7-8) generate
1000 samples from three symmetric 2-D normal distributions and then overlay
each algorithm's clusters.  The canonical parameters (Mahout 0.6
``DisplayClustering.generateSamples``):

* 500 samples around (1, 1) with sigma 3;
* 300 samples around (1, 0) with sigma 0.5;
* 200 samples around (0, 2) with sigma 0.1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

SAMPLE_COMPONENTS = (
    ((1.0, 1.0), 3.0, 500),
    ((1.0, 0.0), 0.5, 300),
    ((0.0, 2.0), 0.1, 200),
)


def generate_sample_data(rng: Optional[np.random.Generator] = None,
                         components=SAMPLE_COMPONENTS
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(X, component_labels)`` with X of shape (N, 2)."""
    rng = rng or np.random.default_rng(0)
    points = []
    labels = []
    for index, (center, sigma, count) in enumerate(components):
        pts = rng.normal(loc=center, scale=sigma, size=(count, 2))
        points.append(pts)
        labels.extend([index] * count)
    return np.vstack(points), np.asarray(labels)


def sample_sizeof(_point) -> int:
    """Two doubles plus key overhead, as a Mahout VectorWritable."""
    return 2 * 8 + 16
