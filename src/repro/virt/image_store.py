"""The shared NFS server holding all VM images.

The paper stores every VM image on a separate NFS server and names "NFS
disk I/O" one of the two main platform bottlenecks.  We model the server as
its own host whose endpoint bandwidth is the NFS export bandwidth — all
image fetches (boot) and image writes (snapshot) fair-share it, and they
also cross the fetching host's physical NIC, contending with Hadoop
traffic.
"""

from __future__ import annotations

from repro import constants as C
from repro.net import NetNode, NetworkFabric
from repro.sim.kernel import Event


class NfsImageStore:
    """NFS server endpoint plus image catalogue."""

    def __init__(self, fabric: NetworkFabric, bandwidth: float = C.NFS_BPS,
                 name: str = "nfs"):
        self.fabric = fabric
        self.name = name
        host = fabric.add_host(f"{name}.host",
                               nic_bandwidth=bandwidth,
                               bridge_bandwidth=bandwidth)
        self.node: NetNode = fabric.attach(name, host, vnic_bandwidth=bandwidth,
                                           privileged=True)
        self.images: dict[str, int] = {}

    def register_image(self, image: str, size: int) -> None:
        self.images[image] = int(size)

    def fetch(self, image: str, to: NetNode) -> Event:
        """Stream an image to a host's dom0; completion event value is the
        elapsed seconds."""
        size = self.images[image]
        return self.fabric.transfer(self.node, to, size,
                                    name=f"nfs:fetch:{image}")

    def read_through(self, to: NetNode, nbytes: float, name: str = "nfs:read"
                     ) -> Event:
        """Arbitrary NFS read traffic toward ``to`` (e.g. lazy image pages)."""
        return self.fabric.transfer(self.node, to, nbytes, name=name)
