"""Physical machines.

A :class:`PhysicalMachine` owns the shared hardware resources of one host:

* ``cpu`` — a fair-share resource of ``cores`` core-seconds per second,
  shared by all VCPUs placed on the host (the Xen credit scheduler gives
  each runnable VCPU an equal share, capped at one core per VCPU);
* ``disk`` — local disk bandwidth shared by all guests' virtual disks;
* ``net`` — the :class:`~repro.net.topology.HostNet` (NIC + bridge);
* ``dom0`` — the control-domain network endpoint that carries migration and
  NFS image traffic.

DRAM is accounted (guests cannot over-commit memory in Xen), and the set of
resident VMs is tracked for the hypervisor and monitor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import HostConfig
from repro.errors import PlacementError
from repro.net import HostNet, NetNode, NetworkFabric, RackNet
from repro.sim import SharedResource

if TYPE_CHECKING:  # pragma: no cover
    from repro.virt.vm import VirtualMachine


class PhysicalMachine:
    """One host of the testbed (Dell T710 stand-in)."""

    def __init__(self, name: str, config: HostConfig, fabric: NetworkFabric,
                 rack: Optional[RackNet] = None):
        self.name = name
        self.config = config
        self.cpu = SharedResource(f"{name}.cpu", float(config.cores))
        self.disk = SharedResource(f"{name}.disk", config.disk_bandwidth)
        if rack is not None:
            self.cpu.rack = rack.name
            self.disk.rack = rack.name
        self.net: HostNet = fabric.add_host(
            name, nic_bandwidth=config.nic_bandwidth,
            bridge_bandwidth=config.bridge_bandwidth,
            netback_bandwidth=config.netback_bandwidth, rack=rack)
        self.dom0: NetNode = fabric.attach(f"{name}.dom0", self.net,
                                           privileged=True)
        self.vms: dict[str, "VirtualMachine"] = {}
        self._dram_used = 0

    @property
    def rack(self) -> Optional[RackNet]:
        """The rack this host lives in (``None`` on flat topologies)."""
        return self.net.rack

    @property
    def rack_name(self) -> Optional[str]:
        return self.net.rack.name if self.net.rack is not None else None

    # -- DRAM accounting ---------------------------------------------------
    @property
    def dram_free(self) -> int:
        return self.config.guest_dram - self._dram_used

    def reserve_dram(self, amount: int, who: str) -> None:
        if amount > self.dram_free:
            raise PlacementError(
                f"{who}: needs {amount} B but {self.name} has only "
                f"{self.dram_free} B of guest DRAM free")
        self._dram_used += amount

    def release_dram(self, amount: int) -> None:
        self._dram_used = max(0, self._dram_used - amount)

    # -- residency -----------------------------------------------------------
    def admit(self, vm: "VirtualMachine") -> None:
        self.reserve_dram(vm.config.memory, vm.name)
        self.vms[vm.name] = vm

    def evict(self, vm: "VirtualMachine") -> None:
        if self.vms.pop(vm.name, None) is not None:
            self.release_dram(vm.config.memory)

    @property
    def n_resident_vcpus(self) -> int:
        return sum(vm.config.vcpus for vm in self.vms.values())

    @property
    def oversubscribed(self) -> bool:
        """More resident VCPUs than physical cores."""
        return self.n_resident_vcpus > self.config.cores

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<PhysicalMachine {self.name} vms={len(self.vms)} "
                f"dram_free={self.dram_free // (1 << 20)}MiB>")
