"""Xen-style iterative pre-copy live migration.

Algorithm (Clark et al., NSDI'05, as implemented by ``xm migrate --live``):

1. **Setup** — reserve resources on the destination, open the migration
   TCP stream between the two Domain-0s.
2. **Iterative pre-copy** — round 0 pushes all guest memory while the guest
   keeps running; round *i+1* re-sends the pages dirtied during round *i*.
   Rounds shrink geometrically while the dirty rate stays below the copy
   bandwidth.
3. **Stop-and-copy** — when the remaining dirty set is small enough (or the
   round budget is exhausted, or pre-copy stops converging), the guest is
   paused, the residue is pushed, and the VM resumes on the destination.
   The service outage — the paper's *downtime* — is the duration of this
   phase plus the fixed resume overhead (device re-attach, gratuitous ARP).

The copy stream is a fluid flow over ``src.dom0 → dst.dom0``, so it crosses
both physical NICs and contends with whatever the Hadoop cluster is doing —
which is why migrating a cluster that is running Wordcount takes about three
times as long as migrating an idle one (Table II of the paper).

Migrating to the VM's current host is rejected; migrating a stopped VM is
rejected.  The per-round dirtied volume is sampled from the VM's
:class:`~repro.virt.memory.DirtyMemoryModel` using the VM's *current*
activity, so downtime varies across the nodes of a loaded cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import constants as C
from repro.errors import MigrationError
from repro.net import NetworkFabric
from repro.sim import FairShareSystem, Simulator, Tracer
from repro.sim.kernel import Event
from repro.telemetry import events as EV
from repro.virt.machine import PhysicalMachine
from repro.virt.vm import VirtualMachine, VMState


@dataclass(frozen=True)
class MigrationRound:
    """One pre-copy round."""

    index: int
    sent_bytes: float
    elapsed_s: float
    dirtied_bytes: float


@dataclass
class MigrationRecord:
    """Everything measured about one VM migration (Virt-LM's unit record)."""

    vm: str
    source: str
    destination: str
    memory_bytes: int
    started_at: float
    #: Total wall-clock migration time (setup + pre-copy + stop-and-copy).
    migration_time_s: float = 0.0
    #: Service outage: stop-and-copy transfer + resume overhead.
    downtime_s: float = 0.0
    total_sent_bytes: float = 0.0
    rounds: list[MigrationRound] = field(default_factory=list)
    #: Why pre-copy ended: "converged", "round-budget", "send-budget".
    stop_reason: str = ""

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def overhead_ratio(self) -> float:
        """Bytes sent relative to guest memory (1.0 = no re-sends)."""
        return self.total_sent_bytes / self.memory_bytes


class LiveMigrator:
    """Pre-copy migration engine shared by all hosts."""

    def __init__(self, sim: Simulator, fss: FairShareSystem,
                 fabric: NetworkFabric, tracer: Optional[Tracer] = None,
                 metrics=None,
                 stop_threshold: int = C.MIGRATION_STOP_THRESHOLD,
                 max_rounds: int = C.MIGRATION_MAX_ROUNDS,
                 setup_s: float = C.MIGRATION_SETUP_S,
                 resume_overhead_s: float = C.MIGRATION_RESUME_OVERHEAD_S,
                 round_overhead_s: float = C.MIGRATION_ROUND_OVERHEAD_S,
                 send_budget_factor: float = C.MIGRATION_SEND_BUDGET_FACTOR):
        self.sim = sim
        self.fss = fss
        self.fabric = fabric
        self.tracer = tracer or Tracer(enabled=False)
        self.metrics = metrics
        self.stop_threshold = stop_threshold
        self.max_rounds = max_rounds
        self.setup_s = setup_s
        self.resume_overhead_s = resume_overhead_s
        self.round_overhead_s = round_overhead_s
        self.send_budget_factor = send_budget_factor

    def migrate(self, vm: VirtualMachine, destination: PhysicalMachine,
                rate_cap_bps: Optional[float] = None) -> Event:
        """Live-migrate ``vm``; event value is the :class:`MigrationRecord`.

        ``rate_cap_bps`` reserves bandwidth *for the workload* by capping
        the migration stream (the resource-reservation scheme of Ye et
        al., CLOUD'11 — the authors' prior work the paper builds on): the
        migration takes longer but steals less from the running jobs.
        """
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise MigrationError("rate_cap_bps must be positive")
        if vm.state is not VMState.RUNNING:
            raise MigrationError(f"{vm.name} is {vm.state.value}, not running")
        if vm.host is None:
            raise MigrationError(f"{vm.name} has no host")
        if vm.host is destination:
            raise MigrationError(f"{vm.name} is already on {destination.name}")
        if vm.config.memory > destination.dram_free:
            raise MigrationError(
                f"{destination.name} lacks DRAM for {vm.name}: "
                f"needs {vm.config.memory}, free {destination.dram_free}")
        # Reserve destination memory for the whole migration (Xen does).
        destination.reserve_dram(vm.config.memory, f"migrate:{vm.name}")
        return self.sim.process(
            self._migrate_proc(vm, destination, rate_cap_bps),
            name=f"migrate:{vm.name}")

    # -- internals ------------------------------------------------------------
    def _copy(self, vm: VirtualMachine, destination: PhysicalMachine,
              nbytes: float, scan: bool = True,
              rate_cap_bps: Optional[float] = None):
        """Push ``nbytes`` over the dom0→dom0 stream; yields, returns secs.

        ``scan=True`` charges the per-round fixed cost (dirty-bitmap scan,
        shadow page-table flips, control RPCs).  This floor is what stops
        pre-copy from converging on a busy guest — the residue cannot shrink
        below ``dirty_rate * round_overhead``.  The stop-and-copy phase skips
        it: the guest is paused, there is nothing left to scan.
        """
        assert vm.host is not None
        t0 = self.sim.now
        if scan:
            yield self.sim.timeout(self.round_overhead_s)
        yield self.fabric.transfer(vm.host.dom0, destination.dom0, nbytes,
                                   name=f"migrate:{vm.name}",
                                   cap=rate_cap_bps)
        return self.sim.now - t0

    def _migrate_proc(self, vm: VirtualMachine, destination: PhysicalMachine,
                      rate_cap_bps: Optional[float] = None):
        source = vm.host
        assert source is not None
        record = MigrationRecord(
            vm=vm.name, source=source.name, destination=destination.name,
            memory_bytes=vm.config.memory, started_at=self.sim.now)
        span = self.tracer.begin_span(self.sim.now, EV.MIGRATION, vm.name,
                                      src=source.name, dst=destination.name)
        vm.state = VMState.MIGRATING
        try:
            yield self.sim.timeout(self.setup_s)

            to_send = float(vm.config.memory)
            rounds = 0
            reason = "round-budget"
            while True:
                integral_start = vm.activity_integral()
                elapsed = yield from self._copy(vm, destination, to_send,
                                                rate_cap_bps=rate_cap_bps)
                mean_activity = ((vm.activity_integral() - integral_start)
                                 / elapsed) if elapsed > 0 else vm.activity
                record.total_sent_bytes += to_send
                dirtied = vm.memory_model.dirtied_during(elapsed,
                                                         mean_activity)
                record.rounds.append(MigrationRound(
                    index=rounds, sent_bytes=to_send, elapsed_s=elapsed,
                    dirtied_bytes=dirtied))
                self.tracer.emit(self.sim.now, EV.MIGRATION_ROUND, vm.name,
                                 index=rounds, sent=to_send, dirtied=dirtied)
                rounds += 1
                if dirtied <= self.stop_threshold:
                    reason = "converged"
                    to_send = dirtied
                    break
                if rounds >= self.max_rounds:
                    reason = "round-budget"
                    to_send = dirtied
                    break
                if record.total_sent_bytes + dirtied > \
                        self.send_budget_factor * vm.config.memory:
                    # Xen's third stop rule: give up pre-copy once the
                    # total volume sent would exceed N x guest memory —
                    # the dirty rate is keeping pace with the wire.
                    reason = "send-budget"
                    to_send = dirtied
                    break
                to_send = dirtied

            record.stop_reason = reason
            # Stop-and-copy: the guest is paused; its activity no longer
            # dirties pages, but its traffic also stops competing only after
            # in-flight work drains — we keep it simple and leave other
            # cluster traffic running, which is the conservative choice.
            pause_started = self.sim.now
            elapsed = yield from self._copy(vm, destination, to_send,
                                            scan=False,
                                            rate_cap_bps=rate_cap_bps)
            record.total_sent_bytes += to_send
            yield self.sim.timeout(self.resume_overhead_s)
            record.downtime_s = (self.sim.now - pause_started)

            # Swap the temporary hold for real residency.  No simulated time
            # passes between the release and the admit inside rehome, so the
            # slot cannot be stolen.
            destination.release_dram(vm.config.memory)
            vm.rehome(destination)
            vm.mark_running()
        except BaseException:
            # Failed migration: drop the destination hold, resume at source.
            destination.release_dram(vm.config.memory)
            vm.state = VMState.RUNNING
            raise

        record.migration_time_s = self.sim.now - record.started_at
        self.tracer.end_span(span, self.sim.now,
                             migration_time=record.migration_time_s,
                             downtime=record.downtime_s,
                             rounds=record.n_rounds,
                             reason=record.stop_reason)
        if self.metrics is not None:
            labels = {"src": record.source, "dst": record.destination}
            self.metrics.histogram(
                "migration.duration", "total live-migration time",
                labels).observe(record.migration_time_s)
            self.metrics.histogram(
                "migration.downtime", "stop-and-copy service outage",
                labels).observe(record.downtime_s)
            self.metrics.counter(
                "migration.bytes.sent", "pre-copy + stop-and-copy volume",
                labels).inc(record.total_sent_bytes)
            self.metrics.counter(
                "migration.count", "completed migrations", labels).inc()
        return record
