"""Virtualization substrate (the paper's Xen stand-in).

* :mod:`repro.virt.machine` — physical machines (cores, DRAM, disk, NIC);
* :mod:`repro.virt.vm` — virtual machines with lifecycle states, VCPU
  fair-sharing, and an activity level that couples running work to the
  dirty-page rate;
* :mod:`repro.virt.memory` — writable-working-set dirty-page model;
* :mod:`repro.virt.hypervisor` — per-host placement, boot (NFS image fetch),
  shutdown;
* :mod:`repro.virt.migration` — Xen-style iterative pre-copy live migration;
* :mod:`repro.virt.virtlm` — the Virt-LM benchmark extended from single-VM
  to whole-virtual-cluster (gang) migration, as in the paper;
* :mod:`repro.virt.image_store` — the shared NFS server holding VM images;
* :mod:`repro.virt.datacenter` — wiring of simulator + fabric + hosts + NFS.
"""

from repro.virt.datacenter import Datacenter
from repro.virt.hypervisor import Hypervisor
from repro.virt.image_store import NfsImageStore
from repro.virt.machine import PhysicalMachine
from repro.virt.memory import DirtyMemoryModel
from repro.virt.migration import LiveMigrator, MigrationRecord
from repro.virt.virtlm import ClusterMigrationReport, VirtLM
from repro.virt.vm import VirtualMachine, VMState

__all__ = [
    "ClusterMigrationReport",
    "Datacenter",
    "DirtyMemoryModel",
    "Hypervisor",
    "LiveMigrator",
    "MigrationRecord",
    "NfsImageStore",
    "PhysicalMachine",
    "VirtLM",
    "VirtualMachine",
    "VMState",
]
