"""Datacenter: the wired-together testbed.

One object that owns the simulator, the fair-share system, the network
fabric, the RNG registry, the tracer, the NFS image store, the physical
machines with their hypervisors, and the migration engine.  Everything
above (HDFS, MapReduce, the vHadoop platform) builds on a
:class:`Datacenter`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.config import PlatformConfig, VMConfig
from repro.errors import ConfigError, PlacementError
from repro.sim import FairShareSystem, RngRegistry, Simulator, Tracer
from repro.net import NetworkFabric
from repro.telemetry.facade import Telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.virt.hypervisor import Hypervisor
from repro.virt.image_store import NfsImageStore
from repro.virt.machine import PhysicalMachine
from repro.virt.memory import DirtyMemoryModel
from repro.virt.migration import LiveMigrator
from repro.virt.virtlm import VirtLM
from repro.virt.vm import VirtualMachine


class Datacenter:
    """The simulated testbed (paper: two Dell T710s + one NFS server)."""

    def __init__(self, config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self.sim = Simulator()
        self.tracer = Tracer(enabled=self.config.trace)
        self.metrics = MetricsRegistry()
        self.rng = RngRegistry(seed=self.config.seed)
        self.fss = FairShareSystem(self.sim, metrics=self.metrics)
        self.fabric = NetworkFabric(self.sim, self.fss, tracer=self.tracer)
        self.image_store = NfsImageStore(self.fabric,
                                         bandwidth=self.config.nfs_bandwidth)
        self.image_store.register_image("base", self.config.vm.image_size)
        self.machines: list[PhysicalMachine] = []
        self.hypervisors: dict[str, Hypervisor] = {}
        topo = self.config.topology
        host_cfg = self.config.host
        if topo is not None and (topo.nic_bandwidth is not None
                                 or topo.bridge_bandwidth is not None):
            host_cfg = dataclasses.replace(
                host_cfg,
                nic_bandwidth=topo.nic_bandwidth or host_cfg.nic_bandwidth,
                bridge_bandwidth=(topo.bridge_bandwidth
                                  or host_cfg.bridge_bandwidth))
        racks = []
        if topo is not None:
            # ToR/aggregation resources only exist on multi-rack
            # topologies; one rack stays bit-identical to the flat model.
            for r in range(topo.racks):
                racks.append(self.fabric.add_rack(
                    f"rack{r}",
                    tor_bandwidth=(topo.tor_bandwidth
                                   if topo.multi_rack else None)))
            if topo.multi_rack:
                self.fabric.set_aggregation(topo.agg_bandwidth)
        for i in range(self.config.n_hosts):
            rack = racks[topo.rack_of_host(i)] if racks else None
            machine = PhysicalMachine(f"pm{i}", host_cfg, self.fabric,
                                      rack=rack)
            self.machines.append(machine)
            self.hypervisors[machine.name] = Hypervisor(
                machine, self.sim, image_store=self.image_store,
                tracer=self.tracer, metrics=self.metrics)
        self.migrator = LiveMigrator(self.sim, self.fss, self.fabric,
                                     tracer=self.tracer, metrics=self.metrics)
        self.virtlm = VirtLM(self.migrator)
        self.vms: dict[str, VirtualMachine] = {}
        #: Datacenter-wide observability handle (all VMs, shared registry).
        self.telemetry = Telemetry(self.sim, self.tracer,
                                   metrics=self.metrics, datacenter=self)

    # -- VM management ----------------------------------------------------
    def create_vm(self, name: str, host: PhysicalMachine,
                  config: Optional[VMConfig] = None,
                  jittered_dirty_rate: bool = True) -> VirtualMachine:
        """Define and place (but not boot) a VM on ``host``."""
        if name in self.vms:
            raise ConfigError(f"duplicate VM name {name!r}")
        vm_config = config or self.config.vm
        rng = (self.rng.stream(f"migration/dirty/{name}")
               if jittered_dirty_rate else None)
        vm = VirtualMachine(
            name, vm_config, self.sim, self.fss, self.fabric,
            memory_model=DirtyMemoryModel(vm_config.memory, rng=rng),
            tracer=self.tracer)
        vm.nfs_backend = self.image_store.node.vnic
        self.hypervisors[host.name].place(vm)
        self.vms[name] = vm
        return vm

    def boot_vm(self, vm: VirtualMachine):
        """Boot event for a placed VM."""
        assert vm.host is not None
        return self.hypervisors[vm.host.name].boot(vm)

    def instant_boot(self, vm: VirtualMachine) -> None:
        """Mark a placed VM running without simulating the boot sequence.

        Experiments that measure steady-state behaviour (every figure in the
        paper) start from an already-booted cluster.
        """
        vm.mark_running()

    def machine(self, index: int) -> PhysicalMachine:
        try:
            return self.machines[index]
        except IndexError:
            raise PlacementError(
                f"host index {index} out of range "
                f"(datacenter has {len(self.machines)} hosts)") from None

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    @property
    def now(self) -> float:
        return self.sim.now
