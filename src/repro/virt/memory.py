"""Writable-working-set dirty-page model.

Pre-copy live migration performance is governed by how fast the guest
dirties memory while its pages are being copied.  The classic model (Clark
et al., NSDI'05) observes that a guest rewrites a bounded *writable working
set* (WWS) — hot pages that are re-dirtied continuously — plus a colder
spread that is touched more slowly.

We model the dirty behaviour of a VM with three parameters:

* ``idle_rate`` — bytes/s dirtied by the idle guest OS (timers, daemons);
* ``busy_rate`` — additional bytes/s dirtied *per unit of activity*
  (activity = number of running tasks, reported by the VM);
* ``wws_fraction`` — ceiling on the dirty set accumulated during one
  pre-copy round, as a fraction of guest memory (hot pages saturate).

During round *i* of pre-copy, which lasts ``t`` seconds, the guest dirties
``min(rate * t, wws)`` bytes that must be re-sent in round *i+1*.  For an
idle guest this converges geometrically; for a loaded guest (Wordcount) the
dirty rate approaches the copy bandwidth and the WWS ceiling dictates a long
stop-and-copy phase — exactly the downtime blow-up Table II of the paper
reports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import constants as C
from repro.errors import ConfigError

#: Default dirtying of an idle Linux guest (bytes/s).
IDLE_DIRTY_RATE: float = 1.5 * C.MiB
#: Additional dirtying per running task (buffers, spill files, JVM heap).
BUSY_DIRTY_RATE_PER_TASK: float = 42.0 * C.MiB
#: Fraction of guest memory in the writable working set.
DEFAULT_WWS_FRACTION: float = 0.10


class DirtyMemoryModel:
    """Dirty-page dynamics of one VM."""

    def __init__(self, memory: int,
                 idle_rate: float = IDLE_DIRTY_RATE,
                 busy_rate_per_task: float = BUSY_DIRTY_RATE_PER_TASK,
                 wws_fraction: float = DEFAULT_WWS_FRACTION,
                 rng: Optional[np.random.Generator] = None):
        if memory <= 0:
            raise ConfigError("memory must be positive")
        if not 0.0 < wws_fraction <= 1.0:
            raise ConfigError("wws_fraction must be in (0, 1]")
        if idle_rate < 0 or busy_rate_per_task < 0:
            raise ConfigError("dirty rates must be >= 0")
        self.memory = int(memory)
        self.idle_rate = float(idle_rate)
        self.busy_rate_per_task = float(busy_rate_per_task)
        self.wws_fraction = float(wws_fraction)
        self._rng = rng

    @property
    def wws_bytes(self) -> float:
        """Writable-working-set ceiling in bytes."""
        return self.wws_fraction * self.memory

    def dirty_rate(self, activity: float) -> float:
        """Instantaneous dirty rate (bytes/s) at the given activity level.

        ``activity`` is the number of concurrently running tasks; a small
        multiplicative jitter (±15 %) is applied when an RNG was supplied,
        which produces the per-VM downtime variance the paper observes for
        loaded clusters (its observation (iii) on Fig. 5).
        """
        if activity < 0:
            raise ConfigError(f"activity must be >= 0, got {activity}")
        rate = self.idle_rate + self.busy_rate_per_task * activity
        if self._rng is not None and activity > 0:
            rate *= float(self._rng.uniform(0.85, 1.15))
        return rate

    def dirtied_during(self, elapsed: float, activity: float) -> float:
        """Bytes that must be re-sent after a pre-copy round of ``elapsed``
        seconds, bounded by the writable working set (and guest memory)."""
        if elapsed < 0:
            raise ConfigError("elapsed must be >= 0")
        raw = self.dirty_rate(activity) * elapsed
        return min(raw, self.wws_bytes, float(self.memory))
