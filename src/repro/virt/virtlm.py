"""Virt-LM: the live-migration benchmark, extended to virtual clusters.

The paper extends the authors' earlier Virt-LM benchmark (Huang et al.,
ICPE'11) "from single virtual machine migration to multiple virtual
machines (virtual cluster) migration which can record the migration time
and downtime of each virtual machine and the whole virtual cluster."

:class:`VirtLM` does exactly that: it migrates each VM of a cluster from
its host to a destination, sequentially (``xm migrate`` one at a time — the
mode the paper's figures imply: 16 consecutive bars) or concurrently, and
reports per-VM :class:`~repro.virt.migration.MigrationRecord` entries plus
the whole-cluster aggregate of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import MigrationError
from repro.sim import Simulator, Tracer
from repro.sim.kernel import Event
from repro.virt.machine import PhysicalMachine
from repro.telemetry import events as EV
from repro.virt.migration import LiveMigrator, MigrationRecord
from repro.virt.vm import VirtualMachine


@dataclass
class ClusterMigrationReport:
    """Aggregate of one whole-cluster migration (the paper's Table II row)."""

    label: str
    records: list[MigrationRecord] = field(default_factory=list)
    #: Wall-clock from first migration start to last migration end.
    overall_migration_time_s: float = 0.0

    @property
    def overall_downtime_s(self) -> float:
        """Sum of per-VM downtimes (total service outage across the cluster)."""
        return sum(r.downtime_s for r in self.records)

    @property
    def max_downtime_s(self) -> float:
        return max((r.downtime_s for r in self.records), default=0.0)

    @property
    def migration_times(self) -> list[float]:
        return [r.migration_time_s for r in self.records]

    @property
    def downtimes(self) -> list[float]:
        return [r.downtime_s for r in self.records]

    def downtime_spread(self) -> float:
        """Max/min downtime ratio — the paper's 'varies widely' observation."""
        downs = [d for d in self.downtimes if d > 0]
        if not downs:
            return 1.0
        return max(downs) / min(downs)


class VirtLM:
    """Benchmark harness around :class:`LiveMigrator`."""

    def __init__(self, migrator: LiveMigrator, tracer: Optional[Tracer] = None):
        self.migrator = migrator
        self.sim: Simulator = migrator.sim
        self.tracer = tracer or migrator.tracer

    def migrate_vm(self, vm: VirtualMachine, destination: PhysicalMachine
                   ) -> Event:
        """Single-VM benchmark (original Virt-LM)."""
        return self.migrator.migrate(vm, destination)

    def migrate_cluster(self, vms: Sequence[VirtualMachine],
                        destination: PhysicalMachine, label: str = "cluster",
                        concurrent: bool = False,
                        rate_cap_bps: Optional[float] = None) -> Event:
        """Whole-cluster benchmark; event value is a
        :class:`ClusterMigrationReport`.

        ``concurrent=False`` (default) migrates VMs one after another, as
        the paper does; ``concurrent=True`` starts all migrations at once
        (gang migration), provided the destination can hold them all.
        """
        if not vms:
            raise MigrationError("migrate_cluster needs at least one VM")
        proc = (self._concurrent_proc if concurrent else self._sequential_proc)
        return self.sim.process(
            proc(list(vms), destination, label, rate_cap_bps),
            name=f"virtlm:{label}")

    def _sequential_proc(self, vms: list[VirtualMachine],
                         destination: PhysicalMachine, label: str,
                         rate_cap_bps: Optional[float] = None):
        report = ClusterMigrationReport(label=label)
        started = self.sim.now
        for vm in vms:
            record = yield self.migrator.migrate(vm, destination,
                                                 rate_cap_bps=rate_cap_bps)
            report.records.append(record)
        report.overall_migration_time_s = self.sim.now - started
        self.tracer.emit(self.sim.now, EV.VIRTLM_CLUSTER_END, label,
                         mode="sequential",
                         overall_time=report.overall_migration_time_s,
                         overall_downtime=report.overall_downtime_s)
        return report

    def _concurrent_proc(self, vms: list[VirtualMachine],
                         destination: PhysicalMachine, label: str,
                         rate_cap_bps: Optional[float] = None):
        report = ClusterMigrationReport(label=label)
        started = self.sim.now
        events = [self.migrator.migrate(vm, destination,
                                        rate_cap_bps=rate_cap_bps)
                  for vm in vms]
        results = yield self.sim.all_of(events)
        report.records.extend(results[ev] for ev in events)
        report.overall_migration_time_s = self.sim.now - started
        self.tracer.emit(self.sim.now, EV.VIRTLM_CLUSTER_END, label,
                         mode="concurrent",
                         overall_time=report.overall_migration_time_s,
                         overall_downtime=report.overall_downtime_s)
        return report
