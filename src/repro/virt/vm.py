"""Virtual machines.

A :class:`VirtualMachine` is the unit of computation of the platform.  It
exposes three things to the layers above:

* **compute(work)** — charge ``work`` core-seconds against the VM's VCPU
  allocation; contention with co-resident VCPUs (the Xen credit scheduler)
  is modelled by routing the demand through ``[vm.vcpu, host.cpu]`` with a
  one-core cap per task;
* **disk_io(nbytes)** — charge bytes against the host's shared disk;
* **node** — the VM's network endpoint used by HDFS/MapReduce transfers.

The VM also tracks an *activity level* (number of in-flight tasks), which
drives the dirty-page rate during live migration, and a lifecycle state
machine ``DEFINED → BOOTING → RUNNING ⇄ MIGRATING → STOPPED``.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro import constants as C
from repro.config import VMConfig
from repro.errors import VMStateError
from repro.net import NetNode, NetworkFabric
from repro.sim import FairShareSystem, SharedResource, Simulator, Tracer
from repro.sim.kernel import Event, Interrupt
from repro.telemetry import events as EV
from repro.virt.memory import DirtyMemoryModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.virt.machine import PhysicalMachine


class VMState(enum.Enum):
    DEFINED = "defined"
    BOOTING = "booting"
    RUNNING = "running"
    MIGRATING = "migrating"
    STOPPED = "stopped"
    FAILED = "failed"


class VirtualMachine:
    """One guest (paper default: 1 VCPU, 1024 MB, Ubuntu 8.10)."""

    def __init__(self, name: str, config: VMConfig, sim: Simulator,
                 fss: FairShareSystem, fabric: NetworkFabric,
                 memory_model: Optional[DirtyMemoryModel] = None,
                 tracer: Optional[Tracer] = None):
        self.name = name
        self.config = config
        self.sim = sim
        self.fss = fss
        self.fabric = fabric
        self.tracer = tracer or Tracer(enabled=False)
        self.state = VMState.DEFINED
        self.host: Optional["PhysicalMachine"] = None
        self.vcpu = SharedResource(f"{name}.vcpu", float(config.vcpus))
        self.node: Optional[NetNode] = None
        #: NFS share carrying this VM's virtual-disk I/O (None = local disk).
        self.nfs_backend: Optional[SharedResource] = None
        self.memory_model = memory_model or DirtyMemoryModel(config.memory)
        #: Number of in-flight tasks; drives the dirty-page rate.
        self._activity = 0
        self._activity_integral = 0.0
        self._activity_stamp = 0.0
        #: Cumulative core-seconds of work retired (for the monitor).
        self.cpu_seconds = 0.0
        #: Cumulative bytes of disk I/O (for the monitor).
        self.disk_bytes = 0.0
        #: Disk I/O slowdown factor (chaos slow-disk fault): 1.0 = healthy,
        #: k > 1 divides the effective disk/NFS rate by k.
        self.disk_slowdown = 1.0
        self._failure_event: Optional[Event] = None
        # Flow-path tuples are cached because compute/disk flows are the
        # hottest allocation sites of a run; the guards on the current
        # host/backend keep them valid across migration and recovery.
        self._compute_path: Optional[tuple[SharedResource, ...]] = None
        self._nfs_path: Optional[tuple[SharedResource, ...]] = None

    # -- activity accounting ---------------------------------------------
    @property
    def activity(self) -> int:
        """Number of in-flight tasks (instantaneous)."""
        return self._activity

    @activity.setter
    def activity(self, value: int) -> None:
        now = self.sim.now
        self._activity_integral += self._activity * (now - self._activity_stamp)
        self._activity_stamp = now
        self._activity = value

    def activity_integral(self) -> float:
        """Integral of the activity level up to now (task-seconds).

        Live migration samples this at round boundaries: the pages dirtied
        during a pre-copy round depend on how busy the guest was throughout
        the round, not on the instant the round ended —
        ``mean = (integral(t1) - integral(t0)) / (t1 - t0)``.
        """
        now = self.sim.now
        return (self._activity_integral
                + self._activity * (now - self._activity_stamp))

    # -- lifecycle -----------------------------------------------------------
    def _require(self, *states: VMState) -> None:
        if self.state not in states:
            raise VMStateError(
                f"{self.name}: operation requires state in "
                f"{[s.value for s in states]}, but VM is {self.state.value}")

    def attach_to(self, host: "PhysicalMachine") -> None:
        """Place the VM on a host (does not boot it)."""
        self._require(VMState.DEFINED)
        host.admit(self)
        self.host = host
        self.vcpu.rack = host.rack_name
        self.node = self.fabric.attach(self.name, host.net)

    def mark_running(self) -> None:
        self._require(VMState.DEFINED, VMState.BOOTING, VMState.MIGRATING)
        self.state = VMState.RUNNING

    def stop(self) -> None:
        self._require(VMState.RUNNING, VMState.BOOTING)
        self.state = VMState.STOPPED
        if self.host is not None:
            self.host.evict(self)

    def fail(self) -> None:
        """Crash the VM (fault injection).

        The guest is gone: its DRAM is released and any service it hosted
        (DataNode, TaskTracker) must be declared dead by the layers above —
        see :func:`repro.platform.faults.fail_worker`.
        """
        self._require(VMState.RUNNING, VMState.BOOTING, VMState.MIGRATING)
        self.state = VMState.FAILED
        if self.host is not None:
            self.host.evict(self)
        self.tracer.emit(self.sim.now, EV.VM_FAILED, self.name)
        if self._failure_event is not None and not self._failure_event.triggered:
            self._failure_event.succeed(self)

    def failure_event(self) -> Event:
        """An event that fires when (or is already set if) this VM fails.

        Recovery monitors wait on this instead of polling the state, so a
        bare ``sim.run()`` still drains the heap: a pending event occupies
        no heap slot.  The event is reset by :meth:`recover`.
        """
        if self._failure_event is None:
            self._failure_event = Event(self.sim)
            if self.state is VMState.FAILED:
                self._failure_event.succeed(self)
        return self._failure_event

    def recover(self, host: Optional["PhysicalMachine"] = None) -> None:
        """Bring a FAILED VM back to RUNNING (chaos rejoin).

        The guest is re-admitted to ``host`` (default: its previous host)
        with cold caches — dirty-memory state is reset.  Services that ran
        on the VM must be re-registered by the layers above — see
        :func:`repro.platform.faults.rejoin_worker`.
        """
        self._require(VMState.FAILED)
        target = host or self.host
        assert target is not None and self.node is not None
        target.admit(self)
        self.host = target
        self.vcpu.rack = target.rack_name
        self.fabric.move(self.node, target.net)
        self.state = VMState.RUNNING
        self.disk_slowdown = 1.0
        self._failure_event = None
        self.tracer.emit(self.sim.now, EV.VM_RECOVERED, self.name,
                         host=target.name)

    def rehome(self, new_host: "PhysicalMachine") -> None:
        """Move residency to ``new_host`` (called by the migration engine at
        the end of stop-and-copy)."""
        self._require(VMState.MIGRATING)
        assert self.host is not None and self.node is not None
        self.host.evict(self)
        new_host.admit(self)
        self.host = new_host
        self.vcpu.rack = new_host.rack_name
        self.fabric.move(self.node, new_host.net)

    # -- work ------------------------------------------------------------------
    def compute(self, work: float, name: str = "work") -> Event:
        """Charge ``work`` core-seconds; returns the completion event.

        Each call models one task/thread: it can use at most one core, the
        VM's VCPUs cap the VM total, and the host's cores are fair-shared
        among every resident VCPU.
        """
        self._require(VMState.RUNNING, VMState.MIGRATING)
        assert self.host is not None
        return self.sim.process(self._compute_proc(work, name),
                                name=f"{self.name}:{name}")

    def _compute_proc(self, work: float, name: str):
        assert self.host is not None
        self.activity += 1
        flow = None
        done = work
        try:
            if work > 0:
                path = self._compute_path
                if path is None or path[1] is not self.host.cpu:
                    path = self._compute_path = (self.vcpu, self.host.cpu)
                flow = self.fss.open(path, size=work,
                                     cap=1.0, name=f"{self.name}:{name}")
                yield flow.done
        except Interrupt:
            # Preempted (task kill): cancel the remaining demand and charge
            # only the work actually retired.  The process *succeeds* with
            # the partial amount so nothing downstream sees a failure.
            done = self.fss.close(flow) if flow is not None and flow.active \
                else 0.0
        finally:
            self.cpu_seconds += done
            self.activity -= 1
        return done

    def disk_io(self, nbytes: float, name: str = "io") -> Event:
        """Charge ``nbytes`` of virtual-disk I/O.

        The paper's VM images all live on one NFS server, so a guest's disk
        I/O really is network traffic: it crosses the host's physical NIC
        and fair-shares the NFS server with every other VM of the platform.
        When the VM has an ``nfs_backend`` (the normal case — the
        :class:`~repro.virt.datacenter.Datacenter` wires it), the charged
        path is ``[host.nic, nfs]``; otherwise the host's local disk is
        used (standalone tests).
        """
        self._require(VMState.RUNNING, VMState.MIGRATING)
        assert self.host is not None
        return self.sim.process(self._disk_proc(nbytes, name),
                                name=f"{self.name}:{name}")

    def _disk_proc(self, nbytes: float, name: str):
        assert self.host is not None
        flow = None
        done = nbytes
        try:
            if nbytes > 0:
                # A slow-disk fault (chaos) divides the effective device
                # rate by ``disk_slowdown`` via a per-flow rate cap.
                slow = max(1.0, self.disk_slowdown)
                if self.nfs_backend is not None:
                    # Guest page cache / write-back absorbs most of the I/O
                    # at memory speed; only the miss fraction reaches the
                    # NFS server, crossing the host's physical NIC.
                    cached = nbytes * C.DISK_CACHE_HIT_RATIO
                    missed = nbytes - cached
                    yield self.sim.timeout(cached * slow / C.PAGE_CACHE_BPS)
                    if missed > 0:
                        path = self._nfs_path
                        if (path is None
                                or path[0] is not self.host.net.nic
                                or path[1] is not self.nfs_backend):
                            path = self._nfs_path = (self.host.net.nic,
                                                     self.nfs_backend)
                        # Cap from *nominal* device speed: a concurrent
                        # net fault lowers ``capacity`` transiently, and
                        # baking that into the flow's lifetime cap would
                        # keep it crawling long after the fault heals.
                        cap = (None if slow == 1.0 else
                               min(r.nominal for r in path) / slow)
                        flow = self.fss.open(path, size=float(missed),
                                             cap=cap,
                                             name=f"{self.name}:{name}")
                        yield flow.done
                else:
                    cap = (None if slow == 1.0 else
                           self.host.disk.nominal / slow)
                    flow = self.fss.open([self.host.disk],
                                         size=float(nbytes), cap=cap,
                                         name=f"{self.name}:{name}")
                    yield flow.done
        except Interrupt:
            # Preempted: abandon the remaining I/O, keep what was moved.
            done = self.fss.close(flow) if flow is not None and flow.active \
                else 0.0
        self.disk_bytes += done
        return done

    def __repr__(self) -> str:  # pragma: no cover
        where = self.host.name if self.host else "nowhere"
        return f"<VM {self.name} {self.state.value} on {where}>"
