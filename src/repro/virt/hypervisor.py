"""Per-host hypervisor: placement, boot, shutdown.

Booting a VM streams its image header/working pages from the NFS image
store through the host's NIC (the paper's images all live on one NFS
server), then pays a fixed guest-boot delay.  Placement enforces the Xen
no-overcommit rule for memory; CPU may be oversubscribed — that is the
whole point of the "normal" 16-VMs-on-one-host configuration.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PlacementError, VMStateError
from repro.sim import Simulator, Tracer
from repro.sim.kernel import Event
from repro.telemetry import events as EV
from repro.virt.image_store import NfsImageStore
from repro.virt.machine import PhysicalMachine
from repro.virt.vm import VirtualMachine, VMState

#: Guest OS boot time once the image is reachable, seconds.
GUEST_BOOT_S: float = 18.0
#: Fraction of the image streamed from NFS at boot (lazy fetch of the rest).
BOOT_FETCH_FRACTION: float = 0.04


class Hypervisor:
    """Control plane of one physical machine."""

    def __init__(self, host: PhysicalMachine, sim: Simulator,
                 image_store: Optional[NfsImageStore] = None,
                 tracer: Optional[Tracer] = None, metrics=None):
        self.host = host
        self.sim = sim
        self.image_store = image_store
        self.tracer = tracer or Tracer(enabled=False)
        self.metrics = metrics

    def place(self, vm: VirtualMachine) -> None:
        """Admit a defined VM onto this host (memory must fit)."""
        if vm.state is not VMState.DEFINED:
            raise VMStateError(f"{vm.name} must be DEFINED to be placed")
        if vm.config.memory > self.host.dram_free:
            raise PlacementError(
                f"{vm.name} needs {vm.config.memory} B on {self.host.name}, "
                f"free: {self.host.dram_free} B")
        vm.attach_to(self.host)
        self.tracer.emit(self.sim.now, EV.VM_PLACE, vm.name,
                         host=self.host.name)

    def boot(self, vm: VirtualMachine, image: str = "base") -> Event:
        """Boot a placed VM; returns an event valued with boot seconds."""
        if vm.host is not self.host:
            raise VMStateError(f"{vm.name} is not placed on {self.host.name}")
        return self.sim.process(self._boot_proc(vm, image),
                                name=f"boot:{vm.name}")

    def _boot_proc(self, vm: VirtualMachine, image: str):
        started = self.sim.now
        vm.state = VMState.BOOTING
        span = self.tracer.begin_span(started, EV.VM_BOOT, vm.name,
                                      host=self.host.name)
        if self.image_store is not None and image in self.image_store.images:
            size = self.image_store.images[image] * BOOT_FETCH_FRACTION
            yield self.image_store.read_through(
                self.host.dom0, size, name=f"nfs:boot:{vm.name}")
        yield self.sim.timeout(GUEST_BOOT_S)
        vm.mark_running()
        elapsed = self.sim.now - started
        self.tracer.end_span(span, self.sim.now, elapsed=elapsed)
        if self.metrics is not None:
            self.metrics.histogram(
                "vm.boot.duration", "NFS image fetch + guest boot",
                {"host": self.host.name}).observe(elapsed)
        return elapsed

    def shutdown(self, vm: VirtualMachine) -> None:
        if vm.host is not self.host:
            raise VMStateError(f"{vm.name} is not on {self.host.name}")
        vm.stop()
        self.tracer.emit(self.sim.now, EV.VM_SHUTDOWN, vm.name,
                         host=self.host.name)
