"""The MapReduce Tuner: evaluate rules, apply recommendations.

Closing the paper's Fig. 1 loop: monitor -> analyse -> recommend -> apply,
where *apply* is either :meth:`HadoopVirtualCluster.reconfigure` or a batch
of live migrations through the platform's :class:`LiveMigrator`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING, Union

from repro.errors import TunerError
from repro.monitor.analyser import NmonAnalyser
from repro.tuner.rules import DEFAULT_RULES, Recommendation, TuningRule

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import HadoopVirtualCluster
    from repro.telemetry.facade import Telemetry


@dataclass
class TuningLogEntry:
    time: float
    recommendation: Recommendation
    applied: bool
    detail: str = ""


class MapReduceTuner:
    """Rule-driven tuner bound to one cluster's :class:`Telemetry` handle.

    Pass nothing for ``telemetry`` to use ``cluster.telemetry`` (the normal
    case).  Passing a bare :class:`NmonAnalyser` is deprecated: the facade
    adopts it, and the tuner reads every metric through the facade.
    Callers who were constructing an analyser just to drive detection
    should instead attach an :class:`~repro.observatory.core.Observatory`
    and use the alert-driven rules
    (:class:`~repro.tuner.rules.SpeculateOnStragglersRule`,
    :class:`~repro.tuner.rules.MigrateOffHotHostRule`) — the observatory
    does the anomaly detection online and the rules consume its alerts.
    """

    def __init__(self, cluster: "HadoopVirtualCluster",
                 telemetry: Union["Telemetry", NmonAnalyser, None] = None,
                 rules: Sequence[TuningRule] = DEFAULT_RULES):
        if not rules:
            raise TunerError("tuner needs at least one rule")
        self.cluster = cluster
        if telemetry is None:
            self.telemetry = cluster.telemetry
        elif isinstance(telemetry, NmonAnalyser):
            warnings.warn(
                "passing an NmonAnalyser to MapReduceTuner is deprecated; "
                "pass a Telemetry handle (or nothing to use "
                "cluster.telemetry)", DeprecationWarning, stacklevel=2)
            self.telemetry = cluster.telemetry
            self.telemetry.adopt_analyser(telemetry)
        else:
            self.telemetry = telemetry
        self.rules = list(rules)
        self.log: list[TuningLogEntry] = []

    @property
    def analyser(self) -> NmonAnalyser:
        return self.telemetry.analyser

    # -- evaluation ----------------------------------------------------------
    def recommend(self) -> Optional[Recommendation]:
        """First matching rule's recommendation (rules are priority-ordered)."""
        report = self.telemetry.bottleneck()
        for rule in self.rules:
            rec = rule.evaluate(self.cluster, self.analyser, report)
            if rec is not None:
                return rec
        return None

    # -- application ------------------------------------------------------------
    def apply(self, recommendation: Recommendation) -> None:
        """Apply one recommendation (reconfigure immediately; migrations
        run to completion on the simulator)."""
        if recommendation.kind == "reconfigure":
            new_config = self.cluster.config.replace(
                **recommendation.config_changes)
            self.cluster.reconfigure(new_config)
            self.log.append(TuningLogEntry(
                self.cluster.sim.now, recommendation, True,
                detail=str(recommendation.config_changes)))
        elif recommendation.kind == "migrate":
            dc = self.cluster.datacenter
            moved = []
            for vm_name, host_index in recommendation.migrations:
                vm = dc.vms[vm_name]
                event = dc.migrator.migrate(vm, dc.machine(host_index))
                dc.sim.run_until(event)
                moved.append(vm_name)
            self.log.append(TuningLogEntry(
                self.cluster.sim.now, recommendation, True,
                detail=f"migrated {moved}"))
        elif recommendation.kind == "none":
            self.log.append(TuningLogEntry(
                self.cluster.sim.now, recommendation, False))
        else:
            raise TunerError(
                f"unknown recommendation kind {recommendation.kind!r}")

    def step(self) -> Optional[Recommendation]:
        """One monitor->recommend->apply cycle; returns what was applied."""
        recommendation = self.recommend()
        if recommendation is not None:
            self.apply(recommendation)
        return recommendation
