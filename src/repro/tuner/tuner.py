"""The MapReduce Tuner: evaluate rules, apply recommendations.

Closing the paper's Fig. 1 loop: monitor -> analyse -> recommend -> apply,
where *apply* is either :meth:`HadoopVirtualCluster.reconfigure` or a batch
of live migrations through the platform's :class:`LiveMigrator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.errors import TunerError
from repro.monitor.analyser import NmonAnalyser
from repro.tuner.rules import DEFAULT_RULES, Recommendation, TuningRule

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import HadoopVirtualCluster


@dataclass
class TuningLogEntry:
    time: float
    recommendation: Recommendation
    applied: bool
    detail: str = ""


class MapReduceTuner:
    """Rule-driven tuner bound to one cluster and its monitor."""

    def __init__(self, cluster: "HadoopVirtualCluster",
                 analyser: NmonAnalyser,
                 rules: Sequence[TuningRule] = DEFAULT_RULES):
        if not rules:
            raise TunerError("tuner needs at least one rule")
        self.cluster = cluster
        self.analyser = analyser
        self.rules = list(rules)
        self.log: list[TuningLogEntry] = []

    # -- evaluation ----------------------------------------------------------
    def recommend(self) -> Optional[Recommendation]:
        """First matching rule's recommendation (rules are priority-ordered)."""
        shared = self._shared_resources()
        report = self.analyser.bottleneck(shared, now=self.cluster.sim.now)
        for rule in self.rules:
            rec = rule.evaluate(self.cluster, self.analyser, report)
            if rec is not None:
                return rec
        return None

    def _shared_resources(self):
        dc = self.cluster.datacenter
        resources = []
        for machine in dc.machines:
            resources.extend([machine.cpu, machine.net.nic,
                              machine.net.netback, machine.net.bridge])
        resources.append(dc.image_store.node.vnic)
        return resources

    # -- application ------------------------------------------------------------
    def apply(self, recommendation: Recommendation) -> None:
        """Apply one recommendation (reconfigure immediately; migrations
        run to completion on the simulator)."""
        if recommendation.kind == "reconfigure":
            new_config = self.cluster.config.replace(
                **recommendation.config_changes)
            self.cluster.reconfigure(new_config)
            self.log.append(TuningLogEntry(
                self.cluster.sim.now, recommendation, True,
                detail=str(recommendation.config_changes)))
        elif recommendation.kind == "migrate":
            dc = self.cluster.datacenter
            moved = []
            for vm_name, host_index in recommendation.migrations:
                vm = dc.vms[vm_name]
                event = dc.migrator.migrate(vm, dc.machine(host_index))
                dc.sim.run_until(event)
                moved.append(vm_name)
            self.log.append(TuningLogEntry(
                self.cluster.sim.now, recommendation, True,
                detail=f"migrated {moved}"))
        elif recommendation.kind == "none":
            self.log.append(TuningLogEntry(
                self.cluster.sim.now, recommendation, False))
        else:
            raise TunerError(
                f"unknown recommendation kind {recommendation.kind!r}")

    def step(self) -> Optional[Recommendation]:
        """One monitor->recommend->apply cycle; returns what was applied."""
        recommendation = self.recommend()
        if recommendation is not None:
            self.apply(recommendation)
        return recommendation
