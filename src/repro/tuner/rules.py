"""Tuning rules.

Each rule inspects a :class:`~repro.monitor.analyser.BottleneckReport` (and
the cluster) and may emit a :class:`Recommendation` — either a Hadoop
parameter change or a live-migration plan.  Rules are deliberately simple
threshold rules: the paper's Tuner is a closed-loop knob-turner, not an
optimizer.

Two rule families exist:

* **metric rules** (the originals) read nmon aggregates and scheduler
  counters;
* **alert rules** (:class:`SpeculateOnStragglersRule`,
  :class:`MigrateOffHotHostRule`) are driven by the observatory's SLO
  alerts — the detection work already happened online, the rule only
  decides the knob.  Construct them with the
  :class:`~repro.observatory.core.Observatory` handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.monitor.analyser import BottleneckReport, NmonAnalyser

if TYPE_CHECKING:  # pragma: no cover
    from repro.observatory.core import Observatory
    from repro.platform.cluster import HadoopVirtualCluster


@dataclass(frozen=True)
class Recommendation:
    """One proposed adjustment."""

    rule: str
    kind: str                 # "reconfigure" | "migrate" | "none"
    reason: str
    #: for kind == "reconfigure": HadoopConfig.replace(**config_changes)
    config_changes: dict = field(default_factory=dict)
    #: for kind == "migrate": [(vm_name, destination_host_index)]
    migrations: tuple = ()


class TuningRule:
    """Base class: inspect and maybe recommend."""

    name = "abstract"

    def evaluate(self, cluster: "HadoopVirtualCluster",
                 analyser: NmonAnalyser, report: BottleneckReport
                 ) -> Optional[Recommendation]:
        raise NotImplementedError


class ReduceSlotsWhenSaturatedRule(TuningRule):
    """VCPUs pegged -> fewer concurrent tasks per tracker."""

    name = "reduce-slots-when-cpu-saturated"

    def __init__(self, cpu_threshold: float = 0.9):
        self.cpu_threshold = cpu_threshold

    def evaluate(self, cluster, analyser, report):
        summaries = report.node_summaries
        if not summaries:
            return None
        mean_cpu = sum(s.cpu_mean for s in summaries) / len(summaries)
        slots = cluster.config.map_tasks_maximum
        if mean_cpu > self.cpu_threshold and slots > 1:
            return Recommendation(
                rule=self.name, kind="reconfigure",
                reason=f"mean VCPU utilization {mean_cpu:.2f} > "
                       f"{self.cpu_threshold}: lowering map slots",
                config_changes={"map_tasks_maximum": slots - 1})
        return None


class IncreaseSlotsWhenCpuIdleRule(TuningRule):
    """CPUs idle while tasks queue -> more concurrent tasks per tracker."""

    name = "increase-slots-when-cpu-idle"

    def __init__(self, cpu_threshold: float = 0.35, max_slots: int = 4):
        self.cpu_threshold = cpu_threshold
        self.max_slots = max_slots

    def evaluate(self, cluster, analyser, report):
        summaries = report.node_summaries
        if not summaries:
            return None
        mean_cpu = sum(s.cpu_mean for s in summaries) / len(summaries)
        slots = cluster.config.map_tasks_maximum
        if mean_cpu < self.cpu_threshold and slots < self.max_slots:
            return Recommendation(
                rule=self.name, kind="reconfigure",
                reason=f"mean VCPU utilization {mean_cpu:.2f} < "
                       f"{self.cpu_threshold}: raising map slots",
                config_changes={"map_tasks_maximum": slots + 1})
        return None


class IncreaseSlotsWhenBacklogRule(TuningRule):
    """Scheduler backlog deep while CPUs have headroom -> more map slots.

    The first rule fed by JobTracker-level metrics rather than nmon data:
    it reads the live :class:`~repro.scheduler.JobScheduler` backlog
    (pending map tasks vs. total map slots) and only widens trackers when
    the monitor confirms the VCPUs are not the bottleneck.
    """

    name = "increase-slots-when-backlog"

    def __init__(self, scheduler, backlog_factor: float = 2.0,
                 cpu_threshold: float = 0.7, max_slots: int = 4):
        self.scheduler = scheduler
        self.backlog_factor = backlog_factor
        self.cpu_threshold = cpu_threshold
        self.max_slots = max_slots

    def evaluate(self, cluster, analyser, report):
        total = self.scheduler.total_slots("map")
        backlog = self.scheduler.backlog("map")
        if total == 0 or backlog < self.backlog_factor * total:
            return None
        summaries = report.node_summaries
        mean_cpu = (sum(s.cpu_mean for s in summaries) / len(summaries)
                    if summaries else 0.0)
        if mean_cpu >= self.cpu_threshold:
            return None
        slots = cluster.config.map_tasks_maximum
        if slots >= self.max_slots:
            return None
        return Recommendation(
            rule=self.name, kind="reconfigure",
            reason=f"scheduler backlog {backlog} >= "
                   f"{self.backlog_factor:g}x{total} map slots with mean "
                   f"VCPU {mean_cpu:.2f} < {self.cpu_threshold}: "
                   f"raising map slots",
            config_changes={"map_tasks_maximum": slots + 1})


class ConsolidateCrossDomainRule(TuningRule):
    """Cross-domain cluster bottlenecked on NIC/netback -> migrate the
    minority half onto the majority host (undo the cross-domain split)."""

    name = "consolidate-cross-domain"

    def __init__(self, net_busy_threshold: float = 0.5):
        self.net_busy_threshold = net_busy_threshold

    def evaluate(self, cluster, analyser, report):
        if not cluster.cross_domain:
            return None
        busy_net = any(
            frac > self.net_busy_threshold
            for name, frac in report.busy_fractions.items()
            if ".nic" in name or ".netback" in name)
        if not busy_net:
            return None
        machines = cluster.datacenter.machines
        by_host: dict[str, list] = {}
        for vm in cluster.vms:
            by_host.setdefault(vm.host.name, []).append(vm)
        majority = max(by_host, key=lambda h: len(by_host[h]))
        target_index = next(i for i, m in enumerate(machines)
                            if m.name == majority)
        target = machines[target_index]
        movers = [vm for host, vms in by_host.items() if host != majority
                  for vm in vms]
        movable = []
        free = target.dram_free
        for vm in movers:
            if vm.config.memory <= free:
                movable.append((vm.name, target_index))
                free -= vm.config.memory
        if not movable:
            return None
        return Recommendation(
            rule=self.name, kind="migrate",
            reason=f"cross-domain cluster with hot NIC/netback: "
                   f"consolidating {len(movable)} VM(s) onto {majority}",
            migrations=tuple(movable))


class RebalanceByMigrationRule(TuningRule):
    """High per-node CPU imbalance -> migrate the hottest VM to the host
    with the most free DRAM (a different host)."""

    name = "rebalance-by-migration"

    def __init__(self, imbalance_threshold: float = 0.6):
        self.imbalance_threshold = imbalance_threshold

    def evaluate(self, cluster, analyser, report):
        imbalance = analyser.imbalance()
        if imbalance < self.imbalance_threshold:
            return None
        summaries = sorted(report.node_summaries, key=lambda s: -s.cpu_mean)
        hottest = summaries[0]
        vm = next(v for v in cluster.vms if v.name == hottest.vm)
        machines = cluster.datacenter.machines
        candidates = [(i, m) for i, m in enumerate(machines)
                      if m is not vm.host and m.dram_free >= vm.config.memory]
        if not candidates:
            return None
        index, _machine = max(candidates, key=lambda im: im[1].dram_free)
        return Recommendation(
            rule=self.name, kind="migrate",
            reason=f"CPU imbalance {imbalance:.2f} >= "
                   f"{self.imbalance_threshold}: migrating {vm.name}",
            migrations=((vm.name, index),))


class SpeculateOnStragglersRule(TuningRule):
    """Straggler alerts -> raise speculative-execution pressure.

    Each evaluation consumes the ``straggler-task`` alerts the
    observatory fired since the previous one (a cursor, so a post-job
    tuner step still sees that run's stragglers).  The first response is
    to switch speculative execution on; once on, the slowdown threshold
    is ratcheted down (×0.75 per step, floored) so speculation triggers
    earlier on clusters that keep producing stragglers.
    """

    name = "speculate-on-stragglers"

    def __init__(self, observatory: "Observatory", min_alerts: int = 1,
                 ratchet: float = 0.75, floor: float = 1.2):
        self.observatory = observatory
        self.min_alerts = min_alerts
        self.ratchet = ratchet
        self.floor = floor
        self._cursor = 0

    def evaluate(self, cluster, analyser, report):
        alerts = self.observatory.alerts("straggler-task")
        fresh = alerts[self._cursor:]
        self._cursor = len(alerts)
        if len(fresh) < self.min_alerts:
            return None
        tasks = sorted({a.target for a in fresh})
        if not cluster.config.speculative_execution:
            return Recommendation(
                rule=self.name, kind="reconfigure",
                reason=f"{len(fresh)} straggler alert(s) "
                       f"({', '.join(tasks[:4])}): enabling speculative "
                       f"execution",
                config_changes={"speculative_execution": True})
        slowdown = cluster.config.speculative_slowdown
        lowered = max(self.floor, slowdown * self.ratchet)
        if lowered >= slowdown:
            return None
        return Recommendation(
            rule=self.name, kind="reconfigure",
            reason=f"{len(fresh)} straggler alert(s) with speculation "
                   f"already on: lowering speculative_slowdown "
                   f"{slowdown:g} -> {lowered:g}",
            config_changes={"speculative_slowdown": lowered})


class MigrateOffHotHostRule(TuningRule):
    """Hot-host alerts -> migrate that host's busiest VM elsewhere.

    Consumes fresh ``hot-host`` alerts (cursor, like
    :class:`SpeculateOnStragglersRule`) and proposes moving the alerted
    host's highest-CPU resident to the machine with the most free DRAM.
    """

    name = "migrate-off-hot-host"

    def __init__(self, observatory: "Observatory"):
        self.observatory = observatory
        self._cursor = 0

    def evaluate(self, cluster, analyser, report):
        alerts = self.observatory.alerts("hot-host")
        fresh = alerts[self._cursor:]
        self._cursor = len(alerts)
        if not fresh:
            return None
        alert = fresh[-1]
        residents = [vm for vm in cluster.vms
                     if vm.host is not None
                     and vm.host.name == alert.target]
        if not residents:
            return None
        cpu_of = {s.vm: s.cpu_mean for s in report.node_summaries}
        hottest = max(residents,
                      key=lambda vm: (cpu_of.get(vm.name, 0.0), vm.name))
        machines = cluster.datacenter.machines
        candidates = [
            (i, m) for i, m in enumerate(machines)
            if m.name != alert.target
            and m.dram_free >= hottest.config.memory]
        if not candidates:
            return None
        index, _machine = max(candidates, key=lambda im: im[1].dram_free)
        return Recommendation(
            rule=self.name, kind="migrate",
            reason=f"hot-host alert on {alert.target} (cpu "
                   f"{alert.value:.0%}): migrating {hottest.name} to "
                   f"{machines[index].name}",
            migrations=((hottest.name, index),))


DEFAULT_RULES: tuple[TuningRule, ...] = (
    ReduceSlotsWhenSaturatedRule(),
    IncreaseSlotsWhenCpuIdleRule(),
    ConsolidateCrossDomainRule(),
    RebalanceByMigrationRule(),
)
