"""Shared infrastructure of the clustering drivers.

* :class:`ClusterModel` — one cluster (id, center, weight, radius) plus the
  per-iteration history that Fig. 8's visualization overlays;
* :class:`ClusteringResult` — what every driver returns: final models,
  optional point assignments, per-iteration runtimes, total runtime;
* executors — a driver talks to an abstract *executor*:

  - :class:`ClusterExecutor` runs each iteration as a real MapReduce job on
    a :class:`~repro.platform.cluster.HadoopVirtualCluster` (simulated time
    accumulates);
  - :class:`LocalExecutor` runs the same jobs through
    :class:`~repro.mapreduce.local.LocalJobRunner` (no time, pure math) —
    used by unit tests and by the equivalence properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.errors import ClusteringError
from repro.mapreduce.job import Job
from repro.mapreduce.local import LocalJobRunner

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.runner import JobReport, MapReduceRunner
    from repro.platform.cluster import HadoopVirtualCluster


# -- data plumbing -----------------------------------------------------------

def points_as_records(points: np.ndarray) -> list[tuple[int, tuple]]:
    """(N, d) array -> [(point_id, tuple(coords))]: the HDFS input records."""
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2:
        raise ClusteringError(f"points must be 2-D, got shape {arr.shape}")
    return [(i, tuple(row)) for i, row in enumerate(arr)]


def vector_sizeof(record) -> int:
    """Serialized size of one (id, vector) record (Mahout VectorWritable)."""
    _key, vec = record
    return 16 + 8 * len(vec)


# -- models --------------------------------------------------------------------

@dataclass
class ClusterModel:
    """One cluster: identity, center, and summary statistics."""

    cluster_id: int
    center: tuple
    weight: float = 0.0          # number of points (possibly fractional)
    radius: float = 0.0          # RMS distance of members to the center

    def center_array(self) -> np.ndarray:
        return np.asarray(self.center, dtype=float)

    def as_tuple(self) -> tuple:
        return (self.cluster_id, tuple(self.center), float(self.weight),
                float(self.radius))


@dataclass
class ClusteringResult:
    """Output of one driver run."""

    algorithm: str
    models: list[ClusterModel]
    #: point_id -> cluster_id (hard assignment), if the driver produced one.
    assignments: dict[int, int] = field(default_factory=dict)
    #: models after each iteration (for Fig. 8's overlay).
    history: list[list[ClusterModel]] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False
    #: Simulated seconds (0 for LocalExecutor runs).
    runtime_s: float = 0.0
    per_iteration_s: list[float] = field(default_factory=list)

    @property
    def k(self) -> int:
        return len(self.models)

    def centers(self) -> np.ndarray:
        if not self.models:
            return np.empty((0, 0))
        return np.vstack([m.center_array() for m in self.models])


# -- executors ---------------------------------------------------------------

class Executor:
    """What a clustering driver needs from the world."""

    def run_job(self, job: Job) -> tuple[list, float]:
        """Execute the job; return (output_pairs, elapsed_seconds)."""
        raise NotImplementedError

    def input_records(self, path: str) -> list:
        raise NotImplementedError

    def rng(self, name: str) -> np.random.Generator:
        raise NotImplementedError


class ClusterExecutor(Executor):
    """Runs driver jobs on a hadoop virtual cluster (simulated time)."""

    def __init__(self, runner: "MapReduceRunner",
                 cluster: "HadoopVirtualCluster"):
        self.runner = runner
        self.cluster = cluster
        self.reports: list["JobReport"] = []

    def run_job(self, job: Job) -> tuple[list, float]:
        report = self.runner.run_to_completion(job)
        self.reports.append(report)
        return self.runner.read_output(report), report.elapsed

    def input_records(self, path: str) -> list:
        return list(self.cluster.dfs.peek_records(path))

    def rng(self, name: str) -> np.random.Generator:
        return self.cluster.datacenter.rng.stream(name)


class LocalExecutor(Executor):
    """Runs driver jobs functionally over in-memory records."""

    def __init__(self, inputs: Optional[dict[str, Sequence]] = None,
                 seed: int = 0):
        self.inputs: dict[str, list] = {k: list(v)
                                        for k, v in (inputs or {}).items()}
        self.outputs: dict[str, list] = {}
        self._seed = seed
        self._rngs: dict[str, np.random.Generator] = {}

    def add_input(self, path: str, records: Sequence) -> None:
        self.inputs[path] = list(records)

    def run_job(self, job: Job) -> tuple[list, float]:
        records: list = []
        for path in job.input_paths:
            try:
                records.extend(self.inputs[path])
            except KeyError:
                try:
                    records.extend(self.outputs[path])
                except KeyError:
                    raise ClusteringError(
                        f"LocalExecutor: no input staged at {path!r}") from None
        output = LocalJobRunner().run(job, records)
        self.outputs[job.output_path] = list(output)
        return output, 0.0

    def input_records(self, path: str) -> list:
        if path in self.inputs:
            return list(self.inputs[path])
        return list(self.outputs[path])

    def rng(self, name: str) -> np.random.Generator:
        if name not in self._rngs:
            import hashlib
            entropy = int.from_bytes(
                hashlib.sha256(name.encode()).digest()[:8], "little")
            self._rngs[name] = np.random.default_rng(
                np.random.SeedSequence([self._seed, entropy]))
        return self._rngs[name]


# -- shared helpers -----------------------------------------------------------

def summarize_members(center: np.ndarray, members: np.ndarray
                      ) -> tuple[float, float]:
    """(weight, radius) of a member matrix around a center."""
    if members.size == 0:
        return 0.0, 0.0
    diffs = members - center[None, :]
    rms = float(np.sqrt(np.mean(np.sum(diffs * diffs, axis=1))))
    return float(len(members)), rms


def stage_points(platform, cluster, path: str, points: np.ndarray,
                 timed: bool = False) -> None:
    """Upload a point matrix to a cluster's HDFS as (id, vector) records."""
    platform.upload(cluster, path, points_as_records(points),
                    sizeof=vector_sizeof, timed=timed)
