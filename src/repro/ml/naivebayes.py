"""Multinomial Naive Bayes as MapReduce (the *classification* category of
the paper's Machine Learning Algorithm Library).

Mahout 0.6 ships ``TrainClassifier``/``TestClassifier`` built on exactly
this layout:

* **training job** — mapper emits ``(("label", label), 1)`` for each
  document and ``((label, token), count)`` for each token occurrence;
  combiner/reducer sum.  The driver assembles per-label priors and
  Laplace-smoothed token log-likelihoods;
* **classification job** — map-only: each document is scored under every
  label (``log prior + sum token counts * log P(token | label)``); emits
  ``(doc_id, best_label)``.

Documents are ``(doc_id, (label, tokens))`` records for training and
``(doc_id, tokens)`` for classification, with tokens a tuple of strings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import ClusteringError
from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import Job
from repro.ml.base import Executor

_LABEL_MARKER = "\x00label"


class TrainMapper(Mapper):
    """(doc_id, (label, tokens)) -> label and (label, token) counts."""

    def map(self, key, value, context: Context) -> None:
        label, tokens = value
        context.emit((_LABEL_MARKER, label), 1)
        counts: dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        for token, count in counts.items():
            context.emit((label, token), count)


class SumReducer(Reducer):
    def reduce(self, key, values, context: Context) -> None:
        context.emit(key, sum(values))


@dataclass
class NaiveBayesModel:
    """Priors + smoothed token likelihoods."""

    labels: tuple
    log_priors: dict
    #: (label, token) -> log P(token | label), Laplace-smoothed.
    log_likelihoods: dict
    #: label -> log of the unseen-token fallback probability.
    log_unseen: dict
    vocabulary: frozenset = field(default_factory=frozenset)

    def score(self, tokens: Iterable[str], label: str) -> float:
        total = self.log_priors[label]
        for token in tokens:
            total += self.log_likelihoods.get(
                (label, token), self.log_unseen[label])
        return total

    def classify(self, tokens: Sequence[str]) -> str:
        return max(self.labels, key=lambda lb: self.score(tokens, lb))


class ClassifyMapper(Mapper):
    """(doc_id, tokens) -> (doc_id, predicted_label)."""

    def __init__(self, model: NaiveBayesModel):
        self.model = model

    def map(self, key, value, context: Context) -> None:
        context.emit(key, self.model.classify(tuple(value)))


def _pair_sizeof(pair) -> int:
    key, _count = pair
    return len(repr(key)) + 8


class NaiveBayesDriver:
    """Train + classify over an :class:`~repro.ml.base.Executor`."""

    def __init__(self, alpha: float = 1.0, n_reduces: int = 1):
        if alpha <= 0:
            raise ClusteringError("Laplace alpha must be > 0")
        self.alpha = float(alpha)
        self.n_reduces = n_reduces

    # -- training -------------------------------------------------------------
    def train(self, executor: Executor, input_path: str,
              work_prefix: str = "/nbayes") -> tuple[NaiveBayesModel, float]:
        """Returns (model, simulated seconds)."""
        job = Job(
            name="nbayes-train",
            input_paths=[input_path],
            output_path=f"{work_prefix}/model",
            mapper=TrainMapper,
            combiner=SumReducer,
            reducer=SumReducer,
            n_reduces=self.n_reduces,
            intermediate_sizeof=_pair_sizeof,
            output_sizeof=_pair_sizeof,
            map_cpu_per_record=5.0e-5,
            reduce_cpu_per_record=5.0e-6,
        )
        output, elapsed = executor.run_job(job)
        return self._assemble(output), elapsed

    def _assemble(self, counts: list) -> NaiveBayesModel:
        doc_counts: dict[str, int] = {}
        token_counts: dict[tuple, int] = {}
        label_token_totals: dict[str, int] = {}
        vocabulary: set[str] = set()
        for key, count in counts:
            marker, second = key
            if marker == _LABEL_MARKER:
                doc_counts[second] = count
            else:
                token_counts[(marker, second)] = count
                label_token_totals[marker] = \
                    label_token_totals.get(marker, 0) + count
                vocabulary.add(second)
        if not doc_counts:
            raise ClusteringError("training set contained no documents")
        total_docs = sum(doc_counts.values())
        v = max(1, len(vocabulary))
        labels = tuple(sorted(doc_counts))
        log_priors = {lb: math.log(doc_counts[lb] / total_docs)
                      for lb in labels}
        log_likelihoods = {}
        log_unseen = {}
        for lb in labels:
            denominator = label_token_totals.get(lb, 0) + self.alpha * v
            log_unseen[lb] = math.log(self.alpha / denominator)
            for (label, token), count in token_counts.items():
                if label == lb:
                    log_likelihoods[(lb, token)] = math.log(
                        (count + self.alpha) / denominator)
        return NaiveBayesModel(labels=labels, log_priors=log_priors,
                               log_likelihoods=log_likelihoods,
                               log_unseen=log_unseen,
                               vocabulary=frozenset(vocabulary))

    # -- classification ---------------------------------------------------------
    def classify(self, executor: Executor, model: NaiveBayesModel,
                 input_path: str, work_prefix: str = "/nbayes"
                 ) -> tuple[dict, float]:
        """Classify (doc_id, tokens) records; returns ({doc: label}, secs)."""
        job = Job(
            name="nbayes-classify",
            input_paths=[input_path],
            output_path=f"{work_prefix}/predictions",
            mapper=lambda: ClassifyMapper(model),
            n_reduces=0,
            output_sizeof=lambda pair: len(str(pair[1])) + 12,
            map_cpu_per_record=2.0e-5 + 1.0e-7 * len(model.vocabulary) ** 0.5,
        )
        output, elapsed = executor.run_job(job)
        return {doc: label for doc, label in output}, elapsed

    @staticmethod
    def accuracy(predictions: dict, truth: dict) -> float:
        if not truth:
            raise ClusteringError("empty truth set")
        hits = sum(1 for doc, label in truth.items()
                   if predictions.get(doc) == label)
        return hits / len(truth)
