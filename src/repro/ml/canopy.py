"""Canopy clustering (McCallum, Nigam & Ungar) as one MapReduce pass.

Mahout's ``CanopyDriver``: distance thresholds ``T1 > T2``.

* **mapper** — streams its split through the canopy rule: a point within
  ``T2`` of an existing local canopy center is *strongly bound* (absorbed);
  otherwise it founds a new canopy.  Points within ``T1`` contribute to a
  canopy's running centroid.  The mapper emits each local canopy centroid;
* **reducer** — re-clusters all mapper centroids with the same rule,
  producing the final canopy centers.

Canopy is a single pass (the paper calls it "simple, fast and accurate")
and is typically used to seed k-Means.  An optional clusterdata pass
assigns each point to its closest canopy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ClusteringError
from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import Job
from repro.ml.base import ClusterModel, ClusteringResult, Executor
from repro.ml.kmeans import AssignMapper, _map_record_cost
from repro.ml.vectors import DistanceMeasure, EuclideanDistance


def canopy_pass(points: np.ndarray, t1: float, t2: float,
                measure: DistanceMeasure) -> list[tuple[np.ndarray, int]]:
    """The sequential canopy rule: [(centroid, n_contributors)].

    Centroids are running means of the points within ``T1`` of the canopy's
    founding point.
    """
    canopies: list[list] = []  # [founder, sum, count]
    for point in points:
        absorbed = False
        for canopy in canopies:
            dist = measure.distance(point, canopy[0])
            if dist < t1:
                canopy[1] = canopy[1] + point
                canopy[2] += 1
            if dist < t2:
                absorbed = True
        if not absorbed:
            canopies.append([point.copy(), point.copy(), 1])
    return [(c[1] / c[2], c[2]) for c in canopies]


class CanopyMapper(Mapper):
    """Local canopy formation over the split."""

    def __init__(self, t1: float, t2: float, measure: DistanceMeasure):
        self.t1, self.t2 = t1, t2
        self.measure = measure
        self._points: list[np.ndarray] = []

    def map(self, key, value, context: Context) -> None:
        self._points.append(np.asarray(value, dtype=float))

    def cleanup(self, context: Context) -> None:
        if not self._points:
            return
        for centroid, count in canopy_pass(np.asarray(self._points),
                                           self.t1, self.t2, self.measure):
            context.emit("centroid", (tuple(centroid), count))
        self._points.clear()


class CanopyReducer(Reducer):
    """Re-cluster the mapper centroids into the final canopies."""

    def __init__(self, t1: float, t2: float, measure: DistanceMeasure):
        self.t1, self.t2 = t1, t2
        self.measure = measure

    def reduce(self, key, values, context: Context) -> None:
        centroids = []
        weights = []
        for centroid, count in values:
            centroids.append(np.asarray(centroid, dtype=float))
            weights.append(count)
        finals = canopy_pass(np.asarray(centroids), self.t1, self.t2,
                             self.measure)
        for cid, (centroid, _n) in enumerate(finals):
            context.emit(cid, (tuple(centroid), float(_n)))


class CanopyDriver:
    """Single-pass canopy clustering driver."""

    def __init__(self, t1: float, t2: float,
                 measure: Optional[DistanceMeasure] = None):
        if not t1 > t2 > 0:
            raise ClusteringError(f"need T1 > T2 > 0, got T1={t1}, T2={t2}")
        self.t1, self.t2 = float(t1), float(t2)
        self.measure = measure or EuclideanDistance()

    def run(self, executor: Executor, input_path: str,
            work_prefix: str = "/canopy", assign: bool = False
            ) -> ClusteringResult:
        t1, t2, measure = self.t1, self.t2, self.measure
        job = Job(
            name="canopy",
            input_paths=[input_path],
            output_path=f"{work_prefix}/clusters",
            mapper=lambda: CanopyMapper(t1, t2, measure),
            reducer=lambda: CanopyReducer(t1, t2, measure),
            n_reduces=1,  # Mahout forces a single reducer for canopy
            intermediate_sizeof=lambda pair: 24 + 8 * len(pair[1][0]),
            output_sizeof=lambda pair: 24 + 8 * len(pair[1][0]),
            map_cpu_per_record=3.0e-5,
            reduce_cpu_per_record=3.0e-5,
        )
        output, elapsed = executor.run_job(job)
        models = [ClusterModel(int(cid), tuple(centroid), weight=w)
                  for cid, (centroid, w) in sorted(output)]
        result = ClusteringResult(algorithm="canopy", models=models,
                                  iterations=1, converged=True,
                                  runtime_s=elapsed,
                                  per_iteration_s=[elapsed],
                                  history=[list(models)])
        if assign and models:
            centers = [m.center for m in models]
            d = len(centers[0])
            assign_job = Job(
                name="canopy-assign",
                input_paths=[input_path],
                output_path=f"{work_prefix}/points",
                mapper=lambda: AssignMapper(centers, measure),
                n_reduces=0,
                output_sizeof=lambda _pair: 16,
                map_cpu_per_record=_map_record_cost(len(centers), d),
            )
            out, elapsed = executor.run_job(assign_job)
            result.runtime_s += elapsed
            result.assignments = {int(pid): int(cid) for pid, cid in out}
        return result
