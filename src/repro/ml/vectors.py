"""Distance measures (Mahout's ``DistanceMeasure`` hierarchy).

Each measure offers a scalar ``distance(a, b)`` and a vectorized
``to_centers(points, centers)`` returning the full (n_points, n_centers)
distance matrix via NumPy broadcasting — the hot path of every clustering
algorithm, kept free of Python loops per the HPC guide.
"""

from __future__ import annotations

import numpy as np

ArrayLike = "np.typing.ArrayLike"


def _as2d(x) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    return arr[None, :] if arr.ndim == 1 else arr


class DistanceMeasure:
    """Base class; subclasses implement :meth:`to_centers`."""

    name = "abstract"

    def distance(self, a, b) -> float:
        return float(self.to_centers(_as2d(a), _as2d(b))[0, 0])

    def to_centers(self, points, centers) -> np.ndarray:
        """(n, d) x (k, d) -> (n, k) distances."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__}>"


class EuclideanDistance(DistanceMeasure):
    name = "euclidean"

    def to_centers(self, points, centers) -> np.ndarray:
        p, c = _as2d(points), _as2d(centers)
        return np.sqrt(
            np.maximum(SquaredEuclideanDistance().to_centers(p, c), 0.0))


class SquaredEuclideanDistance(DistanceMeasure):
    name = "squared-euclidean"

    def to_centers(self, points, centers) -> np.ndarray:
        p, c = _as2d(points), _as2d(centers)
        # ||p||^2 + ||c||^2 - 2 p.c  (no (n, k, d) intermediate)
        p2 = np.sum(p * p, axis=1)[:, None]
        c2 = np.sum(c * c, axis=1)[None, :]
        return p2 + c2 - 2.0 * (p @ c.T)


class ManhattanDistance(DistanceMeasure):
    name = "manhattan"

    def to_centers(self, points, centers) -> np.ndarray:
        p, c = _as2d(points), _as2d(centers)
        return np.abs(p[:, None, :] - c[None, :, :]).sum(axis=2)


class ChebyshevDistance(DistanceMeasure):
    name = "chebyshev"

    def to_centers(self, points, centers) -> np.ndarray:
        p, c = _as2d(points), _as2d(centers)
        return np.abs(p[:, None, :] - c[None, :, :]).max(axis=2)


class CosineDistance(DistanceMeasure):
    """1 - cosine similarity; zero vectors are at distance 1 from all."""

    name = "cosine"

    def to_centers(self, points, centers) -> np.ndarray:
        p, c = _as2d(points), _as2d(centers)
        pn = np.linalg.norm(p, axis=1)[:, None]
        cn = np.linalg.norm(c, axis=1)[None, :]
        denominator = pn * cn
        with np.errstate(divide="ignore", invalid="ignore"):
            sim = np.where(denominator > 0, (p @ c.T) / denominator, 0.0)
        return 1.0 - np.clip(sim, -1.0, 1.0)


class TanimotoDistance(DistanceMeasure):
    """1 - (a.b) / (|a|^2 + |b|^2 - a.b)  (Mahout's TanimotoDistanceMeasure)."""

    name = "tanimoto"

    def to_centers(self, points, centers) -> np.ndarray:
        p, c = _as2d(points), _as2d(centers)
        dot = p @ c.T
        p2 = np.sum(p * p, axis=1)[:, None]
        c2 = np.sum(c * c, axis=1)[None, :]
        denominator = p2 + c2 - dot
        with np.errstate(divide="ignore", invalid="ignore"):
            sim = np.where(denominator > 0, dot / denominator, 1.0)
        return 1.0 - np.clip(sim, 0.0, 1.0)


MEASURES = {cls.name: cls for cls in (
    EuclideanDistance, SquaredEuclideanDistance, ManhattanDistance,
    ChebyshevDistance, CosineDistance, TanimotoDistance)}


def measure_by_name(name: str) -> DistanceMeasure:
    try:
        return MEASURES[name]()
    except KeyError:
        raise ValueError(f"unknown distance measure {name!r}; "
                         f"known: {sorted(MEASURES)}") from None
