"""Canopy-seeded k-means: Mahout's canonical clustering pipeline.

The paper's Section IV notes that "Canopy Clustering is often used as an
initial step in more rigorous clustering techniques, such as K-Means
Clustering" — and Mahout's ``syntheticcontrol.canopy`` example does exactly
that: a fast canopy pass picks the number and initial positions of
clusters; k-means refines them.

:class:`CanopyKMeansPipeline` chains the two drivers over a single
executor, reporting the combined runtime and both stage results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ClusteringError
from repro.ml.base import ClusteringResult, Executor
from repro.ml.canopy import CanopyDriver
from repro.ml.kmeans import KMeansDriver
from repro.ml.vectors import DistanceMeasure, EuclideanDistance


@dataclass
class PipelineResult:
    """Both stages plus the combined cost."""

    canopy: ClusteringResult
    kmeans: ClusteringResult

    @property
    def runtime_s(self) -> float:
        return self.canopy.runtime_s + self.kmeans.runtime_s

    @property
    def k(self) -> int:
        return self.kmeans.k

    @property
    def models(self):
        return self.kmeans.models

    @property
    def assignments(self):
        return self.kmeans.assignments


class CanopyKMeansPipeline:
    """canopy(T1, T2) -> k-means(seeded by the canopy centers)."""

    def __init__(self, t1: float, t2: float,
                 measure: Optional[DistanceMeasure] = None,
                 convergence_delta: float = 0.5, max_iterations: int = 10,
                 max_k: Optional[int] = None):
        self.measure = measure or EuclideanDistance()
        self.canopy = CanopyDriver(t1, t2, measure=self.measure)
        self.convergence_delta = convergence_delta
        self.max_iterations = max_iterations
        self.max_k = max_k

    def run(self, executor: Executor, input_path: str,
            work_prefix: str = "/canopy-kmeans",
            assign: bool = True) -> PipelineResult:
        canopy_result = self.canopy.run(executor, input_path,
                                        work_prefix=f"{work_prefix}/canopy")
        if not canopy_result.models:
            raise ClusteringError(
                "canopy stage produced no clusters; loosen T1/T2")
        centers = [m.center for m in canopy_result.models]
        if self.max_k is not None and len(centers) > self.max_k:
            # Keep the heaviest canopies (Mahout's -clusters cap).
            heaviest = sorted(canopy_result.models,
                              key=lambda m: -m.weight)[:self.max_k]
            centers = [m.center for m in heaviest]
        kmeans = KMeansDriver(initial_centers=centers, measure=self.measure,
                              convergence_delta=self.convergence_delta,
                              max_iterations=self.max_iterations)
        kmeans_result = kmeans.run(executor, input_path,
                                   work_prefix=f"{work_prefix}/kmeans",
                                   assign=assign)
        return PipelineResult(canopy=canopy_result, kmeans=kmeans_result)
