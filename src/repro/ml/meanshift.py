"""Mean-shift canopy clustering as iterative MapReduce.

Mahout's ``MeanShiftCanopyDriver``: every input point starts as a canopy;
each iteration every canopy shifts to the weighted mean of the canopies
within ``T1`` of it, and canopies that come within ``T2`` of each other
merge.  The process repeats until every shift falls below
``convergence_delta`` or the iteration budget runs out — clusters of
arbitrary shape emerge without choosing k a priori.

Job layout per iteration (as in Mahout):

* **mapper** — receives the canopy set of its split, performs one local
  shift-and-merge pass, emits surviving canopies keyed by a single
  reducer key;
* **reducer** — merges all mapper outputs with the same rule, emitting the
  next iteration's canopies and whether each converged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ClusteringError
from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import Job
from repro.ml.base import ClusterModel, ClusteringResult, Executor
from repro.ml.vectors import DistanceMeasure, EuclideanDistance


def shift_and_merge(canopies: list[tuple[np.ndarray, float]], t1: float,
                    t2: float, measure: DistanceMeasure,
                    delta: float) -> tuple[list[tuple[np.ndarray, float]], bool]:
    """One mean-shift pass: returns (new canopies, all_converged)."""
    if not canopies:
        return [], True
    centers = np.vstack([c for c, _w in canopies])
    weights = np.asarray([w for _c, w in canopies])
    distances = measure.to_centers(centers, centers)
    all_converged = True
    shifted: list[tuple[np.ndarray, float]] = []
    for i in range(len(canopies)):
        mask = distances[i] < t1
        total_w = weights[mask].sum()
        mean = (centers[mask] * weights[mask, None]).sum(axis=0) / total_w
        if measure.distance(mean, centers[i]) > delta:
            all_converged = False
        shifted.append((mean, float(weights[i])))
    # Merge canopies within T2 (earlier canopy absorbs the later one).
    merged: list[tuple[np.ndarray, float]] = []
    for center, weight in shifted:
        for j, (mc, mw) in enumerate(merged):
            if measure.distance(center, mc) < t2:
                new_w = mw + weight
                merged[j] = ((mc * mw + center * weight) / new_w, new_w)
                break
        else:
            merged.append((center, weight))
    return merged, all_converged


class MeanShiftMapper(Mapper):
    def __init__(self, t1: float, t2: float, measure: DistanceMeasure,
                 delta: float):
        self.t1, self.t2, self.measure, self.delta = t1, t2, measure, delta
        self._canopies: list[tuple[np.ndarray, float]] = []

    def map(self, key, value, context: Context) -> None:
        # Accepts both the seeded (center, weight) and the reducer's
        # (center, weight, converged) record shapes.
        center, weight = value[0], value[1]
        self._canopies.append((np.asarray(center, dtype=float), float(weight)))

    def cleanup(self, context: Context) -> None:
        merged, converged = shift_and_merge(
            self._canopies, self.t1, self.t2, self.measure, self.delta)
        for center, weight in merged:
            context.emit("canopies", (tuple(center), weight, converged))
        self._canopies.clear()


class MeanShiftReducer(Reducer):
    def __init__(self, t1: float, t2: float, measure: DistanceMeasure,
                 delta: float):
        self.t1, self.t2, self.measure, self.delta = t1, t2, measure, delta

    def reduce(self, key, values, context: Context) -> None:
        canopies = []
        all_converged = True
        for center, weight, converged in values:
            canopies.append((np.asarray(center, dtype=float), float(weight)))
            all_converged = all_converged and converged
        merged, pass_converged = shift_and_merge(
            canopies, self.t1, self.t2, self.measure, self.delta)
        converged = all_converged and pass_converged
        for cid, (center, weight) in enumerate(merged):
            context.emit(cid, (tuple(center), weight, converged))


class MeanShiftDriver:
    """Iterative mean-shift canopy driver."""

    def __init__(self, t1: float, t2: float,
                 measure: Optional[DistanceMeasure] = None,
                 convergence_delta: float = 0.5, max_iterations: int = 10):
        if not t1 > t2 > 0:
            raise ClusteringError(f"need T1 > T2 > 0, got T1={t1}, T2={t2}")
        self.t1, self.t2 = float(t1), float(t2)
        self.measure = measure or EuclideanDistance()
        self.convergence_delta = convergence_delta
        self.max_iterations = max_iterations

    def run(self, executor: Executor, input_path: str,
            work_prefix: str = "/meanshift") -> ClusteringResult:
        t1, t2, measure = self.t1, self.t2, self.measure
        delta = self.convergence_delta
        result = ClusteringResult(algorithm="meanshift", models=[])

        # Initial canopies: every point, weight 1 — staged as a derived
        # dataset so each iteration is a normal MapReduce job.
        records = executor.input_records(input_path)
        canopy_records = [(int(pid), (tuple(vec), 1.0))
                          for pid, vec in records]
        current_path = f"{work_prefix}/state-0"
        self._stage(executor, current_path, canopy_records)

        for iteration in range(self.max_iterations):
            output_path = f"{work_prefix}/state-{iteration + 1}"
            job = Job(
                name="meanshift-iter",
                input_paths=[current_path],
                output_path=output_path,
                mapper=lambda: MeanShiftMapper(t1, t2, measure, delta),
                reducer=lambda: MeanShiftReducer(t1, t2, measure, delta),
                n_reduces=1,
                intermediate_sizeof=lambda pair: 32 + 8 * len(pair[1][0]),
                output_sizeof=lambda pair: 32 + 8 * len(pair[1][0]),
                map_cpu_per_record=6.0e-5,
                reduce_cpu_per_record=6.0e-5,
            )
            output, elapsed = executor.run_job(job)
            result.per_iteration_s.append(elapsed)
            result.runtime_s += elapsed
            result.iterations += 1

            models = [ClusterModel(int(cid), tuple(center), weight=w)
                      for cid, (center, w, _conv) in sorted(output)]
            result.history.append(models)
            converged = all(conv for _cid, (_c, _w, conv) in output)
            result.models = models
            if converged:
                result.converged = True
                break
            # The job output in HDFS is the next iteration's input.
            current_path = output_path
        return result

    @staticmethod
    def _stage(executor: Executor, path: str, records: list) -> None:
        """Make records readable as a job input on either executor."""
        from repro.ml.base import ClusterExecutor, LocalExecutor
        if isinstance(executor, LocalExecutor):
            executor.add_input(path, records)
        elif isinstance(executor, ClusterExecutor):
            cluster = executor.cluster
            if not cluster.namenode.exists(path):
                event = cluster.dfs.write_file(
                    cluster.master, path, records,
                    sizeof=lambda r: 32 + 8 * len(r[1][0]))
                cluster.sim.run_until(event)
        else:  # pragma: no cover - custom executors stage themselves
            raise ClusteringError(
                f"cannot stage records on {type(executor).__name__}")
