"""Machine Learning Algorithm Library (the paper's Mahout 0.6 stand-in).

The six MapReduce-based clustering algorithms the paper runs — Canopy,
Dirichlet, Fuzzy k-Means, k-Means, MeanShift, MinHash — implemented from
scratch as MapReduce drivers over the engine in :mod:`repro.mapreduce`,
plus the other two categories the paper's library description names:
classification (:mod:`repro.ml.naivebayes`) and recommendations
(:mod:`repro.ml.recommender`), and Mahout's canonical canopy-seeded
k-means pipeline (:mod:`repro.ml.pipeline`).
Every algorithm also works standalone through the
:class:`~repro.ml.base.LocalExecutor` (pure functional, no cluster) so the
math is testable in isolation.

Distance measures live in :mod:`repro.ml.vectors`;
:mod:`repro.ml.display` renders the Fig. 8 panels as ASCII scatter plots.
"""

from repro.ml.base import (ClusterModel, ClusteringResult, ClusterExecutor,
                           LocalExecutor, points_as_records, vector_sizeof)
from repro.ml.canopy import CanopyDriver
from repro.ml.dirichlet import DirichletDriver
from repro.ml.fuzzykmeans import FuzzyKMeansDriver
from repro.ml.kmeans import KMeansDriver
from repro.ml.meanshift import MeanShiftDriver
from repro.ml.minhash import MinHashDriver
from repro.ml.naivebayes import NaiveBayesDriver, NaiveBayesModel
from repro.ml.pipeline import CanopyKMeansPipeline
from repro.ml.recommender import (ItemCooccurrenceRecommender,
                                  RecommendationResult)
from repro.ml.vectors import (ChebyshevDistance, CosineDistance,
                              EuclideanDistance, ManhattanDistance,
                              SquaredEuclideanDistance, TanimotoDistance)

__all__ = [
    "CanopyDriver", "CanopyKMeansPipeline", "ChebyshevDistance",
    "ClusterExecutor", "ClusterModel", "ClusteringResult", "CosineDistance",
    "DirichletDriver", "EuclideanDistance", "FuzzyKMeansDriver",
    "ItemCooccurrenceRecommender", "KMeansDriver", "LocalExecutor",
    "ManhattanDistance", "MeanShiftDriver", "MinHashDriver",
    "NaiveBayesDriver", "NaiveBayesModel", "RecommendationResult",
    "SquaredEuclideanDistance", "TanimotoDistance", "points_as_records",
    "vector_sizeof",
]
