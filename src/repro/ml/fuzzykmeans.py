"""Fuzzy k-Means (soft clustering) as iterative MapReduce.

Mahout's ``FuzzyKMeansDriver`` with fuzziness ``m > 1``: each point belongs
to every cluster with membership

    u_ij = 1 / sum_k (d_ij / d_ik)^(2 / (m - 1))

* **mapper** — emit ``(cluster_id, (u^m * x, u^m * x^2, u^m))`` for every
  cluster (soft assignment — this is why Fuzzy k-Means shuffles k times the
  data of k-Means);
* **combiner/reducer** — weighted sums; new center = sum / weight.

Convergence as in k-Means: maximum center shift below the delta.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.mapreduce.api import Context, Mapper
from repro.mapreduce.job import Job
from repro.ml.base import ClusterModel, ClusteringResult, Executor
from repro.ml.kmeans import (CentroidReducer, PartialSumCombiner,
                             _map_record_cost, _stats_sizeof)
from repro.ml.vectors import DistanceMeasure, EuclideanDistance

_EPS = 1e-9


def memberships(distances: np.ndarray, m: float) -> np.ndarray:
    """(n, k) distances -> (n, k) fuzzy memberships (rows sum to 1)."""
    d = np.maximum(distances, _EPS)
    exponent = 2.0 / (m - 1.0)
    # u_ij = 1 / sum_k (d_ij/d_ik)^e ; handle exact-hit rows via _EPS floor.
    inv = d ** (-exponent)
    return inv / inv.sum(axis=1, keepdims=True)


class FuzzyKMeansMapper(Mapper):
    def __init__(self, centers: Sequence[tuple], measure: DistanceMeasure,
                 m: float):
        self.centers = np.asarray(centers, dtype=float)
        self.measure = measure
        self.m = m

    def map(self, key, value, context: Context) -> None:
        point = np.asarray(value, dtype=float)
        distances = self.measure.to_centers(point[None, :], self.centers)
        u = memberships(distances, self.m)[0] ** self.m
        point_sq = point * point
        for cid in range(len(self.centers)):
            w = float(u[cid])
            context.emit(cid, (tuple(w * point), tuple(w * point_sq), w))


class FuzzyKMeansDriver:
    """Iterative fuzzy k-means driver."""

    def __init__(self, k: Optional[int] = None,
                 initial_centers: Optional[Sequence[tuple]] = None,
                 measure: Optional[DistanceMeasure] = None,
                 m: float = 2.0, convergence_delta: float = 0.5,
                 max_iterations: int = 10, n_reduces: int = 1):
        if m <= 1.0:
            raise ClusteringError(f"fuzziness m must be > 1, got {m}")
        if initial_centers is None and (k is None or k < 1):
            raise ClusteringError("FuzzyKMeansDriver needs k or centers")
        self.k = k if k is not None else len(initial_centers)
        self.initial_centers = initial_centers
        self.measure = measure or EuclideanDistance()
        self.m = float(m)
        self.convergence_delta = convergence_delta
        self.max_iterations = max_iterations
        self.n_reduces = n_reduces

    def seed_centers(self, executor: Executor, input_path: str) -> list[tuple]:
        if self.initial_centers is not None:
            return [tuple(c) for c in self.initial_centers]
        records = executor.input_records(input_path)
        if len(records) < self.k:
            raise ClusteringError(
                f"k={self.k} exceeds the {len(records)} input points")
        rng = executor.rng("ml/fuzzykmeans/seed")
        chosen = rng.choice(len(records), size=self.k, replace=False)
        return [tuple(records[int(i)][1]) for i in chosen]

    def run(self, executor: Executor, input_path: str,
            work_prefix: str = "/fuzzyk") -> ClusteringResult:
        centers = self.seed_centers(executor, input_path)
        d = len(centers[0])
        measure, m = self.measure, self.m
        result = ClusteringResult(algorithm="fuzzykmeans", models=[])
        stats: dict[int, tuple] = {}
        for iteration in range(self.max_iterations):
            snapshot = [tuple(c) for c in centers]
            job = Job(
                name="fuzzykmeans-iter",
                input_paths=[input_path],
                output_path=f"{work_prefix}/clusters-{iteration}",
                mapper=lambda: FuzzyKMeansMapper(snapshot, measure, m),
                combiner=PartialSumCombiner,
                reducer=CentroidReducer,
                n_reduces=self.n_reduces,
                intermediate_sizeof=_stats_sizeof,
                output_sizeof=lambda pair: 24 + 8 * d,
                # k emissions per record: k times the map and shuffle cost.
                map_cpu_per_record=_map_record_cost(len(snapshot), d)
                * len(snapshot),
                reduce_cpu_per_record=1.0e-5,
            )
            output, elapsed = executor.run_job(job)
            result.per_iteration_s.append(elapsed)
            result.runtime_s += elapsed
            result.iterations += 1

            new_centers = list(centers)
            stats = {}
            for cid, (center, weight, radius) in output:
                new_centers[cid] = tuple(center)
                stats[cid] = (weight, radius)
            result.history.append([
                ClusterModel(cid, tuple(c), *stats.get(cid, (0.0, 0.0)))
                for cid, c in enumerate(new_centers)])
            shift = max(measure.distance(np.asarray(a), np.asarray(b))
                        for a, b in zip(centers, new_centers))
            centers = new_centers
            if shift <= self.convergence_delta:
                result.converged = True
                break

        result.models = [
            ClusterModel(cid, tuple(c), *stats.get(cid, (0.0, 0.0)))
            for cid, c in enumerate(centers)]
        return result

    def soft_assignments(self, points: np.ndarray,
                         result: ClusteringResult) -> np.ndarray:
        """(n, k) membership matrix of ``points`` under the final model."""
        distances = self.measure.to_centers(points, result.centers())
        return memberships(distances, self.m)
