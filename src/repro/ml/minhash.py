"""MinHash clustering (probabilistic dimension reduction / LSH).

Mahout's ``MinHashDriver``: hash every item with multiple independent hash
functions such that similar items collide with high probability, then group
by banded hash signatures.

For continuous vectors (the paper applies MinHash to the same point sets as
the other five algorithms), the vector is first discretized into the set of
``(dimension, bucket)`` features that are "on"; the MinHash signature is
computed over that feature set, exactly how Mahout's example pipeline
vectorizes numeric data.

* **mapper** — compute ``num_hashes`` min-hashes, group them into bands of
  ``key_groups`` values, emit ``(band_signature, point_id)``;
* **reducer** — every signature bucket with at least ``min_cluster_size``
  members becomes a cluster; emit ``(cluster_label, point_id)``.

Single pass, no iteration — MinHash trades accuracy for one cheap job.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import Job
from repro.ml.base import ClusterModel, ClusteringResult, Executor

_MERSENNE = (1 << 31) - 1


def discretize(vector: np.ndarray, bucket: float) -> list[int]:
    """Vector -> sorted feature ids ((dim, floor(x/bucket)) pairs hashed)."""
    buckets = np.floor(np.asarray(vector, dtype=float) / bucket).astype(int)
    return [((dim * 2654435761) ^ (int(b) & 0xFFFFFFFF)) & 0x7FFFFFFF
            for dim, b in enumerate(buckets)]


class _UniversalHash:
    """h(x) = (a*x + b) mod p — the classic universal family."""

    def __init__(self, a: int, b: int):
        self.a, self.b = a, b

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return (self.a * values + self.b) % _MERSENNE


def make_hashes(num_hashes: int, seed: int) -> list[_UniversalHash]:
    rng = np.random.default_rng(seed)
    return [_UniversalHash(int(rng.integers(1, _MERSENNE)),
                           int(rng.integers(0, _MERSENNE)))
            for _ in range(num_hashes)]


class MinHashMapper(Mapper):
    def __init__(self, num_hashes: int, key_groups: int, bucket: float,
                 seed: int):
        self.hashes = make_hashes(num_hashes, seed)
        self.key_groups = key_groups
        self.bucket = bucket

    def map(self, key, value, context: Context) -> None:
        features = np.asarray(discretize(np.asarray(value), self.bucket))
        signature = [int(h(features).min()) for h in self.hashes]
        group = max(1, self.key_groups)
        for band_start in range(0, len(signature), group):
            band = signature[band_start:band_start + group]
            band_key = f"b{band_start}-" + "-".join(map(str, band))
            context.emit(band_key, int(key))


class MinHashReducer(Reducer):
    def __init__(self, min_cluster_size: int):
        self.min_cluster_size = min_cluster_size

    def reduce(self, key, values, context: Context) -> None:
        members = sorted(set(values))
        if len(members) >= self.min_cluster_size:
            for pid in members:
                context.emit(key, pid)


class MinHashDriver:
    """Single-pass MinHash clustering driver."""

    def __init__(self, num_hashes: int = 10, key_groups: int = 2,
                 min_cluster_size: int = 4, bucket: float = 1.0,
                 seed: int = 7, n_reduces: int = 1):
        if num_hashes < 1 or key_groups < 1:
            raise ClusteringError("num_hashes and key_groups must be >= 1")
        if min_cluster_size < 1:
            raise ClusteringError("min_cluster_size must be >= 1")
        self.num_hashes = num_hashes
        self.key_groups = key_groups
        self.min_cluster_size = min_cluster_size
        self.bucket = float(bucket)
        self.seed = seed
        self.n_reduces = n_reduces

    def run(self, executor: Executor, input_path: str,
            work_prefix: str = "/minhash") -> ClusteringResult:
        num_hashes, key_groups = self.num_hashes, self.key_groups
        bucket, seed = self.bucket, self.seed
        job = Job(
            name="minhash",
            input_paths=[input_path],
            output_path=f"{work_prefix}/clusters",
            mapper=lambda: MinHashMapper(num_hashes, key_groups, bucket, seed),
            reducer=lambda: MinHashReducer(self.min_cluster_size),
            n_reduces=self.n_reduces,
            intermediate_sizeof=lambda pair: len(str(pair[0])) + 12,
            output_sizeof=lambda pair: len(str(pair[0])) + 12,
            map_cpu_per_record=2.0e-5 + 3.0e-7 * num_hashes,
            reduce_cpu_per_record=5.0e-6,
        )
        output, elapsed = executor.run_job(job)

        # Materialize clusters; a point may appear in several bands — keep
        # its first (deterministic: sorted band keys).
        records = {int(pid): vec for pid, vec in
                   executor.input_records(input_path)}
        by_band: dict[str, list[int]] = {}
        for band_key, pid in output:
            by_band.setdefault(band_key, []).append(int(pid))
        assignments: dict[int, int] = {}
        models: list[ClusterModel] = []
        for band_key in sorted(by_band):
            members = [pid for pid in by_band[band_key]
                       if pid not in assignments]
            if len(members) < self.min_cluster_size:
                continue
            cid = len(models)
            pts = np.asarray([records[pid] for pid in members], dtype=float)
            center = pts.mean(axis=0)
            radius = float(np.sqrt(
                ((pts - center) ** 2).sum(axis=1).mean()))
            models.append(ClusterModel(cid, tuple(center),
                                       weight=float(len(members)),
                                       radius=radius))
            for pid in members:
                assignments[pid] = cid
        return ClusteringResult(
            algorithm="minhash", models=models, assignments=assignments,
            iterations=1, converged=True, runtime_s=elapsed,
            per_iteration_s=[elapsed], history=[list(models)])
