"""k-Means clustering as iterative MapReduce (Mahout's ``KMeansDriver``).

Per iteration one job runs:

* **mapper** — assign each point to the nearest current center; emit
  ``(cluster_id, (sum, sum_sq, count))`` for the point;
* **combiner** — component-wise sums of the partial statistics;
* **reducer** — new center = sum / count (plus weight and RMS radius from
  the second moment); empty clusters keep their previous center.

The driver loops until every center moves less than ``convergence_delta``
(Mahout default 0.5) under the chosen distance measure, or
``max_iterations`` is reached, then runs one map-only *clusterdata* pass
that emits the hard assignment of every point.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import Job
from repro.ml.base import (ClusterModel, ClusteringResult, Executor,
                           vector_sizeof)
from repro.ml.vectors import DistanceMeasure, EuclideanDistance

#: Per-record CPU cost of one distance evaluation row (k centers, d dims):
#: JVM-era deserialization + k*d flops.
def _map_record_cost(k: int, d: int) -> float:
    return 2.0e-5 + 1.2e-8 * k * d


class KMeansMapper(Mapper):
    """Nearest-center assignment; centers arrive via the job params."""

    def __init__(self, centers: Sequence[tuple], measure: DistanceMeasure):
        self.centers = np.asarray(centers, dtype=float)
        self.measure = measure

    def map(self, key, value, context: Context) -> None:
        point = np.asarray(value, dtype=float)
        distances = self.measure.to_centers(point[None, :], self.centers)[0]
        nearest = int(np.argmin(distances))
        context.emit(nearest, (tuple(point), tuple(point * point), 1))


class PartialSumCombiner(Reducer):
    """Component-wise sum of (sum, sum_sq, count) triples."""

    def reduce(self, key, values, context: Context) -> None:
        total = total_sq = None
        count = 0
        for vec, vec_sq, n in values:
            arr, arr_sq = np.asarray(vec), np.asarray(vec_sq)
            total = arr if total is None else total + arr
            total_sq = arr_sq if total_sq is None else total_sq + arr_sq
            count += n
        context.emit(key, (tuple(total), tuple(total_sq), count))


class CentroidReducer(Reducer):
    """(cluster_id, partial sums) -> (cluster_id, (center, weight, radius))."""

    def reduce(self, key, values, context: Context) -> None:
        total = total_sq = None
        count = 0
        for vec, vec_sq, n in values:
            arr, arr_sq = np.asarray(vec), np.asarray(vec_sq)
            total = arr if total is None else total + arr
            total_sq = arr_sq if total_sq is None else total_sq + arr_sq
            count += n
        center = total / count
        # RMS radius from E[x^2] - center^2 per dimension.
        variance = np.maximum(total_sq / count - center * center, 0.0)
        radius = float(np.sqrt(variance.sum()))
        context.emit(key, (tuple(center), float(count), radius))


class AssignMapper(Mapper):
    """clusterdata pass: (point_id, vector) -> (point_id, cluster_id)."""

    def __init__(self, centers: Sequence[tuple], measure: DistanceMeasure):
        self.centers = np.asarray(centers, dtype=float)
        self.measure = measure

    def map(self, key, value, context: Context) -> None:
        point = np.asarray(value, dtype=float)
        distances = self.measure.to_centers(point[None, :], self.centers)[0]
        context.emit(int(key), int(np.argmin(distances)))


def _stats_sizeof(pair) -> int:
    _cid, (vec, _vec_sq, _n) = pair if len(pair) == 2 else (None, pair)
    return 16 + 2 * 8 * len(vec) + 8


class KMeansDriver:
    """The iterative driver."""

    def __init__(self, k: Optional[int] = None,
                 initial_centers: Optional[Sequence[tuple]] = None,
                 measure: Optional[DistanceMeasure] = None,
                 convergence_delta: float = 0.5, max_iterations: int = 10,
                 n_reduces: int = 1):
        if initial_centers is None and (k is None or k < 1):
            raise ClusteringError("KMeansDriver needs k or initial_centers")
        self.k = k if k is not None else len(initial_centers)
        self.initial_centers = initial_centers
        self.measure = measure or EuclideanDistance()
        self.convergence_delta = convergence_delta
        self.max_iterations = max_iterations
        self.n_reduces = n_reduces

    # -- seeding -------------------------------------------------------------
    def seed_centers(self, executor: Executor, input_path: str
                     ) -> list[tuple]:
        """Random distinct input points (Mahout's RandomSeedGenerator)."""
        if self.initial_centers is not None:
            return [tuple(c) for c in self.initial_centers]
        records = executor.input_records(input_path)
        if len(records) < self.k:
            raise ClusteringError(
                f"k={self.k} exceeds the {len(records)} input points")
        rng = executor.rng("ml/kmeans/seed")
        chosen = rng.choice(len(records), size=self.k, replace=False)
        return [tuple(records[int(i)][1]) for i in chosen]

    # -- jobs --------------------------------------------------------------
    def _iteration_job(self, input_path: str, output_path: str,
                       centers: list[tuple], d: int) -> Job:
        measure = self.measure
        snapshot = [tuple(c) for c in centers]
        return Job(
            name="kmeans-iter",
            input_paths=[input_path],
            output_path=output_path,
            mapper=lambda: KMeansMapper(snapshot, measure),
            combiner=PartialSumCombiner,
            reducer=CentroidReducer,
            n_reduces=self.n_reduces,
            intermediate_sizeof=_stats_sizeof,
            output_sizeof=lambda pair: 24 + 8 * d,
            map_cpu_per_record=_map_record_cost(len(snapshot), d),
            reduce_cpu_per_record=1.0e-5,
        )

    def _assign_job(self, input_path: str, output_path: str,
                    centers: list[tuple], d: int) -> Job:
        measure = self.measure
        snapshot = [tuple(c) for c in centers]
        return Job(
            name="kmeans-assign",
            input_paths=[input_path],
            output_path=output_path,
            mapper=lambda: AssignMapper(snapshot, measure),
            n_reduces=0,
            output_sizeof=lambda _pair: 16,
            map_cpu_per_record=_map_record_cost(len(snapshot), d),
        )

    # -- main loop -----------------------------------------------------------
    def run(self, executor: Executor, input_path: str,
            work_prefix: str = "/kmeans", assign: bool = True
            ) -> ClusteringResult:
        centers = self.seed_centers(executor, input_path)
        d = len(centers[0])
        result = ClusteringResult(algorithm="kmeans", models=[])
        stats_by_cluster: dict[int, tuple] = {}
        for iteration in range(self.max_iterations):
            job = self._iteration_job(
                input_path, f"{work_prefix}/clusters-{iteration}", centers, d)
            output, elapsed = executor.run_job(job)
            result.per_iteration_s.append(elapsed)
            result.runtime_s += elapsed
            result.iterations += 1

            new_centers = list(centers)
            stats_by_cluster = {}
            for cid, (center, weight, radius) in output:
                new_centers[cid] = tuple(center)
                stats_by_cluster[cid] = (weight, radius)
            result.history.append([
                ClusterModel(cid, tuple(c),
                             *stats_by_cluster.get(cid, (0.0, 0.0)))
                for cid, c in enumerate(new_centers)])

            shift = max(
                self.measure.distance(np.asarray(old), np.asarray(new))
                for old, new in zip(centers, new_centers))
            centers = new_centers
            if shift <= self.convergence_delta:
                result.converged = True
                break

        result.models = [
            ClusterModel(cid, tuple(c), *stats_by_cluster.get(cid, (0.0, 0.0)))
            for cid, c in enumerate(centers)]
        if assign:
            job = self._assign_job(input_path, f"{work_prefix}/points",
                                   centers, d)
            output, elapsed = executor.run_job(job)
            result.runtime_s += elapsed
            result.assignments = {int(pid): int(cid) for pid, cid in output}
        return result
