"""DisplayClustering: ASCII rendering of the Fig. 8 panels.

Mahout's ``DisplayClustering`` examples draw the sample points and
superimpose each iteration's clusters, the last iteration in bold.  A
terminal reproduction renders the 2-D scatter as a character grid:

* points are drawn as ``.`` (or the digit of their cluster when an
  assignment is given);
* cluster centers are capital letters with a circle of ``+`` marks at one
  radius (the model parameter overlay);
* earlier iterations can be overlaid as fainter rings with
  :func:`render_history`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.base import ClusterModel, ClusteringResult

_CENTER_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _bounds(points: np.ndarray, pad: float = 0.05
            ) -> tuple[float, float, float, float]:
    x0, y0 = points.min(axis=0)[:2]
    x1, y1 = points.max(axis=0)[:2]
    dx, dy = max(x1 - x0, 1e-9), max(y1 - y0, 1e-9)
    return x0 - pad * dx, x1 + pad * dx, y0 - pad * dy, y1 + pad * dy


class AsciiCanvas:
    """A character raster over a 2-D data window."""

    def __init__(self, points: np.ndarray, width: int = 72, height: int = 28):
        self.width, self.height = width, height
        self.x0, self.x1, self.y0, self.y1 = _bounds(np.asarray(points))
        self.grid = [[" "] * width for _ in range(height)]

    def _to_cell(self, x: float, y: float) -> Optional[tuple[int, int]]:
        col = int((x - self.x0) / (self.x1 - self.x0) * (self.width - 1))
        row = int((self.y1 - y) / (self.y1 - self.y0) * (self.height - 1))
        if 0 <= row < self.height and 0 <= col < self.width:
            return row, col
        return None

    def plot(self, x: float, y: float, glyph: str,
             overwrite: bool = True) -> None:
        cell = self._to_cell(x, y)
        if cell is None:
            return
        row, col = cell
        if overwrite or self.grid[row][col] == " ":
            self.grid[row][col] = glyph

    def circle(self, cx: float, cy: float, radius: float, glyph: str = "+",
               segments: int = 48) -> None:
        for theta in np.linspace(0.0, 2.0 * np.pi, segments, endpoint=False):
            self.plot(cx + radius * np.cos(theta),
                      cy + radius * np.sin(theta), glyph, overwrite=False)

    def render(self) -> str:
        border = "+" + "-" * self.width + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in self.grid)
        return f"{border}\n{body}\n{border}"


def render_points(points: np.ndarray, width: int = 72, height: int = 28
                  ) -> str:
    """Fig. 8(a): the raw sample data."""
    canvas = AsciiCanvas(points, width, height)
    for x, y in np.asarray(points)[:, :2]:
        canvas.plot(x, y, ".", overwrite=False)
    return canvas.render()


def render_clusters(points: np.ndarray, models: Sequence[ClusterModel],
                    assignments: Optional[dict[int, int]] = None,
                    width: int = 72, height: int = 28) -> str:
    """One clustering outcome: points (digit = cluster), centers, radii."""
    pts = np.asarray(points)
    canvas = AsciiCanvas(pts, width, height)
    for pid, (x, y) in enumerate(pts[:, :2]):
        glyph = "."
        if assignments and pid in assignments:
            glyph = str(assignments[pid] % 10)
        canvas.plot(x, y, glyph, overwrite=False)
    for model in models:
        cx, cy = model.center[0], model.center[1]
        if model.radius > 0:
            canvas.circle(cx, cy, model.radius)
        canvas.plot(cx, cy, _CENTER_GLYPHS[model.cluster_id
                                           % len(_CENTER_GLYPHS)])
    return canvas.render()


def render_history(points: np.ndarray, result: ClusteringResult,
                   width: int = 72, height: int = 28,
                   max_rings: int = 5) -> str:
    """Fig. 8(b)-(f): superimpose the iterations — earlier rings faint
    (``'``), the final clusters bold (``+`` rings, letter centers)."""
    pts = np.asarray(points)
    canvas = AsciiCanvas(pts, width, height)
    for x, y in pts[:, :2]:
        canvas.plot(x, y, ".", overwrite=False)
    for models in result.history[-(max_rings + 1):-1]:
        for model in models:
            if model.radius > 0:
                canvas.circle(model.center[0], model.center[1],
                              model.radius, glyph="'")
    for model in result.models:
        if model.radius > 0:
            canvas.circle(model.center[0], model.center[1], model.radius)
        canvas.plot(model.center[0], model.center[1],
                    _CENTER_GLYPHS[model.cluster_id % len(_CENTER_GLYPHS)])
    return canvas.render()


def describe_result(result: ClusteringResult) -> str:
    """One-paragraph text summary of a clustering outcome."""
    lines = [f"{result.algorithm}: {result.k} clusters after "
             f"{result.iterations} iteration(s)"
             f"{' (converged)' if result.converged else ''},"
             f" {result.runtime_s:.1f} simulated seconds"]
    for model in result.models:
        center = ", ".join(f"{c:.2f}" for c in model.center[:4])
        lines.append(f"  cluster {model.cluster_id}: center=({center})"
                     f" weight={model.weight:.0f} radius={model.radius:.2f}")
    return "\n".join(lines)
