"""Item-based co-occurrence recommender as chained MapReduce jobs (the
*recommendations* category of the paper's library).

Mahout 0.6's ``RecommenderJob`` pipeline, reduced to its classic core:

1. **user-vectors job** — ``(user, item, rating)`` preferences grouped into
   per-user preference vectors;
2. **co-occurrence job** — for every user vector, emit all item pairs;
   reducer counts how often two items are preferred together;
3. **recommendation job** — for each user, score unseen items by
   ``sum(co_occurrence[item, seen] * rating(seen))`` and emit the top-N.

Input records: ``((user, item), rating)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClusteringError
from repro.mapreduce.api import Context, Mapper, Reducer
from repro.mapreduce.job import Job
from repro.ml.base import Executor


class UserVectorMapper(Mapper):
    """((user, item), rating) -> (user, (item, rating))."""

    def map(self, key, value, context: Context) -> None:
        user, item = key
        context.emit(user, (item, float(value)))


class UserVectorReducer(Reducer):
    """(user, [(item, rating)]) -> (user, tuple of (item, rating))."""

    def reduce(self, key, values, context: Context) -> None:
        vector = tuple(sorted(values))
        context.emit(key, vector)


class CooccurrenceMapper(Mapper):
    """(user, vector) -> ((item_a, item_b), 1) for every preferred pair."""

    def map(self, key, value, context: Context) -> None:
        items = [item for item, _rating in value]
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                first, second = (a, b) if a <= b else (b, a)
                context.emit((first, second), 1)


class CountReducer(Reducer):
    def reduce(self, key, values, context: Context) -> None:
        context.emit(key, sum(values))


class RecommendMapper(Mapper):
    """(user, vector) -> (user, top-N recommendations)."""

    def __init__(self, cooccurrence: dict, top_n: int):
        self.cooccurrence = cooccurrence
        self.top_n = top_n

    def map(self, key, value, context: Context) -> None:
        seen = {item: rating for item, rating in value}
        scores: dict = {}
        for (a, b), count in self.cooccurrence.items():
            if a in seen and b not in seen:
                scores[b] = scores.get(b, 0.0) + count * seen[a]
            elif b in seen and a not in seen:
                scores[a] = scores.get(a, 0.0) + count * seen[b]
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], str(kv[0])))
        context.emit(key, tuple(ranked[:self.top_n]))


@dataclass
class RecommendationResult:
    """Per-user ranked (item, score) lists plus the model artifacts."""

    recommendations: dict
    cooccurrence: dict
    runtime_s: float

    def for_user(self, user) -> tuple:
        return self.recommendations.get(user, ())


class ItemCooccurrenceRecommender:
    """The three-job driver."""

    def __init__(self, top_n: int = 5, n_reduces: int = 1):
        if top_n < 1:
            raise ClusteringError("top_n must be >= 1")
        self.top_n = top_n
        self.n_reduces = n_reduces

    def run(self, executor: Executor, input_path: str,
            work_prefix: str = "/recommend") -> RecommendationResult:
        runtime = 0.0
        user_vectors_path = f"{work_prefix}/user-vectors"
        job1 = Job(
            name="recommend-uservectors",
            input_paths=[input_path],
            output_path=user_vectors_path,
            mapper=UserVectorMapper,
            reducer=UserVectorReducer,
            n_reduces=self.n_reduces,
            intermediate_sizeof=lambda pair: 24,
            output_sizeof=lambda pair: 16 + 16 * len(pair[1]),
            map_cpu_per_record=5.0e-6,
            reduce_cpu_per_record=5.0e-6,
        )
        vectors, elapsed = executor.run_job(job1)
        runtime += elapsed

        job2 = Job(
            name="recommend-cooccurrence",
            input_paths=[user_vectors_path],
            output_path=f"{work_prefix}/cooccurrence",
            mapper=CooccurrenceMapper,
            combiner=CountReducer,
            reducer=CountReducer,
            n_reduces=self.n_reduces,
            intermediate_sizeof=lambda pair: 28,
            output_sizeof=lambda pair: 28,
            map_cpu_per_record=2.0e-5,
            reduce_cpu_per_record=5.0e-6,
        )
        pairs, elapsed = executor.run_job(job2)
        runtime += elapsed
        cooccurrence = {key: count for key, count in pairs}

        job3 = Job(
            name="recommend-topn",
            input_paths=[user_vectors_path],
            output_path=f"{work_prefix}/recommendations",
            mapper=lambda: RecommendMapper(cooccurrence, self.top_n),
            n_reduces=0,
            output_sizeof=lambda pair: 16 + 16 * len(pair[1]),
            map_cpu_per_record=1.0e-5 + 2.0e-8 * len(cooccurrence),
        )
        output, elapsed = executor.run_job(job3)
        runtime += elapsed
        return RecommendationResult(
            recommendations={user: recs for user, recs in output},
            cooccurrence=cooccurrence,
            runtime_s=runtime)
