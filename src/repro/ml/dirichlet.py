"""Dirichlet Process clustering (Bayesian mixture modelling) as MapReduce.

Mahout's ``DirichletDriver`` performs mean-field/Gibbs iterations over a
truncated Dirichlet Process mixture of Gaussians:

* the state is ``K`` candidate models (isotropic Normals) plus mixture
  weights drawn from ``Dirichlet(alpha_0 / K + counts)``;
* **mapper** — for each point, compute the posterior responsibility of
  every model (``weight_k * pdf_k(x)``) and *sample* an assignment from it;
  emit ``(model_id, (x, x^2, 1))``;
* **reducer** — recompute each model's posterior parameters (mean, sigma)
  from its assigned points;
* **driver** — resample the mixture weights, iterate a fixed number of
  times (Mahout default 10), and report the significant models.

The per-iteration sampling makes this the only stochastic algorithm of the
six; all randomness flows through named RNG streams, so runs are
reproducible.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ClusteringError
from repro.mapreduce.api import Context, Mapper
from repro.mapreduce.job import Job
from repro.ml.base import ClusterModel, ClusteringResult, Executor
from repro.ml.kmeans import CentroidReducer, PartialSumCombiner, _stats_sizeof


class NormalModel:
    """Isotropic Gaussian with mixture weight."""

    __slots__ = ("mean", "sigma", "weight")

    def __init__(self, mean, sigma: float, weight: float):
        self.mean = np.asarray(mean, dtype=float)
        self.sigma = max(float(sigma), 1e-6)
        self.weight = float(weight)

    def log_pdf(self, x: np.ndarray) -> float:
        d = len(self.mean)
        diff = x - self.mean
        return (-0.5 * float(diff @ diff) / (self.sigma ** 2)
                - d * math.log(self.sigma)
                - 0.5 * d * math.log(2.0 * math.pi))

    def as_tuple(self) -> tuple:
        return (tuple(self.mean), self.sigma, self.weight)


class DirichletMapper(Mapper):
    """Sample a model assignment for each point."""

    def __init__(self, models: Sequence[tuple], seed: int):
        self.models = [NormalModel(*m) for m in models]
        self.seed = seed

    def setup(self, context: Context) -> None:
        # Deterministic per-task stream: seed + task id.
        import zlib
        entropy = zlib.crc32(context.task_id.encode()) & 0xFFFFFFFF
        self._rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, entropy]))

    def map(self, key, value, context: Context) -> None:
        x = np.asarray(value, dtype=float)
        logs = np.asarray([math.log(max(m.weight, 1e-12)) + m.log_pdf(x)
                           for m in self.models])
        logs -= logs.max()
        probs = np.exp(logs)
        probs /= probs.sum()
        z = int(self._rng.choice(len(self.models), p=probs))
        context.emit(z, (tuple(x), tuple(x * x), 1))


class DirichletDriver:
    """Truncated-DP Gaussian mixture driver."""

    def __init__(self, n_models: int = 10, alpha0: float = 1.0,
                 max_iterations: int = 10, initial_sigma: float = 1.0):
        if n_models < 1:
            raise ClusteringError("n_models must be >= 1")
        if alpha0 <= 0:
            raise ClusteringError("alpha0 must be > 0")
        self.n_models = n_models
        self.alpha0 = float(alpha0)
        self.max_iterations = max_iterations
        self.initial_sigma = float(initial_sigma)

    def _prior_models(self, executor: Executor, input_path: str
                      ) -> list[NormalModel]:
        """Sample K prior models from the data's empirical spread."""
        records = executor.input_records(input_path)
        points = np.asarray([vec for _pid, vec in records], dtype=float)
        rng = executor.rng("ml/dirichlet/prior")
        mean, std = points.mean(axis=0), points.std(axis=0).mean() + 1e-6
        models = []
        for _ in range(self.n_models):
            center = mean + rng.normal(scale=std, size=points.shape[1])
            models.append(NormalModel(center, max(std, self.initial_sigma),
                                      1.0 / self.n_models))
        return models

    def run(self, executor: Executor, input_path: str,
            work_prefix: str = "/dirichlet") -> ClusteringResult:
        models = self._prior_models(executor, input_path)
        rng = executor.rng("ml/dirichlet/weights")
        n_total = len(executor.input_records(input_path))
        d = len(models[0].mean)
        result = ClusteringResult(algorithm="dirichlet", models=[])

        for iteration in range(self.max_iterations):
            snapshot = [m.as_tuple() for m in models]
            seed = 1000 + iteration
            job = Job(
                name="dirichlet-iter",
                input_paths=[input_path],
                output_path=f"{work_prefix}/state-{iteration}",
                mapper=lambda: DirichletMapper(snapshot, seed),
                combiner=PartialSumCombiner,
                reducer=CentroidReducer,
                n_reduces=1,
                intermediate_sizeof=_stats_sizeof,
                output_sizeof=lambda pair: 24 + 8 * d,
                # K pdf evaluations per record.
                map_cpu_per_record=2.0e-5 + 2.5e-8 * self.n_models * d,
                reduce_cpu_per_record=1.0e-5,
            )
            output, elapsed = executor.run_job(job)
            result.per_iteration_s.append(elapsed)
            result.runtime_s += elapsed
            result.iterations += 1

            counts = np.zeros(self.n_models)
            new_models = list(models)
            for cid, (center, weight, radius) in output:
                counts[cid] = weight
                sigma = max(radius / math.sqrt(max(d, 1)), 1e-3)
                new_models[cid] = NormalModel(center, sigma, weight)
            # Resample mixture weights ~ Dirichlet(alpha0/K + counts).
            alpha = self.alpha0 / self.n_models + counts
            weights = rng.dirichlet(alpha)
            for model, w in zip(new_models, weights):
                model.weight = float(w)
            models = new_models
            result.history.append([
                ClusterModel(cid, tuple(m.mean), weight=counts[cid],
                             radius=m.sigma)
                for cid, m in enumerate(models)])

        # Significant models: enough support to matter (Mahout's
        # "significant" threshold of ~5% of the data).
        threshold = 0.05 * n_total
        result.models = [
            ClusterModel(cid, tuple(m.mean),
                         weight=float(counts[cid]), radius=m.sigma)
            for cid, m in enumerate(models) if counts[cid] >= threshold]
        if not result.models:  # fall back to the heaviest model
            best = int(np.argmax(counts))
            result.models = [ClusterModel(best, tuple(models[best].mean),
                                          weight=float(counts[best]),
                                          radius=models[best].sigma)]
        result.converged = True
        return result
