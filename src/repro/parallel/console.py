"""Campaign observability: the sidecar progress stream and control room.

The :mod:`repro.parallel.fabric` pool runs multi-process campaigns with
(until now) zero live visibility.  This module adds three pieces:

* a **sidecar JSONL stream** next to the campaign journal — workers
  append a record per finished item (their own wall time and peak RSS),
  the parent appends lifecycle records (spawn / kill / retire) and
  periodic fleet RSS samples from ``/proc``.  Appends are single
  ``O_APPEND`` writes under ``PIPE_BUF``, so concurrent writers never
  interleave bytes; a killed worker can at worst tear the final line,
  which the tailer (like the journal loader) tolerates;
* a :class:`ConsoleTailer` that incrementally reads the stream and
  aggregates per-worker and fleet-level state — the live
  ``\\r``-status line (:meth:`ConsoleTailer.status_line`) and the data
  behind the report;
* a self-contained **control room** HTML report
  (:func:`control_room_html`, built on the observatory's shared
  :mod:`~repro.observatory.htmlkit`) charting fleet throughput,
  per-worker RSS vs the ceiling, failure/retry counts, and — when the
  campaign carries service experiments — tenant SLO burn-rate
  timelines.

Determinism: the stream and the report are full of wall-clock data by
nature, so neither is hashed.  What CI pins is
:func:`control_room_digest` — a digest over the campaign's *sim-time*
content only (the sharded-run digest, the campaign digest, any series
digests), byte-identical across processes and ``--jobs`` levels.
"""

from __future__ import annotations

import hashlib
import html as _html
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.observatory.htmlkit import column_chart, page

#: Sidecar format version (bumped on incompatible record changes).
CONSOLE_FORMAT = 1
#: Default sidecar suffix next to a campaign journal.
CONSOLE_SUFFIX = ".console.jsonl"


def console_append(path: str, record: Mapping[str, Any]) -> None:
    """Append one record as a single atomic ``O_APPEND`` write."""
    line = json.dumps(record, sort_keys=True) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


class ConsoleWriter:
    """Parent-side writer: the header, lifecycle records, RSS samples."""

    def __init__(self, path: str, *, worker_ref: str, total: int,
                 jobs: int, rss_limit_mb: Optional[float] = None):
        self.path = path
        self.t0 = time.time()
        self._last_rss_emit = 0.0
        console_append(path, {
            "kind": "header", "format": CONSOLE_FORMAT,
            "worker": worker_ref, "total": total, "jobs": jobs,
            "rss_limit_mb": rss_limit_mb, "t": round(self.t0, 3)})

    def event(self, kind: str, **fields: Any) -> None:
        record = {"kind": kind, "t": round(time.time(), 3)}
        record.update(fields)
        console_append(self.path, record)

    def rss_sample(self, rss_by_wid: Mapping[int, float],
                   pending: int, min_interval_s: float = 0.5) -> None:
        """Throttled fleet RSS snapshot (at most one per interval)."""
        now = time.time()
        if now - self._last_rss_emit < min_interval_s:
            return
        self._last_rss_emit = now
        self.event("rss", rss={str(w): round(v, 1)
                               for w, v in sorted(rss_by_wid.items())},
                   pending=pending)


@dataclass
class WorkerView:
    """Aggregated view of one worker from the stream."""

    wid: int
    items: int = 0
    failures: int = 0
    last_rss_mb: float = 0.0
    peak_rss_mb: float = 0.0
    state: str = "running"        # running | retired:* | killed:* | died
    rss_history: list[float] = field(default_factory=list)

    def saw_rss(self, rss_mb: float, history: bool = False) -> None:
        self.last_rss_mb = rss_mb
        if rss_mb > self.peak_rss_mb:
            self.peak_rss_mb = rss_mb
        if history:
            self.rss_history.append(rss_mb)


class ConsoleTailer:
    """Incremental reader + aggregator over a sidecar stream.

    Call :meth:`poll` as often as you like — it reads only the bytes
    appended since the last call and tolerates a torn final line (kept
    buffered until its newline arrives).  A rerun appends a second
    header; the tailer resets its aggregates at each header so the view
    always describes the *latest* campaign segment.
    """

    def __init__(self, path: str):
        self.path = path
        self._offset = 0
        self._tail = b""
        self.header: dict = {}
        self.workers: dict[int, WorkerView] = {}
        self.done = 0
        self.failed = 0
        self.kills = 0
        self.retires = 0
        self.done_times: list[float] = []       # wall t of each done
        self.fleet_rss: list[tuple[float, float]] = []   # (t, total MB)
        self.finished: Optional[dict] = None    # the "end" record

    # -- reading -----------------------------------------------------------
    def poll(self) -> int:
        """Consume newly appended records; returns how many were read."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
        except OSError:
            return 0
        if not chunk:
            return 0
        self._offset += len(chunk)
        data = self._tail + chunk
        lines = data.split(b"\n")
        self._tail = lines.pop()    # b"" on a clean newline boundary
        n = 0
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue            # torn by a kill — skip, keep going
            self._apply(record)
            n += 1
        return n

    def _worker(self, wid: int) -> WorkerView:
        view = self.workers.get(wid)
        if view is None:
            view = WorkerView(wid)
            self.workers[wid] = view
        return view

    def _apply(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "header":
            # A fresh campaign segment: reset the aggregates.
            self.header = record
            self.workers = {}
            self.done = self.failed = self.kills = self.retires = 0
            self.done_times = []
            self.fleet_rss = []
            self.finished = None
        elif kind == "spawn":
            self._worker(int(record["wid"]))
        elif kind == "done":
            view = self._worker(int(record["wid"]))
            view.items += 1
            if not record.get("ok"):
                view.failures += 1
                self.failed += 1
            self.done += 1
            rss = record.get("rss_mb")
            if rss is not None:
                view.saw_rss(float(rss))
            self.done_times.append(float(record.get("t", 0.0)))
        elif kind == "rss":
            total = 0.0
            for wid_s, rss in (record.get("rss") or {}).items():
                view = self._worker(int(wid_s))
                view.saw_rss(float(rss), history=True)
                total += float(rss)
            self.fleet_rss.append((float(record.get("t", 0.0)), total))
        elif kind == "kill":
            self.kills += 1
            view = self._worker(int(record["wid"]))
            view.state = f"killed:{record.get('reason', '?')}"
        elif kind == "retire":
            self.retires += 1
            view = self._worker(int(record["wid"]))
            view.state = f"retired:{record.get('reason', '?')}"
        elif kind == "end":
            self.finished = record

    # -- derived -----------------------------------------------------------
    @property
    def total(self) -> int:
        return int(self.header.get("total", 0))

    @property
    def rss_limit_mb(self) -> Optional[float]:
        limit = self.header.get("rss_limit_mb")
        return float(limit) if limit is not None else None

    def elapsed_s(self) -> float:
        t0 = float(self.header.get("t", 0.0))
        ts = ([t for t, _ in self.fleet_rss] + self.done_times
              + ([float(self.finished.get("t", 0.0))]
                 if self.finished else []))
        return max(ts) - t0 if ts and t0 else 0.0

    def throughput(self) -> float:
        """Fleet items/s over the observed window (0.0 until measurable)."""
        elapsed = self.elapsed_s()
        return self.done / elapsed if elapsed > 0 else 0.0

    def status_line(self) -> str:
        """One terminal line for ``\\r`` live rendering."""
        live = sum(1 for w in self.workers.values()
                   if w.state == "running")
        rss_now = sum(w.last_rss_mb for w in self.workers.values()
                      if w.state == "running")
        peak = max((w.peak_rss_mb for w in self.workers.values()),
                   default=0.0)
        bits = [f"campaign {self.done}/{self.total or '?'}",
                f"ok={self.done - self.failed} fail={self.failed}",
                f"{live} workers rss={rss_now:.0f}MB peak={peak:.0f}MB",
                f"{self.throughput():.1f} items/s"]
        if self.kills or self.retires:
            bits.append(f"kills={self.kills} retires={self.retires}")
        return " | ".join(bits)


def tail_console(path: str) -> ConsoleTailer:
    """Read a whole sidecar stream once (the report-building path)."""
    tailer = ConsoleTailer(path)
    tailer.poll()
    return tailer


# -- the control room ---------------------------------------------------------

def control_room_digest(run_digest: str, campaign_digest: str = "",
                        series_digests: Sequence[str] = ()) -> str:
    """The digest CI pins: sim-time content only, never wall/RSS data."""
    h = hashlib.sha256()
    h.update(f"run:{run_digest}\n".encode())
    h.update(f"campaign:{campaign_digest}\n".encode())
    for digest in series_digests:
        h.update(f"series:{digest}\n".encode())
    return h.hexdigest()[:16]


def _throughput_buckets(tailer: ConsoleTailer, n: int = 60) -> list[float]:
    """Done-items per wall bucket across the observed window."""
    if not tailer.done_times:
        return []
    t0 = float(tailer.header.get("t", min(tailer.done_times)))
    t1 = max(tailer.done_times)
    width = max((t1 - t0) / n, 1e-9)
    buckets = [0.0] * n
    for t in tailer.done_times:
        index = min(n - 1, int((t - t0) / width))
        buckets[index] += 1
    return buckets


def control_room_html(tailer: ConsoleTailer, *, title: str = "campaign",
                      digest: str = "", notes: Sequence[str] = (),
                      series: Optional[Mapping[str, Sequence[
                          tuple[float, float]]]] = None) -> str:
    """Render the self-contained control-room report.

    ``series`` carries optional *sim-time* timelines (e.g. tenant SLO
    burn rates from a :class:`~repro.telemetry.timeseries.TimeSeries`)
    as ``name -> [(t, value), ...]``.
    """
    parts = [f"<h1>Campaign control room — {_html.escape(title)}</h1>"]
    meta = [f"{tailer.done}/{tailer.total or '?'} items",
            f"{tailer.failed} failed",
            f"{len(tailer.workers)} workers",
            f"{tailer.elapsed_s():.1f}s wall",
            f"{tailer.throughput():.2f} items/s"]
    if digest:
        meta.append(f"digest <code>{digest}</code>")
    parts.append(f"<p class='meta'>{' &middot; '.join(meta)}</p>")
    if notes:
        parts.append("<ul class='meta'>")
        parts.extend(f"<li>{_html.escape(note)}</li>" for note in notes)
        parts.append("</ul>")

    buckets = _throughput_buckets(tailer)
    if buckets:
        parts.append("<h2>Fleet throughput</h2>")
        parts.append(column_chart("items finished / bucket", buckets,
                                  "#4c78a8"))

    if tailer.workers:
        parts.append("<h2>Per-worker RSS vs ceiling</h2>")
        limit = tailer.rss_limit_mb
        if limit is not None:
            parts.append(f"<p class='meta'>ceiling {limit:.0f}&thinsp;MB "
                         f"(over-ceiling samples in red)</p>")
        for wid in sorted(tailer.workers):
            view = tailer.workers[wid]
            samples = view.rss_history or [view.peak_rss_mb]
            parts.append(column_chart(
                f"worker {wid} (peak {view.peak_rss_mb:.0f} MB)",
                samples, "#59a14f", ceiling=limit))

        parts.append("<h2>Workers</h2>")
        parts.append("<table><tr><th>worker</th><th>state</th>"
                     "<th>items</th><th>failures</th>"
                     "<th>peak RSS MB</th></tr>")
        for wid in sorted(tailer.workers):
            view = tailer.workers[wid]
            parts.append(
                f"<tr><td>{wid}</td><td>{_html.escape(view.state)}</td>"
                f"<td>{view.items}</td><td>{view.failures}</td>"
                f"<td>{view.peak_rss_mb:.0f}</td></tr>")
        parts.append("</table>")
        parts.append(f"<p class='meta'>kills {tailer.kills} &middot; "
                     f"retirements {tailer.retires}</p>")

    if series:
        parts.append("<h2>SLO burn-rate timelines (sim-time)</h2>")
        for name in sorted(series):
            points = list(series[name])
            parts.append(column_chart(
                name, [v for _, v in points], "#e8a838"))

    return page(f"control room — {title}", parts)


def write_control_room(path: str, tailer: ConsoleTailer, **kwargs) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(control_room_html(tailer, **kwargs))
    return path
