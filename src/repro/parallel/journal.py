"""Campaign journal: checkpoint/resume for sharded runs.

A journal is a JSONL file.  The first line is a header pinning the
campaign's identity — the worker function and a digest over the sorted
item keys — so a resume against a *different* campaign is rejected
instead of silently merging unrelated results.  Every following line is
one resolved item::

    {"kind": "header", "format": 1, "worker": "pkg.mod:fn",
     "items_digest": "...", "total": 250}
    {"key": "0", "ok": true, "value": {...}, "wall_s": 0.31}
    {"key": "1", "ok": false, "error": "timeout after 30.0s", ...}

Lines are appended (and flushed) as items resolve, so a campaign killed
mid-flight loses at most the in-flight items.  On resume, ``ok`` entries
are reused verbatim and failed entries are *retried* — a worker death or
timeout is environmental, not a property of the item.  A truncated final
line (the writer died mid-append) is skipped, not fatal.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from pathlib import Path
from typing import Optional

from repro.errors import ConfigError

FORMAT = 1


def items_digest(keys: list[str]) -> str:
    """Content digest over the sorted item keys (campaign identity)."""
    h = hashlib.sha256()
    for key in sorted(keys):
        h.update(key.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()[:16]


class CampaignJournal:
    """Append-only JSONL checkpoint of one sharded campaign."""

    def __init__(self, path: "str | Path", worker_ref: str,
                 keys: list[str]):
        self.path = Path(path)
        self.worker_ref = worker_ref
        self.items_digest = items_digest(keys)
        self.total = len(keys)
        self._fh: Optional[io.TextIOWrapper] = None

    # -- resume ----------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """Completed (``ok``) entries keyed by item key; {} if no journal.

        Raises :class:`ConfigError` when the journal on disk belongs to a
        different campaign (worker or item set mismatch).
        """
        if not self.path.exists():
            return {}
        completed: dict[str, dict] = {}
        header_seen = False
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final append from a killed run
            if not header_seen:
                header_seen = True
                if entry.get("kind") != "header":
                    raise ConfigError(
                        f"journal {self.path} has no header line")
                if entry.get("format") != FORMAT:
                    raise ConfigError(
                        f"journal {self.path}: unsupported format "
                        f"{entry.get('format')!r}")
                for field, want in (("worker", self.worker_ref),
                                    ("items_digest", self.items_digest)):
                    if entry.get(field) != want:
                        raise ConfigError(
                            f"journal {self.path} belongs to a different "
                            f"campaign: {field} {entry.get(field)!r} != "
                            f"{want!r}")
                continue
            if entry.get("ok"):
                completed[entry["key"]] = entry
        return completed

    # -- append ----------------------------------------------------------
    def open(self) -> None:
        """Open for appending; writes the header when the file is new."""
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        if fresh:
            self._write({"kind": "header", "format": FORMAT,
                         "worker": self.worker_ref,
                         "items_digest": self.items_digest,
                         "total": self.total})

    def append(self, entry: dict) -> None:
        if self._fh is not None:
            self._write(entry)

    def _write(self, obj: dict) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
