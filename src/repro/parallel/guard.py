"""One-shot guarded calls on top of the sharding fabric.

:func:`call_guarded` runs a single ``worker(item)`` in a killable child
process with a wall-clock budget and an optional RSS ceiling — the
single-item degenerate of :func:`repro.parallel.fabric.run_sharded`.
Campaign drivers use ``run_sharded`` directly; this wrapper serves spots
that need to bound *one* hostile call, e.g. the shrinker re-validating a
reduction candidate that might loop forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.parallel.fabric import run_sharded


@dataclass
class GuardedResult:
    """Outcome of one guarded call."""

    ok: bool
    value: Any = None
    error: Optional[str] = None
    timed_out: bool = False
    wall_s: float = 0.0


def call_guarded(worker: Callable[[Any], Any], item: Any, *,
                 timeout_s: float,
                 rss_limit_mb: Optional[float] = None,
                 mp_context: str = "spawn") -> GuardedResult:
    """Run ``worker(item)`` in a child process under a wall/RSS budget.

    ``worker`` must be a module-level callable whose argument and return
    value survive pickling.  A timeout, RSS kill, or crash comes back as
    ``ok=False`` with the reason in ``error`` — never an exception and
    never a hang.
    """
    run = run_sharded([item], worker, jobs=1, key=lambda _item: "0",
                      timeout_s=timeout_s, rss_limit_mb=rss_limit_mb,
                      mp_context=mp_context)
    r = run.results[0]
    return GuardedResult(ok=r.ok, value=r.value, error=r.error,
                         timed_out=run.stats.timeouts > 0,
                         wall_s=r.wall_s or run.wall_s)
