"""Process-pool execution fabric for independent seeded runs.

:func:`run_sharded` shards a list of items (fuzz scenario seeds,
perf-ladder rungs, sweep points...) across N worker processes and merges
the results *deterministically*: the returned results follow the input
item order and :meth:`ShardedRun.digest` hashes them sorted by item key,
so the digest is byte-identical for ``jobs=1``, ``jobs=8`` and any
completion interleaving.  Campaign-level content digests therefore stay
meaningful under parallelism — CI gates them, never wall time.

Mechanics
---------
* **Chunked work-stealing** — the parent enqueues fixed chunks of items
  on one shared task queue; idle workers pull the next chunk, so a slow
  item never staggers the whole schedule.
* **Per-worker guards** — a worker that exceeds the per-item wall-clock
  budget or the RSS ceiling is killed (parent-side, via ``/proc``) and
  the in-flight item becomes a *recorded failure* instead of a hung
  campaign; the rest of its chunk is requeued and a replacement worker
  is spawned (bounded respawn budget).  Workers also retire voluntarily
  between items once their peak RSS crosses the ceiling, and
  ``tasks_per_worker`` forces retirement after N items (one rung per
  process keeps peak-RSS attribution clean).
* **Checkpoint/resume** — with ``journal=...`` every resolved item is
  appended to a JSONL journal (see :mod:`repro.parallel.journal`); a
  rerun reuses completed items and retries failures.

Workers receive messages on private result queues (a killed worker can
tear its own pipe mid-write; a private queue confines the damage), while
the task queue is written only by the parent and is therefore kill-safe.

``jobs=1`` with no guards runs items inline in the parent — the serial
reference path the parallel digests are pinned against.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import queue as queue_mod
import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import ConfigError
from repro.parallel.journal import CampaignJournal

#: Parent event-loop poll interval (liveness, timeouts, RSS) in seconds.
_POLL_S = 0.05
#: Grace given to a worker between SIGTERM and SIGKILL.
_KILL_GRACE_S = 2.0
#: Sentinel telling a worker to exit.
_STOP = None


def _worker_ref(worker: Callable) -> str:
    return f"{worker.__module__}:{worker.__qualname__}"


def _default_chunk_size(n_items: int, jobs: int) -> int:
    # Small enough that stealing balances a skewed campaign, large enough
    # that queue traffic stays negligible: ~4 chunks per worker.
    return max(1, min(8, math.ceil(n_items / max(1, jobs * 4))))


def _rss_peak_mb() -> float:
    """This process's peak RSS in MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _proc_rss_mb(pid: int) -> Optional[float]:
    """Current RSS of ``pid`` in MB via /proc; None where unsupported."""
    try:
        with open(f"/proc/{pid}/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        return None
    return None


@dataclass
class ItemResult:
    """Outcome of one sharded item."""

    key: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    wall_s: float = 0.0
    worker: int = -1
    resumed: bool = False

    def journal_entry(self) -> dict:
        return {"key": self.key, "ok": self.ok, "value": self.value,
                "error": self.error, "wall_s": round(self.wall_s, 3)}

    @classmethod
    def from_journal(cls, entry: dict) -> "ItemResult":
        return cls(key=entry["key"], ok=bool(entry.get("ok")),
                   value=entry.get("value"), error=entry.get("error"),
                   wall_s=float(entry.get("wall_s", 0.0)), resumed=True)


@dataclass
class FabricStats:
    """What the pool did to finish the campaign (never part of digests)."""

    jobs: int = 1
    chunks: int = 0
    workers_spawned: int = 0
    worker_deaths: int = 0
    timeouts: int = 0
    rss_kills: int = 0
    retirements: int = 0
    requeued_items: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class WorkerStats:
    """One worker's observed footprint (never part of digests).

    ``peak_rss_mb`` is the max of the worker's own ``ru_maxrss`` reports
    and the parent's ``/proc`` samples — the fabric was already watching
    RSS for the ceiling; now the observed peak is recorded instead of
    discarded.
    """

    wid: int
    items_completed: int = 0
    peak_rss_mb: float = 0.0
    outcome: str = "ok"   # ok | retired:* | killed:timeout | killed:rss
    #                     # | died

    def as_dict(self) -> dict:
        return {"wid": self.wid,
                "items_completed": self.items_completed,
                "peak_rss_mb": round(self.peak_rss_mb, 1),
                "outcome": self.outcome}


@dataclass
class ShardedRun:
    """Merged outcome of one :func:`run_sharded` campaign."""

    results: list[ItemResult]
    stats: FabricStats = field(default_factory=FabricStats)
    wall_s: float = 0.0
    #: Per-worker footprints, wid order (wall/RSS data — never digested).
    workers: list[WorkerStats] = field(default_factory=list)

    @property
    def peak_rss_mb(self) -> float:
        return max((w.peak_rss_mb for w in self.workers), default=0.0)

    @property
    def n_ok(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    @property
    def n_resumed(self) -> int:
        return sum(1 for r in self.results if r.resumed)

    def failures(self) -> list[ItemResult]:
        return [r for r in self.results if not r.ok]

    def digest(self) -> str:
        """Order-independent content digest: results sorted by item key.

        Hashes only deterministic fields (key, verdict, JSON-canonical
        value) — wall clocks, worker ids and error prose never leak in,
        so ``jobs=1`` and ``jobs=N`` runs of a deterministic worker hash
        identically byte for byte.
        """
        h = hashlib.sha256()
        for r in sorted(self.results, key=lambda r: r.key):
            payload = (json.dumps(r.value, sort_keys=True)
                       if r.ok else "failed")
            h.update(f"{r.key}\t{payload}\n".encode("utf-8"))
        return h.hexdigest()[:16]


# -- worker side --------------------------------------------------------------

def _worker_main(worker_id: int, worker: Callable, tasks, results,
                 rss_limit_mb: Optional[float],
                 tasks_per_worker: Optional[int],
                 console_path: Optional[str] = None) -> None:
    """Worker loop: pull a chunk, run its items, report, maybe retire."""
    done_items = 0
    while True:
        chunk = tasks.get()
        if chunk is _STOP:
            results.put(("stopped", worker_id, None, None))
            return
        results.put(("chunk", worker_id, [key for key, _item in chunk],
                     None))
        for key, item in chunk:
            results.put(("start", worker_id, key, None))
            t0 = time.monotonic()
            try:
                value = worker(item)
                payload = {"ok": True, "value": value,
                           "wall_s": time.monotonic() - t0}
            except BaseException as exc:  # noqa: BLE001 — recorded, not fatal
                payload = {"ok": False,
                           "error": f"{type(exc).__name__}: {exc}",
                           "wall_s": time.monotonic() - t0}
            payload["rss_mb"] = _rss_peak_mb()
            results.put(("done", worker_id, key, payload))
            if console_path is not None:
                from repro.parallel.console import console_append
                console_append(console_path, {
                    "kind": "done", "wid": worker_id, "key": key,
                    "ok": payload["ok"],
                    "wall_s": round(payload["wall_s"], 3),
                    "rss_mb": round(payload["rss_mb"], 1),
                    "t": round(time.time(), 3)})
            done_items += 1
            over_rss = (rss_limit_mb is not None
                        and _rss_peak_mb() > rss_limit_mb)
            spent = (tasks_per_worker is not None
                     and done_items >= tasks_per_worker)
            if over_rss or spent:
                reason = "rss" if over_rss else "tasks"
                results.put(("retire", worker_id, reason, None))
                return


# -- parent side --------------------------------------------------------------

class _Worker:
    """Parent-side view of one worker process."""

    __slots__ = ("id", "proc", "results", "assigned", "current",
                 "started_at", "stopped", "stats")

    def __init__(self, wid: int, proc, results):
        self.id = wid
        self.proc = proc
        self.results = results
        #: Keys of the chunk the worker holds, not yet resolved.
        self.assigned: set[str] = set()
        self.current: Optional[str] = None
        self.started_at: float = 0.0
        self.stopped = False
        self.stats = WorkerStats(wid=wid)


class _Pool:
    """One campaign's worker pool + merge loop."""

    def __init__(self, worker: Callable, jobs: int,
                 timeout_s: Optional[float], rss_limit_mb: Optional[float],
                 tasks_per_worker: Optional[int], mp_context: str,
                 console=None):
        self.worker = worker
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.rss_limit_mb = rss_limit_mb
        self.tasks_per_worker = tasks_per_worker
        self.ctx = multiprocessing.get_context(mp_context)
        self.stats = FabricStats(jobs=jobs)
        #: Optional :class:`~repro.parallel.console.ConsoleWriter`.
        self.console = console
        #: Per-worker footprints, kept across worker death/reap.
        self.worker_stats: dict[int, WorkerStats] = {}
        #: Bounded respawn budget: a deterministic crasher must not spawn
        #: workers forever (each retry fails again and eats budget).
        self.spawn_budget = jobs + max(4, 2 * jobs)
        self.workers: dict[int, _Worker] = {}
        self._next_wid = 0
        self.tasks = self.ctx.Queue()

    # -- lifecycle -------------------------------------------------------
    def _spawn(self) -> Optional[_Worker]:
        if self.spawn_budget <= 0:
            return None
        self.spawn_budget -= 1
        self.stats.workers_spawned += 1
        wid = self._next_wid
        self._next_wid += 1
        results = self.ctx.Queue()
        console_path = (self.console.path if self.console is not None
                        else None)
        proc = self.ctx.Process(
            target=_worker_main,
            args=(wid, self.worker, self.tasks, results,
                  self.rss_limit_mb, self.tasks_per_worker, console_path),
            daemon=True, name=f"shard-worker-{wid}")
        # A spawned child only inherits PYTHONPATH, not the parent's
        # runtime sys.path — exporting it keeps ``repro`` importable in
        # the fresh interpreter no matter how the parent was launched.
        saved = os.environ.get("PYTHONPATH")
        os.environ["PYTHONPATH"] = os.pathsep.join(
            p for p in sys.path if p)
        try:
            proc.start()
        finally:
            if saved is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = saved
        w = _Worker(wid, proc, results)
        self.workers[wid] = w
        self.worker_stats[wid] = w.stats
        if self.console is not None:
            self.console.event("spawn", wid=wid)
        return w

    def _kill(self, w: _Worker) -> None:
        w.proc.terminate()
        w.proc.join(_KILL_GRACE_S)
        if w.proc.is_alive():
            w.proc.kill()
            w.proc.join(_KILL_GRACE_S)
        w.stopped = True

    # -- failure paths ---------------------------------------------------
    def _fail_current(self, w: _Worker, error: str, resolve) -> None:
        if w.current is not None and w.current in w.assigned:
            resolve(ItemResult(key=w.current, ok=False, error=error,
                               worker=w.id))
            w.assigned.discard(w.current)
        w.current = None

    def _requeue(self, w: _Worker, pending_keys: set[str],
                 items_by_key: dict[str, Any]) -> None:
        """Give a dead worker's unstarted chunk remainder back to the pool."""
        keys = [k for k in w.assigned if k in pending_keys]
        w.assigned.clear()
        if keys:
            self.stats.requeued_items += len(keys)
            self.tasks.put([(k, items_by_key[k]) for k in keys])

    # -- main loop -------------------------------------------------------
    def run(self, chunks: list[list[tuple[str, Any]]],
            items_by_key: dict[str, Any], resolve,
            pending_keys: set[str], on_poll=None) -> None:
        for chunk in chunks:
            self.tasks.put(chunk)
        self.stats.chunks = len(chunks)
        for _ in range(min(self.jobs, max(1, len(chunks)))):
            self._spawn()
        stalled_polls = 0
        try:
            while pending_keys:
                progressed = self._drain(resolve, pending_keys)
                self._police(resolve, items_by_key, pending_keys)
                if on_poll is not None:
                    on_poll()
                if not self._ensure_liveness(resolve, items_by_key,
                                             pending_keys):
                    break
                if progressed:
                    stalled_polls = 0
                else:
                    stalled_polls += 1
                    if stalled_polls >= 40:  # ~2s of silence
                        self._unstick(items_by_key, pending_keys)
                        stalled_polls = 0
                    time.sleep(_POLL_S)
        finally:
            self._shutdown()

    def _unstick(self, items_by_key, pending_keys) -> None:
        """Backstop for a lost chunk claim.

        If a worker dies *between* pulling a chunk off the task queue and
        the parent draining its "chunk" message, those keys are tracked
        nowhere: the queue is empty, no live worker owns them, and the
        campaign would idle forever.  When everything has been silent for
        a while and no pending key is claimed anywhere, requeue the
        orphans — ``resolve`` is first-wins, so the worst case of a false
        alarm is harmless duplicate execution of a deterministic worker.
        """
        claimed: set[str] = set()
        for w in self.workers.values():
            if not w.stopped:
                claimed.update(w.assigned)
                if w.current is not None:
                    claimed.add(w.current)
        orphans = [k for k in pending_keys if k not in claimed]
        if not orphans:
            return
        try:
            queued = self.tasks.qsize()
        except NotImplementedError:  # platform without sem_getvalue
            queued = 1
        if queued == 0:
            self.stats.requeued_items += len(orphans)
            self.tasks.put([(k, items_by_key[k]) for k in orphans])

    def _drain(self, resolve, pending_keys: set[str]) -> bool:
        progressed = False
        for w in list(self.workers.values()):
            if w.stopped:
                # A killed worker may have torn its queue mid-put; a
                # retired one has nothing after its final message.
                continue
            while True:
                try:
                    kind, wid, a, b = w.results.get_nowait()
                except queue_mod.Empty:
                    break
                except (EOFError, OSError):  # torn pipe from a kill
                    break
                progressed = True
                if kind == "chunk":
                    w.assigned.update(k for k in a if k in pending_keys)
                elif kind == "start":
                    w.current = a
                    w.started_at = time.monotonic()
                elif kind == "done":
                    if a in pending_keys:
                        resolve(ItemResult(
                            key=a, ok=b["ok"], value=b.get("value"),
                            error=b.get("error"),
                            wall_s=b.get("wall_s", 0.0), worker=wid))
                    w.assigned.discard(a)
                    if w.current == a:
                        w.current = None
                    w.stats.items_completed += 1
                    rss = b.get("rss_mb")
                    if rss is not None and rss > w.stats.peak_rss_mb:
                        w.stats.peak_rss_mb = rss
                elif kind == "retire":
                    self.stats.retirements += 1
                    w.stats.outcome = f"retired:{a}"
                    if self.console is not None:
                        self.console.event("retire", wid=wid, reason=a)
                    w.stopped = True
                    # Voluntary retirement is healthy turnover, not a
                    # failure: refund the respawn budget so per-rung
                    # ``tasks_per_worker=1`` pools never starve.
                    self.spawn_budget += 1
                elif kind == "stopped":
                    w.stopped = True
        return progressed

    def _police(self, resolve, items_by_key, pending_keys) -> None:
        """Enforce the per-item wall budget and the RSS ceiling.

        Always samples ``/proc`` RSS for live workers — even with no
        ceiling set — so the observed peaks land in the worker stats and
        the console stream instead of being discarded.
        """
        now = time.monotonic()
        rss_by_wid: dict[int, float] = {}
        for w in list(self.workers.values()):
            if w.stopped or not w.proc.is_alive():
                continue
            if w.proc.pid:
                rss = _proc_rss_mb(w.proc.pid)
                if rss is not None:
                    rss_by_wid[w.id] = rss
                    if rss > w.stats.peak_rss_mb:
                        w.stats.peak_rss_mb = rss
            if w.current is None:
                continue
            if (self.timeout_s is not None
                    and now - w.started_at > self.timeout_s):
                self.stats.timeouts += 1
                w.stats.outcome = "killed:timeout"
                if self.console is not None:
                    self.console.event("kill", wid=w.id, reason="timeout")
                self._kill(w)
                self._fail_current(
                    w, f"timeout: exceeded {self.timeout_s}s budget",
                    resolve)
                self._requeue(w, pending_keys, items_by_key)
                continue
            if self.rss_limit_mb is not None:
                rss = rss_by_wid.get(w.id)
                if rss is not None and rss > self.rss_limit_mb:
                    self.stats.rss_kills += 1
                    w.stats.outcome = "killed:rss"
                    if self.console is not None:
                        self.console.event("kill", wid=w.id, reason="rss")
                    self._kill(w)
                    self._fail_current(
                        w, f"rss: {rss:.0f} MB exceeded the "
                           f"{self.rss_limit_mb:.0f} MB ceiling", resolve)
                    self._requeue(w, pending_keys, items_by_key)
        if self.console is not None and rss_by_wid:
            self.console.rss_sample(rss_by_wid, pending=len(pending_keys))

    def _ensure_liveness(self, resolve, items_by_key,
                         pending_keys) -> bool:
        """Reap dead workers, respawn while work remains.

        Returns False when no progress is possible any more — remaining
        items are then failed by the caller's cleanup, never hung.
        """
        for wid, w in list(self.workers.items()):
            if not w.proc.is_alive():
                if not w.stopped:
                    self.stats.worker_deaths += 1
                    w.stats.outcome = "died"
                    if self.console is not None:
                        self.console.event("kill", wid=wid, reason="died")
                    self._fail_current(
                        w, "worker died "
                           f"(exitcode {w.proc.exitcode})", resolve)
                    self._requeue(w, pending_keys, items_by_key)
                del self.workers[wid]
        live = sum(1 for w in self.workers.values() if not w.stopped)
        want = min(self.jobs, len(pending_keys))
        while live < want:
            if self._spawn() is None:
                break
            live += 1
        if live == 0 and pending_keys:
            for key in sorted(pending_keys):
                resolve(ItemResult(
                    key=key, ok=False,
                    error="worker respawn budget exhausted"))
            return False
        return True

    def _shutdown(self) -> None:
        for _ in self.workers:
            self.tasks.put(_STOP)
        deadline = time.monotonic() + _KILL_GRACE_S
        for w in self.workers.values():
            w.proc.join(max(0.0, deadline - time.monotonic()))
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(_KILL_GRACE_S)
        self.tasks.cancel_join_thread()
        self.tasks.close()
        for w in self.workers.values():
            w.results.cancel_join_thread()
            w.results.close()


# -- entry point --------------------------------------------------------------

def run_sharded(items: Sequence[Any], worker: Callable[[Any], Any],
                jobs: int = 1, *,
                key: Optional[Callable[[Any], str]] = None,
                chunk_size: Optional[int] = None,
                timeout_s: Optional[float] = None,
                rss_limit_mb: Optional[float] = None,
                tasks_per_worker: Optional[int] = None,
                journal: "Optional[str]" = None,
                console: "Optional[str]" = None,
                on_poll: Optional[Callable[[], None]] = None,
                mp_context: str = "spawn") -> ShardedRun:
    """Run ``worker(item)`` for every item, sharded over ``jobs`` processes.

    ``worker`` must be a module-level callable returning a
    JSON-serializable value (it crosses a process boundary and lands in
    digests/journals).  Results come back in *input item order* no matter
    how execution interleaved; :meth:`ShardedRun.digest` is the
    sort-by-key content digest campaigns pin in CI.

    ``jobs=1`` with no guards runs inline (the serial reference path).
    Setting ``timeout_s``/``rss_limit_mb`` forces the pool even for one
    job, because guards need a killable process boundary; so does
    ``tasks_per_worker``, whose point is a fresh process per batch (the
    scale ladder uses ``tasks_per_worker=1`` for attributable peak RSS).

    ``console=PATH`` appends a live progress/RSS sidecar stream (see
    :mod:`repro.parallel.console`); ``on_poll`` is invoked repeatedly
    from the parent's event loop (and between items on the serial path)
    — the CLI hangs its ``\\r`` status line off it.  Neither affects
    results or digests.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    key_fn = key if key is not None else lambda item: str(item)
    keyed = [(key_fn(item), item) for item in items]
    keys = [k for k, _ in keyed]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ConfigError(f"item keys must be unique; duplicates: "
                          f"{dupes[:5]}")

    jnl: Optional[CampaignJournal] = None
    resumed: dict[str, dict] = {}
    if journal is not None:
        jnl = CampaignJournal(journal, _worker_ref(worker), keys)
        resumed = jnl.load()
        jnl.open()

    by_key: dict[str, ItemResult] = {
        k: ItemResult.from_journal(entry) for k, entry in resumed.items()}
    pending = [(k, item) for k, item in keyed if k not in by_key]
    stats = FabricStats(jobs=jobs)
    worker_stats: list[WorkerStats] = []
    writer = None
    if console is not None:
        from repro.parallel.console import ConsoleWriter
        writer = ConsoleWriter(console, worker_ref=_worker_ref(worker),
                               total=len(pending), jobs=jobs,
                               rss_limit_mb=rss_limit_mb)
    t0 = time.monotonic()

    def resolve(result: ItemResult) -> None:
        if result.key in by_key:
            return  # late duplicate after a requeue — first wins
        by_key[result.key] = result
        if jnl is not None:
            jnl.append(result.journal_entry())

    use_pool = (jobs > 1 or timeout_s is not None
                or rss_limit_mb is not None or tasks_per_worker is not None)
    try:
        if not use_pool:
            serial = WorkerStats(wid=0)
            if pending:
                worker_stats.append(serial)
                if writer is not None:
                    writer.event("spawn", wid=0)
            for k, item in pending:
                item_t0 = time.monotonic()
                try:
                    value = worker(item)
                    result = ItemResult(
                        key=k, ok=True, value=value,
                        wall_s=time.monotonic() - item_t0, worker=0)
                except Exception as exc:  # noqa: BLE001 — recorded
                    result = ItemResult(
                        key=k, ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        wall_s=time.monotonic() - item_t0, worker=0)
                resolve(result)
                serial.items_completed += 1
                serial.peak_rss_mb = max(serial.peak_rss_mb,
                                         _rss_peak_mb())
                if writer is not None:
                    writer.event("done", wid=0, key=k, ok=result.ok,
                                 wall_s=round(result.wall_s, 3),
                                 rss_mb=round(serial.peak_rss_mb, 1))
                if on_poll is not None:
                    on_poll()
        elif pending:
            size = chunk_size or _default_chunk_size(len(pending), jobs)
            if tasks_per_worker is not None:
                size = min(size, tasks_per_worker)
            chunks = [pending[i:i + size]
                      for i in range(0, len(pending), size)]
            pool = _Pool(worker, jobs, timeout_s, rss_limit_mb,
                         tasks_per_worker, mp_context, console=writer)
            pool.run(chunks, dict(pending), resolve,
                     pending_keys=_PendingView(by_key, keys),
                     on_poll=on_poll)
            stats = pool.stats
            worker_stats = [pool.worker_stats[wid]
                            for wid in sorted(pool.worker_stats)]
    finally:
        if jnl is not None:
            jnl.close()

    results = [by_key[k] for k in keys]
    run_out = ShardedRun(results=results, stats=stats,
                         wall_s=round(time.monotonic() - t0, 3),
                         workers=worker_stats)
    if writer is not None:
        writer.event("end", ok=run_out.n_ok, failed=run_out.n_failed,
                     wall_s=run_out.wall_s)
    return run_out


class _PendingView:
    """Live 'unresolved keys' set view over the results dict.

    The pool treats it as a set: membership, iteration, truthiness and
    ``discard`` all reflect the authoritative ``by_key`` map, so resolve
    order can never desynchronize a separate bookkeeping copy.
    """

    def __init__(self, by_key: dict[str, ItemResult], keys: list[str]):
        self._by_key = by_key
        self._keys = keys
        self._keyset = set(keys)

    def __contains__(self, key: str) -> bool:
        return key not in self._by_key and key in self._keyset

    def __iter__(self):
        return iter([k for k in self._keys if k not in self._by_key])

    def __len__(self) -> int:
        return sum(1 for k in self._keys if k not in self._by_key)

    def __bool__(self) -> bool:
        return any(k not in self._by_key for k in self._keys)

    def discard(self, key: str) -> None:  # resolution already recorded it
        pass
