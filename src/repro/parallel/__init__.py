"""Process-pool execution fabric with deterministic result merge.

Public surface:

* :func:`run_sharded` — shard independent items over N worker processes;
  results come back in input order and digest identically for any job
  count or interleaving.
* :func:`call_guarded` — one call in a killable child under a wall/RSS
  budget.
* :class:`CampaignJournal` — JSONL checkpoint/resume for campaigns.
"""

from repro.parallel.fabric import (FabricStats, ItemResult, ShardedRun,
                                   run_sharded)
from repro.parallel.guard import GuardedResult, call_guarded
from repro.parallel.journal import CampaignJournal

__all__ = [
    "CampaignJournal",
    "FabricStats",
    "GuardedResult",
    "ItemResult",
    "ShardedRun",
    "call_guarded",
    "run_sharded",
]
