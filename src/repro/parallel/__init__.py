"""Process-pool execution fabric with deterministic result merge.

Public surface:

* :func:`run_sharded` — shard independent items over N worker processes;
  results come back in input order and digest identically for any job
  count or interleaving.
* :func:`call_guarded` — one call in a killable child under a wall/RSS
  budget.
* :class:`CampaignJournal` — JSONL checkpoint/resume for campaigns.
* :class:`ConsoleTailer` / :func:`control_room_html` — the live sidecar
  progress stream and the self-contained HTML control room
  (:mod:`repro.parallel.console`).
"""

from repro.parallel.console import (ConsoleTailer, ConsoleWriter,
                                    console_append, control_room_digest,
                                    control_room_html, tail_console,
                                    write_control_room)
from repro.parallel.fabric import (FabricStats, ItemResult, ShardedRun,
                                   WorkerStats, run_sharded)
from repro.parallel.guard import GuardedResult, call_guarded
from repro.parallel.journal import CampaignJournal

__all__ = [
    "CampaignJournal",
    "ConsoleTailer",
    "ConsoleWriter",
    "FabricStats",
    "GuardedResult",
    "ItemResult",
    "ShardedRun",
    "WorkerStats",
    "call_guarded",
    "console_append",
    "control_room_digest",
    "control_room_html",
    "run_sharded",
    "tail_console",
    "write_control_room",
]
