"""Labelled metrics: counters, gauges, histograms, and their registry.

The registry is the quantitative half of the telemetry subsystem (spans
being the structural half).  Instrumented layers record, e.g.::

    metrics.counter("hdfs.bytes.written").inc(f.size)
    metrics.histogram("mapreduce.task.duration",
                      labels={"phase": "map", "job": job.name}).observe(dt)

Metric names are dot-namespaced like trace-event kinds; labels are plain
``str → str`` mappings.  One *metric family* (a name plus help text and a
type) owns one child per distinct label set.  Everything is in-memory and
deterministic — there is no background aggregation thread, because values
only ever change inside the single-threaded simulation.

Exporters live in :mod:`repro.telemetry.export` (Prometheus text, CSV).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from repro.errors import ConfigError

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Value that can go up and down (utilization, queue depth, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Streaming distribution summary over fixed buckets.

    Buckets are cumulative upper bounds (Prometheus style, ``+Inf``
    implied).  Count, sum, min and max are exact; quantiles are estimated
    from the bucket counts.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "total", "min", "max")

    #: Default bounds, tuned for durations in simulated seconds.
    DEFAULT_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                       100.0, 250.0, 500.0, 1000.0)

    def __init__(self, buckets: Optional[tuple[float, ...]] = None):
        bounds = tuple(buckets) if buckets else self.DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ConfigError(f"histogram buckets must ascend: {bounds}")
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)   # + the +Inf bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile from the bucket counts (upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank:
                return (self.buckets[i] if i < len(self.buckets)
                        else self.max)
        return self.max


@dataclass
class MetricFamily:
    """One metric name: its type, help text, and per-label-set children."""

    name: str
    kind: str                    # "counter" | "gauge" | "histogram"
    help: str = ""
    buckets: Optional[tuple[float, ...]] = None
    children: dict[LabelSet, object] = field(default_factory=dict)

    def child(self, labels: LabelSet):
        try:
            return self.children[labels]
        except KeyError:
            made = {"counter": Counter, "gauge": Gauge,
                    "histogram": lambda: Histogram(self.buckets)}[self.kind]()
            self.children[labels] = made
            return made

    def items(self) -> Iterator[tuple[LabelSet, object]]:
        return iter(sorted(self.children.items()))


class MetricsRegistry:
    """All metric families of one simulated platform."""

    def __init__(self) -> None:
        self.families: dict[str, MetricFamily] = {}

    # -- family accessors -----------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[tuple[float, ...]] = None) -> MetricFamily:
        family = self.families.get(name)
        if family is None:
            family = MetricFamily(name=name, kind=kind, help=help,
                                  buckets=buckets)
            self.families[name] = family
        elif family.kind != kind:
            raise ConfigError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested {kind}")
        return family

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        return self._family(name, "counter", help).child(_labelset(labels))

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._family(name, "gauge", help).child(_labelset(labels))

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Optional[tuple[float, ...]] = None) -> Histogram:
        return self._family(name, "histogram", help,
                            buckets=buckets).child(_labelset(labels))

    # -- reading --------------------------------------------------------------
    def get(self, name: str,
            labels: Optional[Mapping[str, str]] = None):
        """The child instrument, or None if never recorded."""
        family = self.families.get(name)
        if family is None:
            return None
        return family.children.get(_labelset(labels))

    def value(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> float:
        """Scalar value of a counter/gauge (0.0 when absent)."""
        child = self.get(name, labels)
        return child.value if child is not None else 0.0

    def sum(self, name: str, label: Optional[str] = None,
            value: Optional[str] = None) -> float:
        """Sum a counter/gauge family across children, optionally filtered
        to children whose ``label`` equals ``value``."""
        family = self.families.get(name)
        if family is None:
            return 0.0
        total = 0.0
        for labelset, child in family.children.items():
            if label is not None and (label, value) not in labelset:
                continue
            total += getattr(child, "value", 0.0)
        return total

    def clear(self) -> None:
        self.families.clear()
