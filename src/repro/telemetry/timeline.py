"""Per-job timeline reconstruction and critical-path analysis.

Given the spans one job emitted (plus the VM-lifecycle and migration spans
that overlapped its run), this module answers the question every
performance PR has to answer first: *which chain of work determined the
makespan?*

The critical path is reconstructed by a backward latest-predecessor walk:
starting from the job span's end, repeatedly pick the latest-finishing work
span that ends at or before the head of the chain and starts strictly
earlier, until the job span's start is reached.  Intervals not covered by
any span on the chain are attributed to explicit ``wait`` segments
(heartbeat latency, slot queueing, phase barriers), so the path's total
duration reproduces the measured makespan *exactly by construction* — the
interesting outputs are which spans sit on the path and how much of it is
wait versus work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import MonitorError
from repro.sim.trace import Span
from repro.telemetry import events as EV

_EPS = 1e-9

#: Span categories eligible for the critical path (phases overlap their own
#: children wholesale and would shadow them, so they are excluded).
_PATH_CATEGORIES = frozenset(
    {"task", "shuffle", "hdfs", "vm", "migration", "net"})

#: Categories where one logical unit of work may leave several attempt
#: spans under the same name (task retries/speculation, shuffle re-fetch).
_ATTEMPT_CATEGORIES = frozenset({"task", "shuffle"})


def _superseded_ids(spans: Sequence[Span]) -> set[int]:
    """Span ids of attempts whose work another attempt redid.

    A chaos-killed or speculation-losing attempt closes with
    ``failed=True`` / ``won=False``; when a sibling attempt under the same
    ``(kind, name)`` succeeded, the loser's span must not count as
    critical-path work — its wall time is recovery latency (an explicit
    wait), not a second helping of the task's runtime.  Attempts with no
    successful sibling (e.g. a job that ultimately failed) are kept.
    """
    winners: set[tuple[str, str]] = set()
    for s in spans:
        if (EV.category_of(s.kind) in _ATTEMPT_CATEGORIES
                and not s.attrs.get("failed")
                and s.attrs.get("won") is not False):
            winners.add((s.kind, s.name))
    return {
        s.span_id for s in spans
        if EV.category_of(s.kind) in _ATTEMPT_CATEGORIES
        and (s.attrs.get("failed") or s.attrs.get("won") is False)
        and (s.kind, s.name) in winners}


@dataclass(frozen=True)
class PathSegment:
    """One link of the critical path: a span, or an attributed wait gap."""

    start: float
    end: float
    span: Optional[Span] = None          # None for a wait segment

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def label(self) -> str:
        if self.span is None:
            return "wait"
        return f"{self.span.kind}:{self.span.name}"


@dataclass
class CriticalPath:
    """The chain of spans (and waits) that determined one job's makespan."""

    job: str
    start: float
    end: float
    segments: list[PathSegment] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Total path duration — equals sum of its segment durations."""
        return sum(seg.duration for seg in self.segments)

    @property
    def work_s(self) -> float:
        return sum(s.duration for s in self.segments if s.span is not None)

    @property
    def wait_s(self) -> float:
        return sum(s.duration for s in self.segments if s.span is None)

    @property
    def coverage(self) -> float:
        """Fraction of the makespan covered by spans (1 − wait share)."""
        span = self.end - self.start
        return self.work_s / span if span > 0 else 0.0

    def span_segments(self) -> list[PathSegment]:
        return [s for s in self.segments if s.span is not None]

    def describe(self) -> str:
        """Human-readable rendering, one segment per line."""
        lines = [f"critical path of {self.job}: {self.makespan:.2f} s "
                 f"({self.coverage:.0%} in spans, "
                 f"{len(self.span_segments())} spans)"]
        for seg in self.segments:
            lines.append(f"  {seg.start:9.2f} → {seg.end:9.2f}  "
                         f"{seg.duration:8.2f} s  {seg.label}")
        return "\n".join(lines)


@dataclass
class JobTimeline:
    """All spans of one job run, rooted at its ``job.run`` span."""

    job: str
    job_span: Span
    spans: list[Span] = field(default_factory=list)    # every related span

    @property
    def makespan(self) -> float:
        return self.job_span.duration

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def by_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def categories(self) -> set[str]:
        return {EV.category_of(s.kind) for s in self.spans}

    def critical_path(self) -> CriticalPath:
        return critical_path(self.job_span, self.spans)


def _descendant_ids(root: Span, spans: Sequence[Span]) -> set[int]:
    ids = {root.span_id}
    grew = True
    while grew:
        grew = False
        for span in spans:
            if span.parent_id in ids and span.span_id not in ids:
                ids.add(span.span_id)
                grew = True
    return ids


def build_timeline(job_name: str, spans: Iterable[Span]) -> JobTimeline:
    """Reconstruct one job's timeline from a flat span log.

    The timeline holds the job's own span tree plus any unparented
    VM/migration spans that overlap the job window — those contend for the
    same hosts and can carry the critical path.
    """
    pool = [s for s in spans if not s.open]
    roots = [s for s in pool
             if s.kind == EV.JOB_RUN and s.name == job_name]
    if not roots:
        raise MonitorError(f"no {EV.JOB_RUN} span recorded for job "
                           f"{job_name!r} (is tracing enabled?)")
    root = roots[-1]           # latest run under this name
    ids = _descendant_ids(root, pool)
    related = [s for s in pool if s.span_id in ids]
    for span in pool:
        if span.span_id in ids:
            continue
        if EV.category_of(span.kind) in ("vm", "migration") \
                and span.end > root.start and span.start < root.end:
            related.append(span)
    related.sort(key=lambda s: (s.start, s.span_id))
    return JobTimeline(job=job_name, job_span=root, spans=related)


def critical_path(job_span: Span, spans: Sequence[Span]) -> CriticalPath:
    """Backward latest-predecessor walk from the job span's end."""
    superseded = _superseded_ids(spans)
    candidates = [
        s for s in spans
        if s is not job_span and not s.open
        and s.span_id not in superseded
        and EV.category_of(s.kind) in _PATH_CATEGORIES
        and s.end <= job_span.end + _EPS
        and s.start >= job_span.start - _EPS]
    chain: list[Span] = []
    head = job_span.end
    while head > job_span.start + _EPS:
        best = None
        for s in candidates:
            if s.end <= head + _EPS and s.start < head - _EPS:
                if best is None or (s.end, s.end - s.start) > \
                        (best.end, best.end - best.start):
                    best = s
        if best is None:
            break
        chain.append(best)
        head = best.start
        candidates = [s for s in candidates if s.start < head - _EPS]

    chain.reverse()
    segments: list[PathSegment] = []
    cursor = job_span.start
    for span in chain:
        if span.start > cursor + _EPS:
            segments.append(PathSegment(start=cursor, end=span.start))
        segments.append(PathSegment(start=span.start, end=span.end,
                                    span=span))
        cursor = span.end
    if job_span.end > cursor + _EPS:
        segments.append(PathSegment(start=cursor, end=job_span.end))
    return CriticalPath(job=job_span.name, start=job_span.start,
                        end=job_span.end, segments=segments)
