"""The trace-event taxonomy: every kind the platform may emit.

Emit sites reference these constants instead of bare string literals, so
the full vocabulary of the trace is auditable in one place and a test can
assert that nothing emits an unregistered kind
(``tests/telemetry/test_events.py``).

Span kinds (``SPAN_KINDS``) are intervals: opening one emits
``<kind>.start`` and closing it emits ``<kind>.end`` — both derived event
kinds are registered automatically.  ``category_of`` maps any kind onto the
coarse categories the Chrome-trace exporter and the critical-path analyser
group by (job / phase / task / shuffle / vm / migration / hdfs / net /
scheduler / cluster / cloud).

This module is a leaf: it must import nothing from :mod:`repro` so that
every layer of the system (including :mod:`repro.net` and
:mod:`repro.sim`) can reference it without cycles.
"""

from __future__ import annotations

# -- span kinds (intervals; events are <kind>.start / <kind>.end) ------------
JOB_RUN = "job.run"                      #: whole job, submit → report
PHASE_MAP = "job.phase.map"              #: map phase of one job
PHASE_REDUCE = "job.phase.reduce"        #: reduce phase of one job
TASK_MAP = "task.map.attempt"            #: one map attempt on a tracker
TASK_REDUCE = "task.reduce.attempt"      #: one reduce attempt on a tracker
SHUFFLE_FETCH = "shuffle.fetch"          #: one map→reduce partition copy
DFS_WRITE = "dfs.write"                  #: one replicated HDFS file write
VM_BOOT = "vm.boot"                      #: NFS image fetch + guest boot
MIGRATION = "migration"                  #: one live migration, setup → resume

SPAN_KINDS: frozenset[str] = frozenset({
    JOB_RUN, PHASE_MAP, PHASE_REDUCE, TASK_MAP, TASK_REDUCE,
    SHUFFLE_FETCH, DFS_WRITE, VM_BOOT, MIGRATION,
})

# -- point-event kinds -------------------------------------------------------
NET_TRANSFER_START = "net.transfer.start"
NET_TRANSFER_END = "net.transfer.end"

CLUSTER_PROVISIONED = "cluster.provisioned"
CLUSTER_RECONFIGURE = "cluster.reconfigure"
CLUSTER_WORKER_FAILED = "cluster.worker.failed"
CLUSTER_WORKER_JOINED = "cluster.worker.joined"
CLUSTER_WORKER_RETIRED = "cluster.worker.retired"

VM_PLACE = "vm.place"
VM_SHUTDOWN = "vm.shutdown"
VM_FAILED = "vm.failed"

MIGRATION_ROUND = "migration.round"
VIRTLM_CLUSTER_END = "virtlm.cluster.end"

JOB_SUBMIT = "job.submit"
JOB_MAPS_DONE = "job.maps.done"
JOB_DONE = "job.done"

TASK_MAP_DONE = "task.map.done"
TASK_REDUCE_DONE = "task.reduce.done"
TASK_MAP_SPECULATE = "task.map.speculate"
TASK_REDUCE_SPECULATE = "task.reduce.speculate"
TASK_MAP_RECOVER = "task.map.recover"
TASK_MAP_PREEMPTED = "task.map.preempted"

SCHEDULER_SUBMIT = "scheduler.submit"
SCHEDULER_PREEMPT = "scheduler.preempt"

DFS_FILE_WRITTEN = "dfs.file.written"
HDFS_REPAIR_LOST = "hdfs.repair.lost"
HDFS_REPAIR_DONE = "hdfs.repair.done"

CLOUD_REQUEST_DONE = "cloud.request.done"
CLOUD_ADMISSION = "cloud.admission.decision"
CLOUD_AUTOSCALE = "cloud.autoscale.action"
SERVICE_REQUEST_DONE = "cloud.service.request.done"

VM_RECOVERED = "vm.recovered"

CHAOS_PLAN_START = "chaos.plan.start"
CHAOS_PLAN_DONE = "chaos.plan.done"
CHAOS_VM_CRASH = "chaos.vm.crash"
CHAOS_HOST_CRASH = "chaos.host.crash"
CHAOS_NET_DEGRADE = "chaos.net.degrade"
CHAOS_NET_HEAL = "chaos.net.heal"
CHAOS_DISK_SLOW = "chaos.disk.slow"
CHAOS_DISK_HEAL = "chaos.disk.heal"
CHAOS_REJOIN = "chaos.rejoin"

OBSERVATORY_ALERT_FIRED = "observatory.alert.fired"
OBSERVATORY_ALERT_RESOLVED = "observatory.alert.resolved"

RECOVERY_TRACKER_DEAD = "recovery.tracker.dead"
RECOVERY_DATANODE_DEAD = "recovery.datanode.dead"
RECOVERY_TASK_RETRY = "recovery.task.retry"
RECOVERY_TRACKER_BLACKLISTED = "recovery.tracker.blacklisted"
RECOVERY_REPLICATION_START = "recovery.replication.start"
RECOVERY_REPLICATION_DONE = "recovery.replication.done"
RECOVERY_WORKER_REJOINED = "recovery.worker.rejoined"

POINT_KINDS: frozenset[str] = frozenset({
    NET_TRANSFER_START, NET_TRANSFER_END,
    CLUSTER_PROVISIONED, CLUSTER_RECONFIGURE, CLUSTER_WORKER_FAILED,
    CLUSTER_WORKER_JOINED, CLUSTER_WORKER_RETIRED,
    VM_PLACE, VM_SHUTDOWN, VM_FAILED, VM_RECOVERED,
    MIGRATION_ROUND, VIRTLM_CLUSTER_END,
    JOB_SUBMIT, JOB_MAPS_DONE, JOB_DONE,
    TASK_MAP_DONE, TASK_REDUCE_DONE,
    TASK_MAP_SPECULATE, TASK_REDUCE_SPECULATE,
    TASK_MAP_RECOVER, TASK_MAP_PREEMPTED,
    SCHEDULER_SUBMIT, SCHEDULER_PREEMPT,
    DFS_FILE_WRITTEN, HDFS_REPAIR_LOST, HDFS_REPAIR_DONE,
    CLOUD_REQUEST_DONE, CLOUD_ADMISSION, CLOUD_AUTOSCALE,
    SERVICE_REQUEST_DONE,
    CHAOS_PLAN_START, CHAOS_PLAN_DONE,
    CHAOS_VM_CRASH, CHAOS_HOST_CRASH,
    CHAOS_NET_DEGRADE, CHAOS_NET_HEAL,
    CHAOS_DISK_SLOW, CHAOS_DISK_HEAL, CHAOS_REJOIN,
    OBSERVATORY_ALERT_FIRED, OBSERVATORY_ALERT_RESOLVED,
    RECOVERY_TRACKER_DEAD, RECOVERY_DATANODE_DEAD,
    RECOVERY_TASK_RETRY, RECOVERY_TRACKER_BLACKLISTED,
    RECOVERY_REPLICATION_START, RECOVERY_REPLICATION_DONE,
    RECOVERY_WORKER_REJOINED,
})

#: Every event kind the tracer may legitimately carry.
REGISTERED_KINDS: frozenset[str] = POINT_KINDS | frozenset(
    f"{kind}.{edge}" for kind in SPAN_KINDS for edge in ("start", "end"))


# -- categories --------------------------------------------------------------
#: Span-kind → coarse category (exporter process grouping, critical path).
SPAN_CATEGORIES: dict[str, str] = {
    JOB_RUN: "job",
    PHASE_MAP: "phase",
    PHASE_REDUCE: "phase",
    TASK_MAP: "task",
    TASK_REDUCE: "task",
    SHUFFLE_FETCH: "shuffle",
    DFS_WRITE: "hdfs",
    VM_BOOT: "vm",
    MIGRATION: "migration",
}

_PREFIX_CATEGORIES: tuple[tuple[str, str], ...] = (
    ("job.", "job"),
    ("task.", "task"),
    ("shuffle.", "shuffle"),
    ("scheduler.", "scheduler"),
    ("vm.", "vm"),
    ("migration", "migration"),
    ("virtlm.", "migration"),
    ("dfs.", "hdfs"),
    ("hdfs.", "hdfs"),
    ("net.", "net"),
    ("cluster.", "cluster"),
    ("cloud.", "cloud"),
    ("chaos.", "chaos"),
    ("recovery.", "recovery"),
    ("observatory.", "observatory"),
)


def category_of(kind: str) -> str:
    """Coarse category of an event or span kind (``"other"`` if unknown)."""
    if kind in SPAN_CATEGORIES:
        return SPAN_CATEGORIES[kind]
    for prefix, category in _PREFIX_CATEGORIES:
        if kind.startswith(prefix):
            return category
    return "other"
