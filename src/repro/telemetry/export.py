"""Telemetry exporters: Chrome ``trace_event`` JSON, Prometheus text, CSV.

* :func:`chrome_trace` renders spans (complete ``"X"`` events) and point
  trace events (instant ``"i"`` events) into the Chrome trace-event format;
  the result opens directly in ``chrome://tracing`` or Perfetto.  Rows are
  grouped by span category (pid) and by source VM/tracker (tid).
* :func:`prometheus_text` renders a :class:`MetricsRegistry` in the
  Prometheus text exposition format.
* :func:`metrics_csv` / :func:`spans_csv` render flat CSV for spreadsheet
  analysis (the modern stand-in for the paper's nmon-analyser workbook).
"""

from __future__ import annotations

import csv
import io
import json
import zlib
from typing import Iterable, Optional, Sequence

from repro.sim.trace import Span, TraceEvent
from repro.telemetry import events as EV
from repro.telemetry.metrics import Histogram, MetricsRegistry

#: Stable pid per category so Perfetto's track order is deterministic.
_CATEGORY_PIDS = {
    "job": 1, "phase": 2, "task": 3, "shuffle": 4, "hdfs": 5,
    "vm": 6, "migration": 7, "scheduler": 8, "net": 9, "cluster": 10,
    "cloud": 11, "other": 12,
}


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def chrome_trace(spans: Sequence[Span],
                 events: Sequence[TraceEvent] = (),
                 skip_event_prefixes: Sequence[str] = ("net.transfer",)
                 ) -> dict:
    """Render spans + events as a Chrome trace-event JSON object.

    Timestamps are microseconds (simulated seconds × 1e6).  Span start/end
    events are omitted from the instant-event stream — the spans themselves
    carry that information as complete events.  High-volume event kinds
    (per-flow network transfers by default) are skipped too.
    """
    skip = tuple(skip_event_prefixes) + tuple(
        f"{kind}.{edge}" for kind in EV.SPAN_KINDS
        for edge in ("start", "end"))
    trace_events: list[dict] = []
    seen_tracks: set[tuple[int, str]] = set()
    seen_pids: set[int] = set()

    def track(category: str, tid_name: str) -> tuple[int, int]:
        pid = _CATEGORY_PIDS.get(category, _CATEGORY_PIDS["other"])
        key = (pid, tid_name)
        if key not in seen_tracks:
            seen_tracks.add(key)
            # One process_name row per pid (probing the seen_tracks *set*
            # for other members of this pid depended on hash order).
            if pid not in seen_pids:
                seen_pids.add(pid)
                trace_events.append({
                    "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                    "args": {"name": category}})
        # tids must be integers; hash the row label into a small id that is
        # stable across processes (``hash(str)`` is salted per run, which
        # made every export assign fresh tids — the golden-file tests pin
        # the crc32 assignment).
        tid = zlib.crc32(tid_name.encode("utf-8")) % 1_000_000
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": tid_name}})
        return pid, tid

    emitted_threads: set[tuple[int, int]] = set()
    for span in spans:
        if span.open:
            continue
        category = EV.category_of(span.kind)
        row = str(span.attrs.get("tracker") or span.attrs.get("vm")
                  or span.attrs.get("host") or span.name)
        pid, tid = track(category, row)
        emitted_threads.add((pid, tid))
        args = {k: _json_safe(v) for k, v in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        trace_events.append({
            "name": f"{span.kind}:{span.name}",
            "cat": category,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": max(span.duration, 0.0) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    for event in events:
        if any(event.kind.startswith(prefix) for prefix in skip):
            continue
        category = EV.category_of(event.kind)
        pid, tid = track(category, str(event.source))
        trace_events.append({
            "name": event.kind,
            "cat": category,
            "ph": "i",
            "s": "t",
            "ts": event.time * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {k: _json_safe(v) for k, v in event.attrs.items()},
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Sequence[Span],
                       events: Sequence[TraceEvent] = ()) -> str:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans, events), fh)
    return path


# -- Prometheus text ---------------------------------------------------------

def _prom_name(name: str, suffix: str = "") -> str:
    return name.replace(".", "_").replace("-", "_") + suffix


def _prom_escape(value) -> str:
    """Escape a label value per the text exposition format: backslash,
    double quote and newline must be escaped inside the quoted value."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labelset, extra: Optional[dict] = None) -> str:
    pairs = list(labelset) + sorted((extra or {}).items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (families sorted by name)."""
    lines: list[str] = []
    for name in sorted(registry.families):
        family = registry.families[name]
        metric = _prom_name(name)
        if family.help:
            help_text = (family.help.replace("\\", "\\\\")
                         .replace("\n", "\\n"))
            lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {family.kind}")
        for labelset, child in family.items():
            if isinstance(child, Histogram):
                acc = 0
                for bound, n in zip(child.buckets, child.bucket_counts):
                    acc += n
                    lines.append(
                        f"{metric}_bucket"
                        f"{_prom_labels(labelset, {'le': repr(bound)})}"
                        f" {acc}")
                lines.append(
                    f"{metric}_bucket{_prom_labels(labelset, {'le': '+Inf'})}"
                    f" {child.count}")
                lines.append(
                    f"{metric}_sum{_prom_labels(labelset)} {child.total}")
                lines.append(
                    f"{metric}_count{_prom_labels(labelset)} {child.count}")
            else:
                lines.append(
                    f"{metric}{_prom_labels(labelset)} {child.value}")
    return "\n".join(lines) + "\n"


# -- CSV ---------------------------------------------------------------------

def metrics_csv(registry: MetricsRegistry) -> str:
    """Flat CSV: metric,type,labels,value/count/sum/min/max/mean."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["metric", "type", "labels", "value", "count", "sum",
                     "min", "max", "mean"])
    for name in sorted(registry.families):
        family = registry.families[name]
        for labelset, child in family.items():
            labels = ";".join(f"{k}={v}" for k, v in labelset)
            if isinstance(child, Histogram):
                low = child.min if child.count else ""
                high = child.max if child.count else ""
                writer.writerow([name, family.kind, labels, "",
                                 child.count, child.total, low, high,
                                 child.mean])
            else:
                writer.writerow([name, family.kind, labels, child.value,
                                 "", "", "", "", ""])
    return out.getvalue()


def timeseries_csv(store) -> str:
    """Flat CSV of a :class:`~repro.telemetry.timeseries.TimeSeriesStore`.

    One row per live bucket per tier per series, in (name, labels, tier,
    bucket-start) order — fully deterministic.
    """
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["series", "labels", "tier", "bucket_start", "width",
                     "count", "sum", "min", "max", "last", "last_at"])
    for (name, labelset), series in store.items():
        labels = ";".join(f"{k}={v}" for k, v in labelset)
        for ti, tier in enumerate(series.tiers):
            for bucket in tier.buckets():
                start = bucket.index * tier.width
                writer.writerow([
                    name, labels, ti, f"{start:.6f}", f"{tier.width:.6f}",
                    bucket.count, f"{bucket.total:.9g}",
                    f"{bucket.min:.9g}", f"{bucket.max:.9g}",
                    f"{bucket.last:.9g}", f"{bucket.last_at:.6f}"])
    return out.getvalue()


def timeseries_json(store) -> dict:
    """JSON-able dict of every series' raw-tier buckets plus digests.

    Intended for dashboards and the campaign control room: the raw tier
    carries the plot-ready points; coarser tiers are recoverable from it
    and are omitted to keep payloads small.
    """
    series_out = []
    for (name, labelset), series in store.items():
        points = []
        for start, bucket in ((b.index * series.tiers[0].width, b)
                              for b in series.tiers[0].buckets()):
            points.append({"t": round(start, 6), "count": bucket.count,
                           "sum": bucket.total, "min": bucket.min,
                           "max": bucket.max, "last": bucket.last})
        series_out.append({
            "name": name,
            "labels": {k: v for k, v in labelset},
            "step": series.step,
            "digest": series.digest(),
            "points": points,
        })
    hist_out = []
    for (name, labelset), series in store.histogram_items():
        buckets = []
        width = series.step
        for index, hist in series._buckets(0):
            buckets.append({"t": round(index * width, 6), "n": hist.n,
                            "mean": hist.mean, "p50": hist.p50,
                            "p99": hist.p99, "max": hist.max_seen})
        hist_out.append({
            "name": name,
            "labels": {k: v for k, v in labelset},
            "step": series.step,
            "digest": series.digest(),
            "buckets": buckets,
        })
    return {"step": store.step, "capacity": store.capacity,
            "digest": store.digest(), "series": series_out,
            "histograms": hist_out}


def timeseries_prometheus(store, at: Optional[float] = None) -> str:
    """Latest store values in the Prometheus text exposition format.

    Each scalar series renders as a gauge carrying the newest raw-tier
    bucket's aggregates (``*_last`` value plus ``_min``/``_max``/
    ``_sum``/``_count`` of that bucket); histogram series render their
    newest bucket's count/sum/p99.  A scrape of sim-history, shaped the
    way a real Prometheus sidecar would expose it.
    """
    lines: list[str] = []
    for (name, labelset), series in store.items():
        newest = series.latest(1)
        if not newest:
            continue
        bucket = newest[0]
        if at is not None and bucket.last_at > at:
            continue
        metric = _prom_name(name)
        labels = _prom_labels(labelset)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{labels} {bucket.last}")
        lines.append(f"{metric}_min{labels} {bucket.min}")
        lines.append(f"{metric}_max{labels} {bucket.max}")
        lines.append(f"{metric}_sum{labels} {bucket.total}")
        lines.append(f"{metric}_count{labels} {bucket.count}")
    for (name, labelset), series in store.histogram_items():
        buckets = series._buckets(0)
        if not buckets:
            continue
        _, hist = buckets[-1]
        metric = _prom_name(name)
        labels = _prom_labels(labelset)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count{labels} {hist.n}")
        lines.append(f"{metric}_sum{labels} {hist.total}")
        lines.append(
            f"{metric}{_prom_labels(labelset, {'quantile': '0.5'})}"
            f" {hist.p50}")
        lines.append(
            f"{metric}{_prom_labels(labelset, {'quantile': '0.99'})}"
            f" {hist.p99}")
    return "\n".join(lines) + "\n" if lines else ""


def spans_csv(spans: Iterable[Span]) -> str:
    """Flat CSV of finished spans (one row per span)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["span_id", "parent_id", "kind", "category", "name",
                     "start", "end", "duration"])
    for span in spans:
        if span.open:
            continue
        writer.writerow([span.span_id,
                         span.parent_id if span.parent_id else "",
                         span.kind, EV.category_of(span.kind), span.name,
                         f"{span.start:.6f}", f"{span.end:.6f}",
                         f"{span.duration:.6f}"])
    return out.getvalue()
