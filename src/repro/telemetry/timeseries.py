"""Bounded time-series store behind the metrics registry.

The registry (:mod:`repro.telemetry.metrics`) answers "what is the value
*now*"; this module answers "how did it evolve".  A
:class:`TimeSeriesStore` holds one :class:`TimeSeries` per
``(name, labels)`` pair, each a fixed set of **ring buffers over
sim-time buckets**:

* the **raw tier** buckets samples at ``step`` seconds;
* the **×10** and **×100 tiers** bucket the same samples at
  ``10*step`` and ``100*step`` — every sample updates every tier, so a
  coarse bucket is exactly the merge of its fine buckets without any
  eviction-time compaction;
* every bucket keeps the five *mergeable* aggregates
  ``min / max / sum / count / last`` (plus the exact time of the last
  sample, which is what makes :meth:`TimeSeries.rate` bit-exact).

Memory is bounded by construction: ``capacity`` buckets per tier per
series, old buckets overwritten as sim-time advances.  Retention grows
with coarseness — at the default ``step=5 s, capacity=360`` the raw tier
remembers 30 sim-minutes, the ×100 tier 50 sim-hours.

Everything is deterministic: samples only arrive from the
single-threaded simulation, floats are fixed-formatted into
:meth:`digest`, and two same-seed runs must produce byte-identical
series digests (asserted by tests and the CI ``controlroom-smoke``
job).

Histogram-valued series (:class:`HistogramSeries`) hold one mergeable
:class:`~repro.cloud.tenants.LatencyHistogram` per bucket, giving
``quantile_over_time`` with bounded relative error at bounded memory.

Exporters live in :mod:`repro.telemetry.export`
(:func:`~repro.telemetry.export.timeseries_prometheus` /
``timeseries_csv`` / ``timeseries_json``); the
:class:`~repro.telemetry.facade.Telemetry` facade wires a store to each
cluster as ``telemetry.timeseries``.
"""

from __future__ import annotations

import hashlib
import math
from typing import TYPE_CHECKING, Iterator, Mapping, Optional

from repro.errors import ConfigError
from repro.telemetry.metrics import Counter, Gauge, LabelSet, _labelset

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.tenants import LatencyHistogram
    from repro.telemetry.metrics import MetricsRegistry

#: Tier multipliers: raw, 10x, 100x downsampling.
TIER_MULTIPLIERS = (1, 10, 100)


def _fmt(value: float) -> str:
    """Fixed float formatting for digests (repr is stable but verbose)."""
    return f"{value:.9g}"


class Bucket:
    """Mergeable aggregates of the samples that fell into one interval."""

    __slots__ = ("index", "count", "total", "min", "max", "last", "last_at")

    def __init__(self, index: int):
        self.index = index
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = 0.0
        self.last_at = 0.0

    def observe(self, at: float, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value
        self.last_at = at

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def line(self, start: float) -> str:
        """Digest row with fixed float formatting."""
        return (f"{_fmt(start)}|{self.count}|{_fmt(self.total)}|"
                f"{_fmt(self.min)}|{_fmt(self.max)}|{_fmt(self.last)}|"
                f"{_fmt(self.last_at)}")


class _Tier:
    """One resolution: a ring of ``capacity`` buckets of width ``width``."""

    __slots__ = ("width", "capacity", "slots")

    def __init__(self, width: float, capacity: int):
        self.width = width
        self.capacity = capacity
        self.slots: list[Optional[Bucket]] = [None] * capacity

    def bucket_for(self, at: float) -> Bucket:
        index = int(at // self.width)
        slot = index % self.capacity
        bucket = self.slots[slot]
        if bucket is None or bucket.index != index:
            bucket = Bucket(index)
            self.slots[slot] = bucket
        return bucket

    def buckets(self) -> list[Bucket]:
        """Live buckets in time order (ring walked by bucket index)."""
        live = [b for b in self.slots if b is not None]
        live.sort(key=lambda b: b.index)
        return live

    def retention_s(self) -> float:
        return self.width * self.capacity


class TimeSeries:
    """One named series: the same samples at three resolutions."""

    __slots__ = ("name", "labels", "step", "tiers")

    def __init__(self, name: str, labels: LabelSet = (),
                 step: float = 5.0, capacity: int = 360):
        if step <= 0:
            raise ConfigError(f"step must be > 0, got {step}")
        if capacity < 2:
            raise ConfigError(f"capacity must be >= 2, got {capacity}")
        self.name = name
        self.labels = labels
        self.step = float(step)
        self.tiers = tuple(_Tier(self.step * mult, capacity)
                           for mult in TIER_MULTIPLIERS)

    # -- write -----------------------------------------------------------
    def observe(self, at: float, value: float) -> None:
        """Record one sample at sim-time ``at`` into every tier."""
        value = float(value)
        for tier in self.tiers:
            tier.bucket_for(at).observe(at, value)

    # -- read ------------------------------------------------------------
    def _pick_tier(self, t0: float, now: float) -> int:
        """Finest tier whose retention still covers ``t0``."""
        for i, tier in enumerate(self.tiers):
            if now - t0 <= tier.retention_s():
                return i
        return len(self.tiers) - 1

    def range(self, t0: float, t1: float,
              tier: Optional[int] = None) -> list[tuple[float, Bucket]]:
        """Buckets whose interval intersects ``[t0, t1)`` in time order.

        ``tier=None`` auto-selects the finest tier that still retains
        ``t0`` (judged against the newest sample seen).
        """
        if tier is None:
            newest = self.latest(1)
            now = newest[0].last_at if newest else t1
            tier = self._pick_tier(t0, now)
        chosen = self.tiers[tier]
        out = []
        for bucket in chosen.buckets():
            start = bucket.index * chosen.width
            if start + chosen.width <= t0 or start >= t1:
                continue
            out.append((start, bucket))
        return out

    def latest(self, n: int = 1, tier: int = 0) -> list[Bucket]:
        """The ``n`` most recent live buckets of a tier, oldest first."""
        return self.tiers[tier].buckets()[-n:]

    def mean_over(self, t0: float, t1: float,
                  tier: Optional[int] = None) -> float:
        """Sample-weighted mean over the range (0.0 when empty)."""
        total = 0.0
        count = 0
        for _, bucket in self.range(t0, t1, tier):
            total += bucket.total
            count += bucket.count
        return total / count if count else 0.0

    def rate(self, t0: float, t1: float,
             tier: Optional[int] = None) -> float:
        """Per-second rate of a cumulative (counter-style) series.

        Uses the exact last-sample values and times of the first and
        last bucket in range — bit-identical to differencing the raw
        samples, which is what lets detectors drop their ad-hoc
        ``(t, value)`` state for a store series.
        """
        buckets = self.range(t0, t1, tier)
        if len(buckets) < 2:
            return 0.0
        first, last = buckets[0][1], buckets[-1][1]
        dt = last.last_at - first.last_at
        if dt <= 0:
            return 0.0
        return (last.last - first.last) / dt

    # -- determinism -----------------------------------------------------
    def digest(self) -> str:
        """Stable sha256 content digest over all tiers' live buckets."""
        h = hashlib.sha256()
        self._hash_into(h)
        return h.hexdigest()[:16]

    def _hash_into(self, h) -> None:
        labels = ",".join(f"{k}={v}" for k, v in self.labels)
        h.update(f"series|{self.name}|{labels}|{_fmt(self.step)}\n"
                 .encode("utf-8"))
        for ti, tier in enumerate(self.tiers):
            for bucket in tier.buckets():
                start = bucket.index * tier.width
                h.update(f"t{ti}|{bucket.line(start)}\n".encode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover
        live = sum(len(t.buckets()) for t in self.tiers)
        return (f"<TimeSeries {self.name} labels={dict(self.labels)} "
                f"step={self.step} buckets={live}>")


class HistogramSeries:
    """Latency-histogram-valued series: one mergeable histogram per bucket.

    Buckets hold :class:`~repro.cloud.tenants.LatencyHistogram` deltas
    (what was observed *during* that interval), so
    :meth:`quantile_over_time` is an exact merge of the covered
    intervals.  Only the raw and ×10 tiers are kept — a histogram bucket
    is ~256 ints, two tiers bound memory at the same order as a scalar
    series' three.
    """

    __slots__ = ("name", "labels", "step", "capacity", "_tiers")

    TIERS = (1, 10)

    def __init__(self, name: str, labels: LabelSet = (),
                 step: float = 5.0, capacity: int = 360):
        if step <= 0:
            raise ConfigError(f"step must be > 0, got {step}")
        self.name = name
        self.labels = labels
        self.step = float(step)
        self.capacity = capacity
        #: tier -> {slot: (index, LatencyHistogram)}
        self._tiers: list[dict[int, tuple[int, "LatencyHistogram"]]] = [
            {} for _ in self.TIERS]

    def _fresh_hist(self) -> "LatencyHistogram":
        from repro.cloud.tenants import LatencyHistogram
        return LatencyHistogram()

    def observe(self, at: float, hist: "LatencyHistogram") -> None:
        """Merge one interval's histogram delta into every tier."""
        if hist.n == 0:
            return
        for ti, mult in enumerate(self.TIERS):
            width = self.step * mult
            index = int(at // width)
            slot = index % self.capacity
            held = self._tiers[ti].get(slot)
            if held is None or held[0] != index:
                held = (index, self._fresh_hist())
                self._tiers[ti][slot] = held
            held[1].merge(hist)

    def _buckets(self, tier: int) -> list[tuple[int, "LatencyHistogram"]]:
        return sorted(self._tiers[tier].values(), key=lambda iv: iv[0])

    def merged_over(self, t0: float, t1: float,
                    tier: int = 0) -> "LatencyHistogram":
        """One histogram covering every bucket intersecting ``[t0, t1)``."""
        width = self.step * self.TIERS[tier]
        merged = self._fresh_hist()
        for index, hist in self._buckets(tier):
            start = index * width
            if start + width <= t0 or start >= t1:
                continue
            merged.merge(hist)
        return merged

    def quantile_over_time(self, q: float, t0: float, t1: float,
                           tier: int = 0) -> float:
        """q-quantile of everything observed in ``[t0, t1)``."""
        return self.merged_over(t0, t1, tier).quantile(q)

    def digest(self) -> str:
        h = hashlib.sha256()
        self._hash_into(h)
        return h.hexdigest()[:16]

    def _hash_into(self, h) -> None:
        labels = ",".join(f"{k}={v}" for k, v in self.labels)
        h.update(f"hseries|{self.name}|{labels}|{_fmt(self.step)}\n"
                 .encode("utf-8"))
        for ti in range(len(self.TIERS)):
            for index, hist in self._buckets(ti):
                counts = ",".join(str(c) for c in hist.counts if c) or "0"
                h.update((f"t{ti}|{index}|{hist.n}|{_fmt(hist.total)}|"
                          f"{_fmt(hist.max_seen)}|{counts}\n")
                         .encode("utf-8"))


class TimeSeriesStore:
    """All time series of one scope, plus the optional registry sampler.

    Construction is cheap and passive.  With ``sim`` and ``registry``
    wired (the facade does both), :meth:`start` launches a periodic sim
    process that snapshots every counter and gauge in the registry into
    same-named series — the historical view of the live metrics.  Like
    the nmon monitor and the observatory ticker, the sampler's parked
    timeout is withdrawn on :meth:`stop` so it never keeps the
    simulation alive.
    """

    def __init__(self, sim=None, registry: Optional["MetricsRegistry"] = None,
                 step: float = 5.0, capacity: int = 360):
        if step <= 0:
            raise ConfigError(f"step must be > 0, got {step}")
        if capacity < 2:
            raise ConfigError(f"capacity must be >= 2, got {capacity}")
        self.sim = sim
        self.registry = registry
        self.step = float(step)
        self.capacity = capacity
        self._series: dict[tuple[str, LabelSet], TimeSeries] = {}
        self._hist_series: dict[tuple[str, LabelSet], HistogramSeries] = {}
        self.samples_taken = 0
        self._running = False
        self._proc = None
        self._pending = None

    # -- series access ---------------------------------------------------
    def series(self, name: str,
               labels: Optional[Mapping[str, str]] = None) -> TimeSeries:
        key = (name, _labelset(labels))
        made = self._series.get(key)
        if made is None:
            made = TimeSeries(name, key[1], step=self.step,
                              capacity=self.capacity)
            self._series[key] = made
        return made

    def histogram_series(self, name: str,
                         labels: Optional[Mapping[str, str]] = None
                         ) -> HistogramSeries:
        key = (name, _labelset(labels))
        made = self._hist_series.get(key)
        if made is None:
            made = HistogramSeries(name, key[1], step=self.step,
                                   capacity=self.capacity)
            self._hist_series[key] = made
        return made

    def get(self, name: str, labels: Optional[Mapping[str, str]] = None
            ) -> Optional[TimeSeries]:
        return self._series.get((name, _labelset(labels)))

    def items(self) -> Iterator[tuple[tuple[str, LabelSet], TimeSeries]]:
        return iter(sorted(self._series.items()))

    def histogram_items(self) -> Iterator[
            tuple[tuple[str, LabelSet], HistogramSeries]]:
        return iter(sorted(self._hist_series.items()))

    def __len__(self) -> int:
        return len(self._series) + len(self._hist_series)

    # -- write -----------------------------------------------------------
    def record(self, name: str, value: float,
               labels: Optional[Mapping[str, str]] = None,
               at: Optional[float] = None) -> None:
        """Record one scalar sample (``at`` defaults to sim now)."""
        if at is None:
            at = self.sim.now if self.sim is not None else 0.0
        self.series(name, labels).observe(at, value)

    def record_histogram(self, name: str, hist: "LatencyHistogram",
                         labels: Optional[Mapping[str, str]] = None,
                         at: Optional[float] = None) -> None:
        """Merge one interval's latency-histogram delta into a series."""
        if at is None:
            at = self.sim.now if self.sim is not None else 0.0
        self.histogram_series(name, labels).observe(at, hist)

    # -- query conveniences ----------------------------------------------
    def mean_over(self, name: str, t0: float, t1: float,
                  labels: Optional[Mapping[str, str]] = None) -> float:
        made = self.get(name, labels)
        return made.mean_over(t0, t1) if made is not None else 0.0

    def rate(self, name: str, t0: float, t1: float,
             labels: Optional[Mapping[str, str]] = None) -> float:
        made = self.get(name, labels)
        return made.rate(t0, t1) if made is not None else 0.0

    def quantile_over_time(self, name: str, q: float, t0: float, t1: float,
                           labels: Optional[Mapping[str, str]] = None
                           ) -> float:
        made = self._hist_series.get((name, _labelset(labels)))
        return made.quantile_over_time(q, t0, t1) if made is not None \
            else 0.0

    # -- registry sampling -----------------------------------------------
    def sample_registry(self, at: Optional[float] = None) -> int:
        """Snapshot every counter/gauge child into a same-named series.

        Returns the number of samples recorded.  Metric histograms are
        skipped — their bucket layout differs from the latency
        histograms this store can merge; record those explicitly via
        :meth:`record_histogram`.
        """
        if self.registry is None:
            raise ConfigError("store has no metrics registry to sample")
        if at is None:
            at = self.sim.now if self.sim is not None else 0.0
        n = 0
        for name in sorted(self.registry.families):
            family = self.registry.families[name]
            if family.kind == "histogram":
                continue
            for labelset, child in family.items():
                assert isinstance(child, (Counter, Gauge))
                key = (name, labelset)
                made = self._series.get(key)
                if made is None:
                    made = TimeSeries(name, labelset, step=self.step,
                                      capacity=self.capacity)
                    self._series[key] = made
                made.observe(at, child.value)
                n += 1
        self.samples_taken += n
        return n

    # -- the sampler process ---------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "TimeSeriesStore":
        """Begin periodic registry sampling (idempotent); returns self."""
        if self._running:
            return self
        if self.sim is None:
            raise ConfigError("store has no simulator to tick on")
        if self.registry is None:
            raise ConfigError("store has no metrics registry to sample")
        self._running = True
        self._proc = self.sim.process(self._ticker(), name="timeseries")
        return self

    def stop(self) -> None:
        """Stop sampling and withdraw the parked wakeup (idempotent)."""
        if not self._running:
            return
        self._running = False
        if self._pending is not None and not self._pending.processed:
            self._pending.cancel()
        self._pending = None
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("timeseries sampler stopped")
        self._proc = None

    def _ticker(self):
        from repro.sim.kernel import Interrupt
        while self._running:
            self.sample_registry(self.sim.now)
            self._pending = self.sim.timeout(self.step)
            try:
                yield self._pending
            except Interrupt:
                return None
            finally:
                self._pending = None
        return None

    # -- determinism -----------------------------------------------------
    def digest(self) -> str:
        """Stable sha256 digest over every series' every live bucket."""
        h = hashlib.sha256()
        for _, made in self.items():
            made._hash_into(h)
        for _, made in self.histogram_items():
            made._hash_into(h)
        return h.hexdigest()[:16]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<TimeSeriesStore series={len(self._series)} "
                f"hist={len(self._hist_series)} step={self.step} "
                f"{'running' if self._running else 'idle'}>")
