"""Unified telemetry: metrics, spans, timelines, exporters, one facade.

Layout:

* :mod:`repro.telemetry.events` — the registered event/span taxonomy;
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms + registry;
* :mod:`repro.telemetry.timeline` — per-job timelines and critical paths;
* :mod:`repro.telemetry.export` — Chrome trace / Prometheus text / CSV;
* :mod:`repro.telemetry.facade` — the :class:`Telemetry` handle, reachable
  as ``cluster.telemetry`` / ``platform.telemetry``.

Only :mod:`~repro.telemetry.events` is imported eagerly — it is a leaf with
no :mod:`repro` imports, so even the lowest layers (``repro.net``,
``repro.sim``) can use the constants without import cycles.  Everything
else resolves lazily via module ``__getattr__`` (PEP 562).
"""

from __future__ import annotations

from repro.telemetry import events  # noqa: F401  (leaf module, re-exported)

_LAZY = {
    "Telemetry": ("repro.telemetry.facade", "Telemetry"),
    "MetricsRegistry": ("repro.telemetry.metrics", "MetricsRegistry"),
    "MetricFamily": ("repro.telemetry.metrics", "MetricFamily"),
    "Counter": ("repro.telemetry.metrics", "Counter"),
    "Gauge": ("repro.telemetry.metrics", "Gauge"),
    "Histogram": ("repro.telemetry.metrics", "Histogram"),
    "JobTimeline": ("repro.telemetry.timeline", "JobTimeline"),
    "CriticalPath": ("repro.telemetry.timeline", "CriticalPath"),
    "PathSegment": ("repro.telemetry.timeline", "PathSegment"),
    "build_timeline": ("repro.telemetry.timeline", "build_timeline"),
    "critical_path": ("repro.telemetry.timeline", "critical_path"),
    "chrome_trace": ("repro.telemetry.export", "chrome_trace"),
    "write_chrome_trace": ("repro.telemetry.export", "write_chrome_trace"),
    "prometheus_text": ("repro.telemetry.export", "prometheus_text"),
    "metrics_csv": ("repro.telemetry.export", "metrics_csv"),
    "spans_csv": ("repro.telemetry.export", "spans_csv"),
    "timeseries_csv": ("repro.telemetry.export", "timeseries_csv"),
    "timeseries_json": ("repro.telemetry.export", "timeseries_json"),
    "timeseries_prometheus": ("repro.telemetry.export",
                              "timeseries_prometheus"),
    "TimeSeries": ("repro.telemetry.timeseries", "TimeSeries"),
    "TimeSeriesStore": ("repro.telemetry.timeseries", "TimeSeriesStore"),
    "HistogramSeries": ("repro.telemetry.timeseries", "HistogramSeries"),
    "Bucket": ("repro.telemetry.timeseries", "Bucket"),
}

__all__ = ["events"] + sorted(_LAZY)


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
