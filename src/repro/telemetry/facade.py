"""The :class:`Telemetry` facade — one handle per cluster (or datacenter).

Everything observable about a running platform hangs off this object:

* ``telemetry.tracer`` — the shared event/span log;
* ``telemetry.metrics`` — the labelled :class:`MetricsRegistry`;
* ``telemetry.monitor`` / ``telemetry.analyser`` — the nmon sampling loop
  and its aggregates (created lazily, owned by the facade);
* ``telemetry.bottleneck()`` — the paper's platform diagnosis, folding in
  the shared fair-share resources (host NICs, netback, NFS);
* ``telemetry.job_timeline()`` / ``critical_path()`` — span analysis;
* ``telemetry.export_chrome_trace()`` / ``prometheus_text()`` / CSV.

Constructing :class:`~repro.monitor.nmon.NmonMonitor` directly, or walking
``cluster.datacenter`` to reach resources the analyser needs, is deprecated
in favour of this facade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import MonitorError
from repro.sim.trace import Span, TraceEvent, Tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeline import CriticalPath, JobTimeline, build_timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitor.analyser import NmonAnalyser
    from repro.monitor.nmon import NmonMonitor
    from repro.monitor.window import RollingWindow
    from repro.observatory.attribution import FlowLog, JobBottleneckReport
    from repro.observatory.core import Observatory
    from repro.telemetry.timeseries import TimeSeriesStore
    from repro.virt.datacenter import Datacenter
    from repro.virt.vm import VirtualMachine


class Telemetry:
    """Unified observability handle for one scope (cluster or datacenter)."""

    def __init__(self, sim, tracer: Tracer,
                 metrics: Optional[MetricsRegistry] = None,
                 vms: Optional[Sequence["VirtualMachine"]] = None,
                 datacenter: Optional["Datacenter"] = None,
                 monitor_interval: float = 5.0):
        self.sim = sim
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.datacenter = datacenter
        self.monitor_interval = monitor_interval
        self._vms = list(vms) if vms is not None else None
        self._monitor: Optional["NmonMonitor"] = None
        #: vm name -> cached metric instruments for the nmon sample mirror
        #: (the per-sample family/label-set resolution dominated monitor
        #: overhead at 64 VMs).
        self._sample_instruments: dict[str, list] = {}
        self._analyser: Optional["NmonAnalyser"] = None
        self._windows: dict[float, "RollingWindow"] = {}
        self._flow_log: Optional["FlowLog"] = None
        self._timeseries: Optional["TimeSeriesStore"] = None

    # -- scope -----------------------------------------------------------
    @property
    def vms(self) -> list["VirtualMachine"]:
        if self._vms is not None:
            return self._vms
        if self.datacenter is not None:
            return list(self.datacenter.vms.values())
        return []

    def add_vm(self, vm: "VirtualMachine") -> None:
        """Grow the scope to a VM joined after construction (elastic
        scale-out).  If the nmon monitor already exists, the VM starts
        being sampled from the next interval."""
        if self._vms is not None and vm not in self._vms:
            self._vms.append(vm)
        if self._monitor is not None and vm not in self._monitor.vms:
            from repro.monitor.nmon import NodeSeries
            self._monitor.vms.append(vm)
            self._monitor.series.setdefault(vm.name, NodeSeries(vm.name))

    # -- nmon monitor ------------------------------------------------------
    @property
    def monitor(self) -> "NmonMonitor":
        """The facade's nmon monitor (created on first access)."""
        if self._monitor is None:
            from repro.monitor.nmon import NmonMonitor
            vms = self.vms
            if not vms:
                raise MonitorError(
                    "telemetry scope has no VMs to monitor yet")
            self._monitor = NmonMonitor(vms, interval=self.monitor_interval,
                                        _owner=self)
            self._monitor.on_sample = self._record_sample
        return self._monitor

    @property
    def analyser(self) -> "NmonAnalyser":
        if self._analyser is None:
            from repro.monitor.analyser import NmonAnalyser
            self._analyser = NmonAnalyser(self.monitor)
        return self._analyser

    def adopt_analyser(self, analyser: "NmonAnalyser") -> None:
        """Adopt an externally-built analyser (legacy migration path): the
        facade takes over its monitor and mirrors future samples into the
        metrics registry."""
        self._analyser = analyser
        self._monitor = analyser.monitor
        if self._monitor.on_sample is None:
            self._monitor.on_sample = self._record_sample

    def start_monitor(self, interval: Optional[float] = None
                      ) -> "NmonMonitor":
        """Begin nmon sampling on this scope's VMs; returns the monitor."""
        if interval is not None and self._monitor is None:
            self.monitor_interval = interval
        monitor = self.monitor
        if interval is not None:
            monitor.interval = float(interval)
        monitor.start()
        return monitor

    def stop_monitor(self) -> None:
        if self._monitor is not None:
            self._monitor.stop()

    def _record_sample(self, sample) -> None:
        """Mirror each nmon sample into the metrics registry."""
        inst = self._sample_instruments.get(sample.vm)
        if inst is None:
            labels = {"vm": sample.vm}
            # The I/O counter slots stay None until first use so an idle
            # VM exports no zero-valued counter series (same visible
            # behaviour as resolving them per sample).
            inst = [labels,
                    self.metrics.gauge("vm.cpu.utilization",
                                       "VCPU load fraction", labels),
                    self.metrics.gauge("vm.memory.fraction",
                                       "resident memory fraction", labels),
                    self.metrics.gauge("vm.tasks.running",
                                       "running tasks", labels),
                    None, None]
            self._sample_instruments[sample.vm] = inst
        inst[1].set(sample.cpu_util)
        inst[2].set(sample.memory_fraction)
        inst[3].set(sample.activity)
        if sample.disk_bytes_delta > 0:
            if inst[4] is None:
                inst[4] = self.metrics.counter(
                    "vm.disk.bytes", "virtual-disk I/O", inst[0])
            inst[4].inc(sample.disk_bytes_delta)
        net = sample.net_tx_delta + sample.net_rx_delta
        if net > 0:
            if inst[5] is None:
                inst[5] = self.metrics.counter(
                    "vm.net.bytes", "VM network I/O", inst[0])
            inst[5].inc(net)

    def rolling_window(self, seconds: float = 30.0) -> "RollingWindow":
        """A bounded, incrementally maintained view of recent nmon samples.

        One window per distinct span is kept and reused — repeated calls
        with the same ``seconds`` return the same object, so detectors
        polling every tick share a single O(1)-per-sample accumulator
        instead of each re-aggregating the monitor's full history.
        """
        key = float(seconds)
        window = self._windows.get(key)
        if window is None:
            from repro.monitor.window import RollingWindow
            window = RollingWindow(self.monitor, key)
            self._windows[key] = window
        return window

    # -- time-series store -------------------------------------------------
    @property
    def timeseries(self) -> "TimeSeriesStore":
        """The scope's historical metrics store (created on first access).

        Passive until :meth:`start_timeseries` begins the periodic
        registry sampler; subsystems may also :meth:`record
        <repro.telemetry.timeseries.TimeSeriesStore.record>` into it
        directly.
        """
        if self._timeseries is None:
            from repro.telemetry.timeseries import TimeSeriesStore
            self._timeseries = TimeSeriesStore(
                self.sim, registry=self.metrics,
                step=self.monitor_interval)
        return self._timeseries

    def start_timeseries(self, step: Optional[float] = None
                         ) -> "TimeSeriesStore":
        """Begin periodic counter/gauge snapshots; returns the store."""
        store = self.timeseries
        if step is not None and not store.running:
            store.step = float(step)
        return store.start()

    def stop_timeseries(self) -> None:
        if self._timeseries is not None:
            self._timeseries.stop()

    # -- flow accounting ---------------------------------------------------
    def enable_flow_log(self) -> "FlowLog":
        """Start recording completed fair-share flows (idempotent).

        The log feeds per-job bottleneck attribution; it only sees flows
        that *finish* after this call.  Enable it before running the job
        you want attributed — ``telemetry.observatory()`` does this for
        you.
        """
        if self._flow_log is None:
            from repro.observatory.attribution import FlowLog
            self._flow_log = FlowLog()
            if self.datacenter is not None:
                self.datacenter.fss.flow_log = self._flow_log
        return self._flow_log

    @property
    def flow_log(self) -> Optional["FlowLog"]:
        return self._flow_log

    # -- platform diagnosis ------------------------------------------------
    def shared_resources(self) -> list:
        """The fair-share resources every cluster contends on (host CPUs,
        NICs, netback/bridge, the NFS server vnic)."""
        if self.datacenter is None:
            return []
        resources = []
        for machine in self.datacenter.machines:
            resources.extend([machine.cpu, machine.net.nic,
                              machine.net.netback, machine.net.bridge])
        resources.append(self.datacenter.image_store.node.vnic)
        return resources

    def bottleneck(self, job: Optional[str] = None):
        """Bottleneck diagnosis.

        Without arguments this is the paper's cluster-wide view: a
        :class:`~repro.monitor.analyser.BottleneckReport` naming the
        busiest shared resource over the whole run.  With ``job=<name>``
        it narrows to *that job's* critical path instead, blaming each
        path segment on cpu / network / disk / nfs via flow-level
        accounting — a :class:`JobBottleneckReport` (requires the flow log,
        see :meth:`enable_flow_log` / :meth:`observatory`).
        """
        if job is None:
            return self.analyser.bottleneck(self.shared_resources(),
                                            now=self.sim.now)
        return self.attribution(job)

    def attribution(self, job_name: str) -> "JobBottleneckReport":
        """Per-job, per-phase bottleneck attribution from the flow log."""
        if self._flow_log is None:
            raise MonitorError(
                "flow accounting is off — call telemetry.enable_flow_log() "
                "(or telemetry.observatory()) before running the job")
        from repro.observatory.attribution import attribute
        return attribute(self.job_timeline(job_name), self._flow_log)

    # -- observatory -------------------------------------------------------
    def observatory(self, **kwargs) -> "Observatory":
        """Build an :class:`~repro.observatory.core.Observatory` on this
        scope (enables the flow log as a side effect).  The caller owns
        start/stop; see :mod:`repro.observatory`."""
        from repro.observatory.core import Observatory
        self.enable_flow_log()
        return Observatory(self, **kwargs)

    def imbalance(self) -> float:
        return self.analyser.imbalance()

    # -- spans & timelines --------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        return self.tracer.spans

    @property
    def events(self) -> list[TraceEvent]:
        return self.tracer.events

    def job_timeline(self, job_name: str) -> JobTimeline:
        """Reconstruct one job's span tree (latest run under that name)."""
        return build_timeline(job_name, self.tracer.spans)

    def critical_path(self, job_name: str) -> CriticalPath:
        """Critical path of one job's latest run."""
        return self.job_timeline(job_name).critical_path()

    # -- exports ------------------------------------------------------------
    def chrome_trace(self, include_events: bool = True) -> dict:
        from repro.telemetry.export import chrome_trace
        return chrome_trace(self.tracer.spans,
                            self.tracer.events if include_events else ())

    def export_chrome_trace(self, path: str,
                            include_events: bool = True) -> str:
        """Write a ``chrome://tracing`` / Perfetto JSON file."""
        from repro.telemetry.export import write_chrome_trace
        return write_chrome_trace(
            path, self.tracer.spans,
            self.tracer.events if include_events else ())

    def prometheus_text(self) -> str:
        from repro.telemetry.export import prometheus_text
        return prometheus_text(self.metrics)

    def metrics_csv(self) -> str:
        from repro.telemetry.export import metrics_csv
        return metrics_csv(self.metrics)

    def spans_csv(self) -> str:
        from repro.telemetry.export import spans_csv
        return spans_csv(self.tracer.spans)

    def timeseries_csv(self) -> str:
        from repro.telemetry.export import timeseries_csv
        return timeseries_csv(self.timeseries)

    def timeseries_json(self) -> dict:
        from repro.telemetry.export import timeseries_json
        return timeseries_json(self.timeseries)

    def timeseries_prometheus(self) -> str:
        from repro.telemetry.export import timeseries_prometheus
        return timeseries_prometheus(self.timeseries)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Telemetry vms={len(self.vms)} "
                f"spans={len(self.tracer.spans)} "
                f"metrics={len(self.metrics.families)}>")
