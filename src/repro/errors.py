"""Exception hierarchy for the vHadoop reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class; subsystem-specific bases allow finer handling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration value or inconsistent configuration set."""


class SimulationError(ReproError):
    """Violation of simulation-kernel invariants (e.g. scheduling in the past)."""


class ResourceError(SimulationError):
    """Misuse of a simulated resource (double release, negative capacity...)."""


class VirtualizationError(ReproError):
    """Base class for virtualization-layer failures."""


class PlacementError(VirtualizationError):
    """A VM cannot be placed on the requested physical machine."""


class MigrationError(VirtualizationError):
    """Live migration preconditions not met or migration aborted."""


class VMStateError(VirtualizationError):
    """Operation not valid in the VM's current lifecycle state."""


class HdfsError(ReproError):
    """Base class for HDFS failures."""


class FileNotFoundInDfs(HdfsError):
    """Path does not exist in the simulated namespace."""


class FileAlreadyExists(HdfsError):
    """Create refused because the path already exists."""


class ReplicationError(HdfsError):
    """Not enough live datanodes to satisfy the replication factor."""


class BlockNotFound(HdfsError):
    """No live replica holds the requested block."""


class MapReduceError(ReproError):
    """Base class for MapReduce engine failures."""


class JobConfigError(MapReduceError, ConfigError):
    """Job misconfiguration (no mapper, bad reduce count, missing input...)."""


class TaskFailure(MapReduceError):
    """A map or reduce task raised from user code."""

    def __init__(self, task_id: str, cause: BaseException):
        super().__init__(f"task {task_id} failed: {cause!r}")
        self.task_id = task_id
        self.cause = cause


class ClusteringError(ReproError):
    """Machine-learning library failure (bad k, empty input, no convergence...)."""


class MonitorError(ReproError):
    """Monitoring subsystem misuse."""


class TunerError(ReproError):
    """Tuner rule or application failure."""
