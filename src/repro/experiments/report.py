"""Experiment result persistence: CSV and JSON writers.

``vhadoop <experiment> --out DIR`` drops one ``<id>.csv`` (the rows), one
``<id>.json`` (rows + notes + metadata) and, when an experiment produced
text artifacts (Fig. 8's panels), one ``<id>.<panel>.txt`` per panel.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.common import ExperimentResult


def write_csv(result: ExperimentResult, directory: str | Path) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.columns)
        writer.writerows(result.rows)
    return path


def write_json(result: ExperimentResult, directory: str | Path) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.json"
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
    }
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


def write_artifacts(result: ExperimentResult, directory: str | Path
                    ) -> list[Path]:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in result.artifacts.items():
        path = directory / f"{result.experiment_id}.{name}.txt"
        path.write_text(str(text) + "\n")
        written.append(path)
    return written


def write_all(result: ExperimentResult, directory: str | Path) -> list[Path]:
    """CSV + JSON + artifacts for one result; returns the paths written."""
    paths = [write_csv(result, directory), write_json(result, directory)]
    paths.extend(write_artifacts(result, directory))
    return paths


def read_json(path: str | Path) -> ExperimentResult:
    """Load a result back (rows become lists of parsed JSON values)."""
    payload = json.loads(Path(path).read_text())
    result = ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        columns=tuple(payload["columns"]))
    for row in payload["rows"]:
        result.add(*row)
    for note in payload["notes"]:
        result.note(note)
    return result
