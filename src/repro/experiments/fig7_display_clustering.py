"""Fig. 7 — visualizing sample clustering vs cluster scale.

DisplayClustering's 1000-sample, 3-Gaussian dataset run through all six
algorithms on 2/4/8/16-node clusters.  Paper shape: runtimes stay
*relatively smooth/flat* as the cluster scales — the workload is light and
finishes quickly, so it "didn't cause too much pressure on the network"
(contrast with Fig. 6's heavier growth).
"""

from __future__ import annotations

from typing import Sequence

from repro.datasets.sample_data import generate_sample_data
from repro.experiments.common import (ExperimentResult, make_platform,
                                      scaled_cluster)
from repro.config import HadoopConfig
from repro.ml import (CanopyDriver, ClusterExecutor, DirichletDriver,
                      FuzzyKMeansDriver, KMeansDriver, MeanShiftDriver,
                      MinHashDriver)
from repro.ml.base import stage_points

CLUSTER_SCALES = (2, 4, 8, 16)
ALGORITHMS = ("canopy", "dirichlet", "fuzzykmeans", "kmeans", "meanshift",
              "minhash")
#: Fig. 7 jobs are deliberately light: small job jar footprint dominates
#: less, matching the paper's "relatively smooth" curves.
_LIGHT_CONFIG = HadoopConfig(job_localization_bytes=4 * 1024 * 1024)


def make_drivers(max_iterations: int = 4) -> dict:
    return {
        "canopy": CanopyDriver(t1=3.0, t2=1.5),
        "dirichlet": DirichletDriver(n_models=10,
                                     max_iterations=max_iterations),
        "fuzzykmeans": FuzzyKMeansDriver(k=3, max_iterations=max_iterations),
        "kmeans": KMeansDriver(k=3, max_iterations=max_iterations),
        "meanshift": MeanShiftDriver(t1=2.0, t2=1.0,
                                     max_iterations=max_iterations),
        "minhash": MinHashDriver(num_hashes=8, key_groups=2, bucket=2.0),
    }


def run(scales: Sequence[int] = CLUSTER_SCALES, max_iterations: int = 4,
        seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig7",
        title="Visualizing-sample clustering vs cluster scale (seconds)",
        columns=("nodes",) + ALGORITHMS)
    for n_nodes in scales:
        platform = make_platform(seed=seed)
        points, _labels = generate_sample_data(
            platform.datacenter.rng.fresh("datasets/sample"))
        cluster = scaled_cluster(platform, n_nodes,
                                 hadoop_config=_LIGHT_CONFIG)
        stage_points(platform, cluster, "/samples/input", points)
        executor = ClusterExecutor(platform.runner(cluster), cluster)
        times = []
        for name, driver in make_drivers(max_iterations).items():
            outcome = driver.run(executor, "/samples/input",
                                 work_prefix=f"/{name}")
            times.append(outcome.runtime_s)
        result.add(n_nodes, *times)
    result.note("curves stay relatively smooth as the cluster scales "
                "(light workload)")
    return result
