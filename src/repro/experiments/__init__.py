"""Experiment harnesses: one module per table/figure of the paper.

Every harness returns an :class:`~repro.experiments.common.ExperimentResult`
whose rows are the same quantities the paper plots; ``format_table`` renders
them for terminals and the benchmark suite.  See DESIGN.md §4 for the index
and EXPERIMENTS.md for paper-vs-measured notes.
"""

from repro.experiments.common import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
