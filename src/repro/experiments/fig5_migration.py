"""Fig. 5 + Table II — live migration of the 16-node hadoop virtual cluster.

Four conditions: {idle, running Wordcount} x {512 MB, 1024 MB} VM memory.
The whole cluster migrates from one physical machine to the other,
sequentially (one ``xm migrate`` at a time, as the per-node bars of Fig. 5
imply).

Paper shapes to hold:

* larger memory => longer migration time; downtime uncorrelated with memory;
* Wordcount migration time ≈ 3x idle (the job's traffic contends with the
  migration stream); Wordcount downtime ≈ 13x idle (dirty-rate blow-up);
* per-node downtimes vary widely under Wordcount, uniformly small when idle.
"""

from __future__ import annotations


import numpy as np

from repro import constants as C
from repro.config import VMConfig
from repro.datasets.text import generate_corpus
from repro.experiments.common import (ExperimentResult, make_platform,
                                      sixteen_node_cluster)
from repro.virt.virtlm import ClusterMigrationReport
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

#: Wordcount input used to load the cluster during migration (simulated MB).
LOAD_INPUT_MB = 1024
VOLUME_SCALE = 400

CONDITIONS = (
    ("idle", 1024 * C.MiB),
    ("idle", 512 * C.MiB),
    ("wordcount", 1024 * C.MiB),
    ("wordcount", 512 * C.MiB),
)


def migrate_cluster_under(condition: str, memory: int, seed: int = 0
                          ) -> ClusterMigrationReport:
    """Provision 16 VMs on pm0, (optionally) start Wordcount, migrate all
    to pm1, and return the Virt-LM report."""
    platform = make_platform(seed=seed)
    cluster = sixteen_node_cluster(platform, "normal",
                                   vm_config=VMConfig(memory=memory))
    dc = platform.datacenter
    load_state = {"stop": False}
    if condition == "wordcount":
        lines = generate_corpus(LOAD_INPUT_MB * C.MB // VOLUME_SCALE,
                                rng=dc.rng.fresh("datasets/corpus"))
        platform.upload(cluster, "/wc/input", lines_as_records(lines),
                        sizeof=scaled_line_sizeof(VOLUME_SCALE), timed=False)
        runner = platform.runners[cluster.name]

        def load_loop(sim, stream):
            # The cluster runs Wordcount for the whole migration: as each
            # job finishes, the next one is submitted (the paper migrates a
            # cluster that is actively "running Wordcount").  Several
            # overlapping streams keep every node busy, as a saturating
            # Wordcount run does.
            index = 0
            while not load_state["stop"]:
                job = wordcount_job("/wc/input",
                                    f"/wc/output-{stream}-{index}",
                                    n_reduces=8, volume_scale=VOLUME_SCALE)
                yield runner.submit(job)
                index += 1
            return index

        for stream in range(3):
            dc.sim.process(load_loop(dc.sim, stream),
                           name=f"wordcount-load-{stream}")
        # Let the job reach steady state before migration begins.
        dc.run(until=dc.now + 20.0)

    label = f"{condition}.{memory // C.MiB}MB"
    event = dc.virtlm.migrate_cluster(cluster.vms, dc.machine(1), label=label)
    while not event.triggered:
        dc.sim.run(until=dc.now + 200.0)
        if dc.sim.peek() == float("inf"):
            break
    assert event.triggered, f"cluster migration {label} did not finish"
    report: ClusterMigrationReport = event.value
    load_state["stop"] = True
    dc.sim.run()  # drain the last Wordcount job
    return report


def run_per_node(seed: int = 0) -> ExperimentResult:
    """Fig. 5: per-node migration time and downtime for each condition."""
    result = ExperimentResult(
        experiment_id="fig5",
        title="Per-node migration time / downtime of the 16-node cluster",
        columns=("condition", "node", "migration_time_s", "downtime_ms"))
    for condition, memory in CONDITIONS:
        report = migrate_cluster_under(condition, memory, seed=seed)
        label = f"{condition}.{memory // C.MiB}MB"
        for record in report.records:
            result.add(label, record.vm, record.migration_time_s,
                       record.downtime_s * 1000.0)
    result.note("downtime varies widely across nodes only under wordcount")
    return result


def run_table2(seed: int = 0) -> ExperimentResult:
    """Table II: overall migration time (s) and overall downtime (ms)."""
    result = ExperimentResult(
        experiment_id="table2",
        title="Overall migration time and downtime of 16-node hadoop "
              "virtual cluster",
        columns=("condition", "overall_migration_time_s",
                 "overall_downtime_ms"))
    reports: dict[str, ClusterMigrationReport] = {}
    for condition, memory in CONDITIONS:
        label = f"{condition}.{memory // C.MiB}MB"
        report = migrate_cluster_under(condition, memory, seed=seed)
        reports[label] = report
        result.add(label, report.overall_migration_time_s,
                   report.overall_downtime_s * 1000.0)
    idle = reports["idle.1024MB"]
    busy = reports["wordcount.1024MB"]
    result.note(f"wordcount/idle migration-time ratio: "
                f"{busy.overall_migration_time_s / idle.overall_migration_time_s:.1f}x "
                f"(paper: ~3x)")
    result.note(f"wordcount/idle downtime ratio: "
                f"{busy.overall_downtime_s / idle.overall_downtime_s:.1f}x "
                f"(paper: ~13x)")
    result.note(f"wordcount downtime spread (max/min): "
                f"{busy.downtime_spread():.1f}x vs idle "
                f"{idle.downtime_spread():.1f}x")
    return result


def downtime_statistics(report: ClusterMigrationReport) -> dict:
    downs = np.asarray(report.downtimes)
    return {"mean": float(downs.mean()), "std": float(downs.std()),
            "min": float(downs.min()), "max": float(downs.max())}
