"""Chaos — Wordcount under fault injection vs the clean run.

The paper's conclusion (iii) claims the platform tolerates node failures
through Hadoop's own mechanisms.  This experiment makes that claim
quantitative: the same seeded Wordcount runs once clean and once under a
:class:`~repro.chaos.plan.FaultPlan` that crashes one worker VM, takes
down a whole physical host (the correlated-failure case), slows one
surviving disk, and later rejoins the first victim — all while the job
runs.  Recovery is fully automatic (heartbeat reaping, task retry with
backoff, background re-replication); the functional output must equal the
clean run byte-for-byte, and two same-seed chaos runs must produce the
identical injection timeline digest.
"""

from __future__ import annotations

from repro import constants as C
from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.datasets.text import generate_corpus
from repro.experiments.common import (ExperimentResult, make_platform,
                                      sixteen_node_cluster)
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

#: Materialize 1/SCALE of the corpus; simulate the full byte volume.
VOLUME_SCALE = 100
QUICK_SIZE_MB = 64
FULL_SIZE_MB = 256


def _build(seed: int, size_mb: int):
    platform = make_platform(seed=seed, trace=True)
    cluster = sixteen_node_cluster(platform, "cross-domain")
    lines = generate_corpus(
        size_mb * C.MB // VOLUME_SCALE,
        rng=platform.datacenter.rng.fresh("datasets/corpus"))
    platform.upload(cluster, "/wc/input", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(VOLUME_SCALE), timed=False)
    job = wordcount_job("/wc/input", "/wc/output", n_reduces=4,
                        volume_scale=VOLUME_SCALE)
    return platform, cluster, job


def default_plan(cluster, clean_elapsed: float) -> FaultPlan:
    """One worker crash (with delayed rejoin), one whole-host crash, and a
    slow disk — all timed as fractions of the clean runtime so every fault
    lands while the job is in flight."""
    doomed_host = cluster.datacenter.machines[-1].name
    survivors = [vm for vm in cluster.workers
                 if vm.host is not None and vm.host.name != doomed_host]
    victim, straggler = survivors[0], survivors[1]
    plan = FaultPlan(name="wc-chaos")
    plan.add(Fault(at=0.20 * clean_elapsed, kind="vm.crash",
                   target=victim.name, duration=0.35 * clean_elapsed))
    plan.add(Fault(at=0.35 * clean_elapsed, kind="disk.slow",
                   target=straggler.name, factor=4.0,
                   duration=0.30 * clean_elapsed))
    plan.add(Fault(at=0.50 * clean_elapsed, kind="host.crash",
                   target=doomed_host))
    return plan


def _run_clean(seed: int, size_mb: int):
    platform, cluster, job = _build(seed, size_mb)
    runner = platform.runner(cluster)
    report = runner.run_to_completion(job)
    return report, runner.read_output(report)


def _run_chaos(seed: int, size_mb: int, clean_elapsed: float):
    platform, cluster, job = _build(seed, size_mb)
    runner = platform.runner(cluster)
    plan = default_plan(cluster, clean_elapsed)
    injector = ChaosInjector(cluster, plan)
    done = runner.submit(job)
    injector.start()
    platform.sim.run_until(done)
    report = done.value
    stats = {
        "retries": platform.tracer.count("recovery.task.retry"),
        "trackers_dead": platform.tracer.count("recovery.tracker.dead"),
        "datanodes_dead": platform.tracer.count("recovery.datanode.dead"),
        "repair_sweeps": platform.tracer.count(
            "recovery.replication.start"),
    }
    return report, runner.read_output(report), injector.report, stats


def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    size_mb = QUICK_SIZE_MB if quick else FULL_SIZE_MB
    result = ExperimentResult(
        experiment_id="chaos",
        title="Wordcount under fault injection (crash + host loss + slow "
              "disk) vs clean run",
        columns=("scenario", "elapsed_s", "ratio_vs_clean", "output_ok"))

    clean_report, clean_records = _run_clean(seed, size_mb)
    result.add("clean", clean_report.elapsed, 1.0, True)

    chaos_report, chaos_records, chaos_log, stats = _run_chaos(
        seed, size_mb, clean_report.elapsed)
    output_ok = chaos_records == clean_records
    result.add("chaos", chaos_report.elapsed,
               chaos_report.elapsed / clean_report.elapsed, output_ok)
    if not output_ok:
        raise AssertionError(
            "chaos run output differs from the clean run")
    if chaos_report.elapsed < clean_report.elapsed:
        raise AssertionError("chaos run finished faster than clean run")

    # Same seed + same plan must reproduce the exact injection timeline.
    report2, records2, log2, _ = _run_chaos(seed, size_mb,
                                            clean_report.elapsed)
    if (log2.digest() != chaos_log.digest()
            or report2.elapsed != chaos_report.elapsed
            or records2 != chaos_records):
        raise AssertionError("chaos run is not deterministic for the seed")

    result.note(f"timeline digest {chaos_log.digest()} "
                "(stable across two same-seed runs)")
    result.note(f"recovery: {stats['retries']} task retries, "
                f"{stats['trackers_dead']} trackers reaped, "
                f"{stats['datanodes_dead']} datanodes reaped, "
                f"{stats['repair_sweeps']} repair sweeps "
                "(zero manual repair_cluster calls)")
    return result
