"""Scale — wordcount on a racked datacenter (the ``--topology`` consumer).

The paper's testbed stops at 16 VMs on two flat hosts; this experiment
answers "what does that workload look like at rack scale".  It provisions
one hadoop virtual cluster per layout over the declared
``racks x hosts_per_rack x vms_per_host`` topology and reports elapsed
time plus the map-task locality mix (node / host / rack / remote) — the
rack tier makes the scheduler's locality hierarchy and HDFS's rack-aware
block placement directly observable from the CLI:

.. code-block:: console

   $ vhadoop scale --topology 5x5x4        # 100 VMs over 5 racks
"""

from __future__ import annotations

from typing import Union

from repro import constants as C
from repro.config import TopologySpec
from repro.datasets.text import generate_corpus
from repro.experiments.common import (ExperimentResult, make_platform,
                                      racked_cluster)
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

#: Materialize 1/SCALE of the corpus; simulate the full byte volume.
VOLUME_SCALE = 100

#: Two racks of two hosts — the smallest shape where every tier (bridge,
#: NIC, ToR, aggregation) carries traffic.
DEFAULT_TOPOLOGY = "2x2x4"


def run(seed: int = 0, quick: bool = False,
        topology: Union[TopologySpec, str, None] = None) -> ExperimentResult:
    topo = (TopologySpec.parse(topology) if isinstance(topology, str)
            else topology) or TopologySpec.parse(DEFAULT_TOPOLOGY)
    size_mb = 32 if quick else 128
    result = ExperimentResult(
        experiment_id="scale",
        title=f"Wordcount at rack scale ({topo.spec_str()} topology, "
              f"{size_mb} MB input)",
        columns=("layout", "vms", "racks", "elapsed_s",
                 "node_pct", "host_pct", "rack_pct", "remote_pct"))
    for layout in ("packed", "spread"):
        platform = make_platform(seed=seed, topology=topo)
        cluster = racked_cluster(platform, layout=layout)
        lines = generate_corpus(
            size_mb * C.MB // VOLUME_SCALE,
            rng=platform.datacenter.rng.fresh("datasets/corpus"))
        platform.upload(cluster, "/scale/input", lines_as_records(lines),
                        sizeof=scaled_line_sizeof(VOLUME_SCALE),
                        timed=False)
        job = wordcount_job("/scale/input", "/scale/output",
                            n_reduces=max(2, topo.racks),
                            volume_scale=VOLUME_SCALE)
        report = platform.run_job(cluster, job)
        frac = report.locality_fractions()
        result.add(layout, cluster.n_nodes, len(cluster.racks_used()),
                   report.elapsed,
                   100.0 * frac.get("node", 0.0),
                   100.0 * frac.get("host", 0.0),
                   100.0 * frac.get("rack", 0.0),
                   100.0 * frac.get("remote", 0.0))
    result.note(f"topology {topo.spec_str()}: {topo.n_hosts} hosts, "
                f"{topo.n_vms} VM slots; rack-aware placement keeps most "
                f"map input node- or rack-local")
    return result
