"""Shared experiment plumbing: result structure, table rendering, and the
standard 16-node cluster builders used across the figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from repro.config import HadoopConfig, PlatformConfig, TopologySpec, VMConfig
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.platform.cluster import HadoopVirtualCluster


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure."""

    experiment_id: str          # e.g. "fig2", "table2"
    title: str
    columns: tuple
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)
    #: Free-form artifacts (e.g. fig8's ASCII panels).
    artifacts: dict = field(default_factory=dict)

    def add(self, *row: Any) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: row width {len(row)} != "
                f"{len(self.columns)} columns")
        self.rows.append(tuple(row))

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def note(self, text: str) -> None:
        self.notes.append(text)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render a result as an aligned text table."""
    header = [str(c) for c in result.columns]
    body = [[_fmt(v) for v in row] for row in result.rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body))
              if body else len(header[i]) for i in range(len(header))]
    def line(cells):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    out = [f"== {result.experiment_id}: {result.title} ==",
           line(header),
           line(["-" * w for w in widths])]
    out.extend(line(r) for r in body)
    for note in result.notes:
        out.append(f"note: {note}")
    return "\n".join(out)


# -- standard setups ---------------------------------------------------------

def make_platform(seed: int = 0,
                  topology: Union[TopologySpec, str, None] = None,
                  **overrides) -> VHadoopPlatform:
    """The experiment testbed.

    Defaults to the paper's two-host machine pair; pass ``topology`` (a
    :class:`~repro.config.TopologySpec` or its ``"RxHxV"`` string form,
    the CLI's shared ``--topology`` flag) to build a racked datacenter
    instead.
    """
    if topology is None:
        return VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed,
                                              **overrides))
    topo = (TopologySpec.parse(topology) if isinstance(topology, str)
            else topology)
    return VHadoopPlatform(PlatformConfig(topology=topo, seed=seed,
                                          **overrides))


def add_topology_argument(parser) -> None:
    """Install the one shared topology knob: ``--topology RxHxV``.

    Every scale-aware entry point (the experiment CLI, the perf bench)
    parses rack shapes through this flag and
    :meth:`TopologySpec.parse <repro.config.TopologySpec.parse>` — there
    are deliberately no per-experiment ``--vms``/``--hosts`` knobs.
    """
    parser.add_argument(
        "--topology", metavar="RxHxV", type=TopologySpec.parse, default=None,
        help="racks x hosts_per_rack x vms_per_host datacenter shape "
             "(e.g. 2x8x4) for the scale-aware experiments; default is "
             "the paper's flat two-host testbed")


def sixteen_node_cluster(platform: VHadoopPlatform, layout: str,
                         name: Optional[str] = None,
                         vm_config: Optional[VMConfig] = None,
                         hadoop_config: Optional[HadoopConfig] = None
                         ) -> HadoopVirtualCluster:
    """The paper's 16-node cluster (1 namenode + 15 datanodes) in the
    'normal' (one host) or 'cross-domain' (8 + 8) layout."""
    if layout == "normal":
        spec = ClusterSpec.single_host(16)
    elif layout == "cross-domain":
        spec = ClusterSpec.packed(16, hosts=2)
    else:
        raise ValueError(f"unknown layout {layout!r}")
    return platform.provision_cluster(
        name or f"hvc-{layout}", spec, vm_config=vm_config,
        hadoop_config=hadoop_config)


def scaled_cluster(platform: VHadoopPlatform, n_nodes: int,
                   name: Optional[str] = None,
                   hadoop_config: Optional[HadoopConfig] = None
                   ) -> HadoopVirtualCluster:
    """An n-node cluster balanced over both hosts (Figs. 6-7 scale 2 -> 16).

    Round-robin placement is how a real operator grows a virtual cluster on
    a two-machine testbed; it means the inter-node communication share that
    crosses the physical NICs grows with the cluster — the paper's
    "larger virtual cluster incurs more data communication" effect.
    """
    return platform.provision_cluster(
        name or f"hvc-{n_nodes}",
        ClusterSpec.spread(n_nodes, hosts=len(platform.datacenter.machines)),
        hadoop_config=hadoop_config)


def racked_cluster(platform: VHadoopPlatform,
                   n_vms: Optional[int] = None, layout: str = "packed",
                   name: Optional[str] = None,
                   hadoop_config: Optional[HadoopConfig] = None
                   ) -> HadoopVirtualCluster:
    """A cluster spanning the platform's declared rack topology.

    Requires a platform built with ``make_platform(topology=...)``;
    defaults to filling the whole datacenter.
    """
    topo = platform.config.topology
    if topo is None:
        raise ValueError("racked_cluster needs a platform built with a "
                         "topology (make_platform(topology='RxHxV'))")
    spec = ClusterSpec.racked(topo, n_vms=n_vms, layout=layout,
                              hadoop=hadoop_config)
    return platform.provision_cluster(
        name or f"hvc-{topo.spec_str()}", spec)
