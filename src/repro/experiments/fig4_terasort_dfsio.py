"""Fig. 4 — TeraSort (a) and TestDFSIO (b) on normal vs cross-domain.

Shapes: (a) generation and sort times small for small inputs, growing
quickly past a few hundred MB, cross-domain worse; (b) read throughput
exceeds write throughput (replication pipeline), cross-domain below normal.
"""

from __future__ import annotations

from typing import Sequence

from repro import constants as C
from repro.config import HadoopConfig
from repro.experiments.common import (ExperimentResult, make_platform,
                                      sixteen_node_cluster)
from repro.workloads.dfsio import run_dfsio
from repro.workloads.terasort import run_terasort

QUICK_TERA_MB = (100, 200, 400, 800)
FULL_TERA_MB = (100, 200, 400, 800, 1000)

#: TeraGen writes this much per record but we materialize a sample: each
#: simulated record stands for SCALE real ones (volume handled by sizeof).
TERA_RECORDS_PER_MB = 160  # materialized records per simulated MB


def _tera_cluster(platform, layout):
    # Smaller blocks so the sweep's sizes span several map tasks.
    config = HadoopConfig(dfs_block_size=32 * C.MiB)
    return sixteen_node_cluster(platform, layout, hadoop_config=config)


def run_terasort_sweep(sizes_mb: Sequence[int] = QUICK_TERA_MB,
                       n_reduces: int = 8, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4a",
        title="TeraSort generation + sort time",
        columns=("data_mb", "normal_gen_s", "normal_sort_s",
                 "cross_gen_s", "cross_sort_s", "validated"))
    for size_mb in sizes_mb:
        cells = {}
        validated = True
        for layout in ("normal", "cross-domain"):
            platform = make_platform(seed=seed)
            cluster = _tera_cluster(platform, layout)
            runner = platform.runner(cluster)
            tera = run_terasort(runner, cluster, size_mb * C.MB,
                                n_reduces=n_reduces, seed_tag=layout)
            cells[layout] = (tera.generation_time_s, tera.sort_time_s)
            validated = validated and tera.validated
        result.add(size_mb, cells["normal"][0], cells["normal"][1],
                   cells["cross-domain"][0], cells["cross-domain"][1],
                   validated)
    result.note("sort time grows super-linearly past ~400 MB; "
                "cross-domain >= normal; TeraValidate passes")
    return result


def run_dfsio_sweep(n_files: int = 8, file_mb: int = 64, seed: int = 0
                    ) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4b",
        title="TestDFSIO read/write throughput (MB/s)",
        columns=("layout", "write_mbps", "read_mbps"))
    for layout in ("normal", "cross-domain"):
        platform = make_platform(seed=seed)
        cluster = sixteen_node_cluster(platform, layout)
        outcome = run_dfsio(cluster, n_files=n_files,
                            file_bytes=file_mb * C.MB, tag=layout)
        result.add(layout,
                   outcome.write_throughput_bps / C.MB,
                   outcome.read_throughput_bps / C.MB)
    result.note("read throughput > write throughput; cross-domain < normal")
    return result
