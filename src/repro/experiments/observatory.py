"""Observatory — chaos-validated anomaly detection and attribution.

Adversarial validation of :mod:`repro.observatory`: the same seeded
Wordcount runs once clean (the detectors must stay silent and the
flow-level attribution must explain the critical path) and once per
chaos fault class (the matching SLO alert must fire, with the right
attribution, and nothing else may).  The alert book carries a content
digest, so two same-seed runs of this experiment must print the same
``alert digest`` line — CI asserts exactly that.

The detection matrix::

    fault          expected alert      attribution
    -------------  ------------------  -----------
    vm.crash       node-down           node
    host.crash     host-down           node
    net.degrade    degraded-link       network
    net.partition  partitioned-link    network
    disk.slow      slow-disk           disk
"""

from __future__ import annotations

import hashlib

from repro import constants as C
from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.datasets.text import generate_corpus
from repro.experiments.common import (ExperimentResult, make_platform,
                                      sixteen_node_cluster)
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

#: Materialize 1/SCALE of the corpus; simulate the full byte volume.
VOLUME_SCALE = 100
#: The matrix needs several map tasks so the slow-disk victim has healthy
#: peers to be compared against — always run the full input size.
SIZE_MB = 256
#: Minimum fraction of the critical path the per-job attribution must
#: explain on the clean run.
MIN_COVERAGE = 0.90
#: Detector tick period — finer than the default so short fault windows
#: always contain whole evidence windows.
TICK_S = 2.0

#: fault kind -> (expected alert slo, expected attribution)
DETECTION_MATRIX = {
    "vm.crash": ("node-down", "node"),
    "host.crash": ("host-down", "node"),
    "net.degrade": ("degraded-link", "network"),
    "net.partition": ("partitioned-link", "network"),
    "disk.slow": ("slow-disk", "disk"),
}

#: Alert kinds that are legitimate side effects of a fault rather than
#: false positives (a host crash is also eight node crashes; any crash
#: leaves blocks under-replicated until the repair sweep catches up).
_SIDE_EFFECTS = {
    "vm.crash": {"under-replicated"},
    "host.crash": {"node-down", "under-replicated"},
    "net.degrade": set(),
    "net.partition": {"degraded-link"},
    "disk.slow": set(),
}


def _build(seed: int):
    platform = make_platform(seed=seed, trace=True)
    cluster = sixteen_node_cluster(platform, "cross-domain")
    lines = generate_corpus(
        SIZE_MB * C.MB // VOLUME_SCALE,
        rng=platform.datacenter.rng.fresh("datasets/corpus"))
    platform.upload(cluster, "/wc/input", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(VOLUME_SCALE), timed=False)
    job = wordcount_job("/wc/input", "/wc/output", n_reduces=4,
                        volume_scale=VOLUME_SCALE)
    return platform, cluster, job


def _disk_victim(clean_report) -> str:
    """The tracker that moved the most map input in the clean run — a
    disk fault there is guaranteed to sit on the job's busiest read
    path (the seeded schedule repeats, so the same tracker is busy in
    the fault run too)."""
    read = {}
    for t in clean_report.tasks:
        if t.kind == "map":
            read[t.tracker] = read.get(t.tracker, 0.0) + t.input_bytes
    return max(sorted(read), key=lambda name: read[name])


def fault_plan(cluster, kind: str, clean_report) -> FaultPlan:
    """One single-fault plan per matrix row, timed as fractions of the
    clean runtime so the fault lands (and heals) while the job runs."""
    clean_elapsed = clean_report.elapsed
    plan = FaultPlan(name=f"observatory-{kind}")
    first_host = cluster.datacenter.machines[0].name
    last_host = cluster.datacenter.machines[-1].name
    if kind == "vm.crash":
        victim = next(vm for vm in cluster.workers
                      if vm.host is not None and vm.host.name != last_host)
        plan.add(Fault(at=0.20 * clean_elapsed, kind=kind,
                       target=victim.name, duration=0.40 * clean_elapsed))
    elif kind == "host.crash":
        plan.add(Fault(at=0.30 * clean_elapsed, kind=kind,
                       target=last_host))
    elif kind == "net.degrade":
        plan.add(Fault(at=0.15 * clean_elapsed, kind=kind,
                       target=first_host, factor=16.0,
                       duration=0.60 * clean_elapsed))
    elif kind == "net.partition":
        plan.add(Fault(at=0.20 * clean_elapsed, kind=kind,
                       target=first_host, duration=0.40 * clean_elapsed))
    elif kind == "disk.slow":
        plan.add(Fault(at=0.10 * clean_elapsed, kind=kind,
                       target=_disk_victim(clean_report), factor=32.0,
                       duration=0.60 * clean_elapsed))
    else:
        raise ValueError(f"no plan for fault kind {kind!r}")
    return plan


def _run_clean(seed: int):
    """Clean baseline: detectors on, zero alerts allowed, attribution
    must explain at least MIN_COVERAGE of the critical path."""
    platform, cluster, job = _build(seed)
    obs = cluster.observatory(interval=TICK_S).start()
    runner = platform.runner(cluster)
    report = runner.run_to_completion(job)
    obs.stop()
    if obs.alerts():
        raise AssertionError(
            f"false positives on the clean run: "
            f"{[a.describe() for a in obs.alerts()]}")
    attribution = obs.attribution(job.name)
    if attribution.coverage < MIN_COVERAGE:
        raise AssertionError(
            f"attribution covers only {attribution.coverage:.0%} of the "
            f"critical path (need >= {MIN_COVERAGE:.0%})")
    return report, attribution, obs.digest()


def _run_fault(seed: int, kind: str, clean_report):
    """One fault-injected run; returns the alert book digest and alerts."""
    platform, cluster, job = _build(seed)
    obs = cluster.observatory(interval=TICK_S).start()
    runner = platform.runner(cluster)
    plan = fault_plan(cluster, kind, clean_report)
    done = runner.submit(job)
    injector = ChaosInjector(cluster, plan)
    injector.start()
    platform.sim.run_until(done)
    obs.stop()
    return done.value, obs.alerts(), obs.digest()


def _check_matrix_row(kind: str, alerts) -> None:
    expected_slo, expected_attr = DETECTION_MATRIX[kind]
    hits = [a for a in alerts if a.slo == expected_slo]
    if not hits:
        raise AssertionError(
            f"{kind}: expected a {expected_slo!r} alert, got "
            f"{sorted({a.slo for a in alerts})}")
    bad_attr = [a for a in hits if a.attribution != expected_attr]
    if bad_attr:
        raise AssertionError(
            f"{kind}: {expected_slo!r} attributed "
            f"{bad_attr[0].attribution!r}, expected {expected_attr!r}")
    allowed = {expected_slo} | _SIDE_EFFECTS[kind]
    strays = sorted({a.slo for a in alerts} - allowed)
    if strays:
        raise AssertionError(
            f"{kind}: unexpected alert kinds {strays} "
            f"(allowed: {sorted(allowed)})")


def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="observatory",
        title="Online anomaly detection vs the chaos fault matrix "
              "(one Wordcount per fault class)",
        columns=("scenario", "elapsed_s", "alerts", "expected",
                 "detected"))

    clean_report, attribution, clean_digest = _run_clean(seed)
    result.add("clean", clean_report.elapsed, 0, "-", True)
    result.note(f"clean attribution: {attribution.coverage:.0%} of the "
                f"critical path explained, dominant class "
                f"{attribution.dominant!r}")

    digests = [clean_digest]
    for kind in DETECTION_MATRIX:
        report, alerts, digest = _run_fault(seed, kind, clean_report)
        _check_matrix_row(kind, alerts)
        expected_slo, _ = DETECTION_MATRIX[kind]
        result.add(kind, report.elapsed, len(alerts), expected_slo, True)
        digests.append(digest)

    # Same seed, same fault, same alert book — detector determinism.
    if not quick:
        _report2, _alerts2, digest2 = _run_fault(
            seed, "vm.crash", clean_report)
        if digest2 != digests[1]:
            raise AssertionError(
                "alert book is not deterministic for the seed: "
                f"{digest2} != {digests[1]}")

    matrix_digest = hashlib.sha256(
        "|".join(digests).encode()).hexdigest()[:16]
    result.note(f"alert digest {matrix_digest} "
                "(clean + 5 fault classes, stable for the seed)")
    return result
