"""Fig. 3 — MRBench on normal vs cross-domain 16-node cluster.

(a) reduce = 1, maps scaled 1..6; (b) map = 15, reduces scaled 1..6.
Paper shape: running time grows as maps or reduces scale (framework
overheads + network congestion on tiny data); cross-domain is worse.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (ExperimentResult, make_platform,
                                      sixteen_node_cluster)
from repro.workloads.mrbench import run_mrbench

MAP_SCALES = (1, 2, 3, 4, 5, 6)
REDUCE_SCALES = (1, 2, 3, 4, 5, 6)
#: Runs averaged per data point ("each result is run three times and
#: averaged" — the paper's experimental-precision protocol).
RUNS = 3


def _bench(layout: str, n_maps: int, n_reduces: int, seed: int,
           runs: int = RUNS) -> float:
    platform = make_platform(seed=seed)
    cluster = sixteen_node_cluster(platform, layout)
    runner = platform.runner(cluster)
    total = 0.0
    for run_index in range(runs):
        report = run_mrbench(runner, cluster, n_maps, n_reduces,
                             run_index=run_index)
        total += report.elapsed
    return total / runs


def run_map_scaling(scales: Sequence[int] = MAP_SCALES, seed: int = 0,
                    runs: int = RUNS) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig3a",
        title="MRBench map scaling (reduce=1)",
        columns=("n_maps", "normal_s", "cross_domain_s"))
    for n_maps in scales:
        result.add(n_maps,
                   _bench("normal", n_maps, 1, seed, runs),
                   _bench("cross-domain", n_maps, 1, seed, runs))
    result.note("time grows with map count; cross-domain >= normal")
    return result


def run_reduce_scaling(scales: Sequence[int] = REDUCE_SCALES, seed: int = 0,
                       runs: int = RUNS) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig3b",
        title="MRBench reduce scaling (map=15)",
        columns=("n_reduces", "normal_s", "cross_domain_s"))
    for n_reduces in scales:
        result.add(n_reduces,
                   _bench("normal", 15, n_reduces, seed, runs),
                   _bench("cross-domain", 15, n_reduces, seed, runs))
    result.note("time grows with reduce count; cross-domain >= normal")
    return result
