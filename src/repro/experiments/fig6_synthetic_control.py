"""Fig. 6 — parallel clustering on the Synthetic Control Chart dataset with
different hadoop virtual cluster scales (2, 4, 8, 16 nodes).

The paper runs canopy, dirichlet and meanshift over the 600-chart dataset
and observes the running time *increasing* with cluster size: the dataset
is fixed and tiny, so larger clusters only add communication (job
localization to every tracker, remote split reads, wider shuffles).
"""

from __future__ import annotations

from typing import Sequence

from repro.datasets.synthetic_control import generate_synthetic_control
from repro.experiments.common import (ExperimentResult, make_platform,
                                      scaled_cluster)
from repro.ml import (CanopyDriver, ClusterExecutor, DirichletDriver,
                      MeanShiftDriver)
from repro.ml.base import stage_points

CLUSTER_SCALES = (2, 4, 8, 16)
#: Thresholds tuned for control-chart vectors (60-D, values ~0-60; typical
#: inter-chart Euclidean distances are ~40-120).
CANOPY_T1, CANOPY_T2 = 80.0, 55.0
MEANSHIFT_T1, MEANSHIFT_T2 = 70.0, 35.0


def _drivers(max_iterations: int, n_workers: int):
    # Reduces scale with the cluster (real deployments set
    # mapred.reduce.tasks proportional to nodes), feeding the paper's
    # "larger cluster => more communication" effect.
    return {
        "canopy": CanopyDriver(t1=CANOPY_T1, t2=CANOPY_T2),
        "dirichlet": DirichletDriver(n_models=10,
                                     max_iterations=max_iterations),
        "meanshift": MeanShiftDriver(t1=MEANSHIFT_T1, t2=MEANSHIFT_T2,
                                     max_iterations=max_iterations),
    }


def run(scales: Sequence[int] = CLUSTER_SCALES, n_per_class: int = 100,
        max_iterations: int = 5, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title="Parallel clustering on Synthetic Control data vs cluster "
              "scale (seconds)",
        columns=("nodes", "canopy_s", "dirichlet_s", "meanshift_s"))
    for n_nodes in scales:
        platform = make_platform(seed=seed)
        points, _labels = generate_synthetic_control(
            n_per_class=n_per_class,
            rng=platform.datacenter.rng.fresh("datasets/control"))
        cluster = scaled_cluster(platform, n_nodes)
        stage_points(platform, cluster, "/control/input", points)
        executor = ClusterExecutor(platform.runner(cluster), cluster)
        drivers = _drivers(max_iterations, len(cluster.workers))
        times = {}
        for name, driver in drivers.items():
            outcome = driver.run(executor, "/control/input",
                                 work_prefix=f"/{name}")
            times[name] = outcome.runtime_s
        result.add(n_nodes, times["canopy"], times["dirichlet"],
                   times["meanshift"])
    result.note("running time increases as the virtual cluster scales "
                "(fixed dataset, growing communication)")
    return result
