"""Telemetry experiment: span accounting and critical path of a Wordcount.

Not a figure from the paper — a harness exercising the unified telemetry
subsystem end to end: a Wordcount runs on the paper's 16-node cluster with
nmon sampling on, and the resulting span log is reduced to

* per-category span counts and total busy seconds,
* the job's critical path (work vs wait, coverage of the makespan),
* exported artifacts: a ``chrome://tracing`` JSON timeline and the
  Prometheus-format metrics dump (written via ``--out``).
"""

from __future__ import annotations

import json

from repro.datasets.text import generate_corpus
from repro.experiments.common import (ExperimentResult, make_platform,
                                      sixteen_node_cluster)
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

#: Input volume (unscaled) and the time-compression scale.
VOLUME_BYTES = 64_000_000
SCALE = 100


def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    platform = make_platform(seed=seed)
    cluster = sixteen_node_cluster(platform, "normal", name="tel")
    volume = VOLUME_BYTES // (4 if quick else 1)
    lines = generate_corpus(volume // SCALE,
                            rng=platform.datacenter.rng.stream("corpus"))
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(SCALE), timed=False)

    telemetry = cluster.telemetry
    telemetry.start_monitor(interval=2.0)
    job = wordcount_job("/in", "/out", n_reduces=8, volume_scale=SCALE)
    report = platform.run_job(cluster, job)
    telemetry.stop_monitor()

    result = ExperimentResult(
        experiment_id="telemetry",
        title="span accounting + critical path (Wordcount, 16 nodes)",
        columns=("category", "spans", "busy_s", "on_critical_path"))

    timeline = telemetry.job_timeline(job.name)
    path = timeline.critical_path()
    on_path = {}
    for segment in path.span_segments():
        category = segment.span.kind.split(".")[0]
        on_path[category] = on_path.get(category, 0) + 1
    by_category: dict[str, list] = {}
    for span in telemetry.spans:
        by_category.setdefault(span.kind.split(".")[0], []).append(span)
    for category in sorted(by_category):
        spans = by_category[category]
        result.add(category, len(spans),
                   sum(s.duration for s in spans),
                   on_path.get(category, 0))

    result.note(f"makespan {path.makespan:.2f} s = work {path.work_s:.2f} s "
                f"+ wait {path.wait_s:.2f} s "
                f"(coverage {path.coverage:.0%}); "
                f"job elapsed {report.elapsed:.2f} s")
    result.note(f"bottleneck: {telemetry.bottleneck().busiest_resource}")
    result.artifacts["chrome_trace.json"] = json.dumps(
        telemetry.chrome_trace(), indent=None)
    result.artifacts["metrics.prom"] = telemetry.prometheus_text()
    return result
