"""Fig. 8 — screenshots of clustering results for the six algorithms.

The panels: (a) the raw sample data, then the clusters each algorithm
converges to, with the per-iteration history superimposed.  We render the
same panels as ASCII scatter plots (``ml.display``), which is what a
terminal reproduction of a screenshot can honestly provide.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.sample_data import generate_sample_data
from repro.experiments.common import ExperimentResult
from repro.ml import (CanopyDriver, DirichletDriver, FuzzyKMeansDriver,
                      KMeansDriver, LocalExecutor, MeanShiftDriver,
                      MinHashDriver, points_as_records)
from repro.ml.display import render_history, render_points

PANELS = ("sample-data", "canopy", "dirichlet", "fuzzykmeans", "kmeans",
          "meanshift", "minhash")


def run(seed: int = 42, max_iterations: int = 6) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig8",
        title="Clustering result visualizations (ASCII panels)",
        columns=("panel", "clusters", "iterations", "converged"))
    points, _labels = generate_sample_data(np.random.default_rng(seed))
    records = points_as_records(points)

    result.artifacts["sample-data"] = render_points(points)
    result.add("sample-data", 0, 0, True)

    drivers = {
        "canopy": CanopyDriver(t1=3.0, t2=1.5),
        "dirichlet": DirichletDriver(n_models=8,
                                     max_iterations=max_iterations),
        "fuzzykmeans": FuzzyKMeansDriver(k=3, max_iterations=max_iterations),
        "kmeans": KMeansDriver(k=3, max_iterations=max_iterations),
        "meanshift": MeanShiftDriver(t1=2.0, t2=1.0,
                                     max_iterations=max_iterations),
        "minhash": MinHashDriver(num_hashes=8, key_groups=2, bucket=2.0),
    }
    for name, driver in drivers.items():
        executor = LocalExecutor({"/in": records}, seed=seed)
        outcome = driver.run(executor, "/in")
        result.artifacts[name] = render_history(points, outcome)
        result.add(name, outcome.k, outcome.iterations, outcome.converged)
    result.note("panels in result.artifacts; final clusters drawn bold, "
                "earlier iterations as faint rings")
    return result
