"""Table I — the MapReduce-based parallel benchmark suite.

Table I of the paper is descriptive (names, categories, descriptions); the
reproduction runs each benchmark once on the 16-node normal cluster and
reports that it exercises the layers the table claims (MapReduce, HDFS, or
both).
"""

from __future__ import annotations

from repro import constants as C
from repro.datasets.text import generate_corpus
from repro.experiments.common import (ExperimentResult, make_platform,
                                      sixteen_node_cluster)
from repro.workloads.dfsio import run_dfsio
from repro.workloads.mrbench import run_mrbench
from repro.workloads.terasort import run_terasort
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

DESCRIPTIONS = {
    "Wordcount": ("MapReduce",
                  "Reads text files and counts how often words occur"),
    "MRBench": ("MapReduce",
                "Checks whether small job runs are responsive and running "
                "efficiently on the cluster"),
    "TeraSort": ("MapReduce & HDFS",
                 "Sorts the data as fast as possible, combining testing the "
                 "HDFS and MapReduce layers"),
    "DFSIOTest": ("HDFS", "Is a read and write test for HDFS"),
}


def run(seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="MapReduce-based parallel benchmarks (suite smoke run)",
        columns=("name", "category", "ran_ok", "elapsed_s"))

    platform = make_platform(seed=seed)
    cluster = sixteen_node_cluster(platform, "normal")
    runner = platform.runner(cluster)

    lines = generate_corpus(32 * C.MB // 100,
                            rng=platform.datacenter.rng.fresh("corpus"))
    platform.upload(cluster, "/wc/input", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(100), timed=False)
    wc = runner.run_to_completion(
        wordcount_job("/wc/input", "/wc/output", n_reduces=4,
                      volume_scale=100))
    result.add("Wordcount", DESCRIPTIONS["Wordcount"][0],
               wc.output_bytes > 0, wc.elapsed)

    mr = run_mrbench(runner, cluster, n_maps=2, n_reduces=1)
    result.add("MRBench", DESCRIPTIONS["MRBench"][0],
               mr.output_bytes > 0, mr.elapsed)

    tera = run_terasort(runner, cluster, 50 * C.MB, n_reduces=4)
    result.add("TeraSort", DESCRIPTIONS["TeraSort"][0], tera.validated,
               tera.generation_time_s + tera.sort_time_s)

    io = run_dfsio(cluster, n_files=4, file_bytes=16 * C.MB)
    result.add("DFSIOTest", DESCRIPTIONS["DFSIOTest"][0],
               io.read_throughput_bps > 0 and io.write_throughput_bps > 0,
               io.write_seconds + io.read_seconds)
    return result
