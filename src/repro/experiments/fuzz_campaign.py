"""Fuzz campaign — the adversarial autopilot as a CLI experiment.

Expands a contiguous seed range into scenarios, runs each against the
platform, and judges every run with the
:class:`~repro.fuzz.invariants.InvariantSuite`.  The table lists only
the failing seeds (an empty table is the goal); the notes carry the
aggregate verdict plus two content digests:

``corpus digest``
    Hash of the generated scenarios — pins the generator itself, so a
    generator change that silently re-maps seeds is caught even when
    every run still passes.

``campaign digest``
    Hash over every run's trace-derived ``run_digest`` — pins platform
    *behaviour* across the whole campaign.  CI gates on these digests,
    never on wall time.

``--replay PATH`` runs a single shrunk repro file instead (the format
written by :func:`repro.fuzz.write_repro`), reporting whether the
pinned invariant still fires.

Seeds are independent, so the campaign rides the
:mod:`repro.parallel` fabric: ``--jobs N`` shards the seed range over N
worker processes and the merge is order-independent — both digests are
byte-identical for ``--jobs 1``, ``--jobs 8``, and any interleaving
(the parallel-smoke CI job pins exactly that).  ``--journal PATH``
checkpoints resolved seeds so an interrupted campaign resumes instead
of restarting.
"""

from __future__ import annotations

import hashlib
import sys
import time
from typing import Optional

from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult
from repro.fuzz import (corpus_digest, generate_scenario, load_repro,
                        replay_repro, run_scenario, summarize)
from repro.parallel import run_sharded

#: Default seed window for ``vhadoop fuzz`` / ``vhadoop all``.
DEFAULT_SEEDS = (0, 50)
QUICK_SEEDS = (0, 10)


def parse_seed_range(text: str) -> tuple[int, int]:
    """``"A:B"`` → ``(A, B)``, the half-open seed window."""
    try:
        lo_s, hi_s = text.split(":", 1)
        lo, hi = int(lo_s), int(hi_s)
    except ValueError:
        raise ConfigError(
            f"--seed-range wants 'LO:HI' (half-open), got {text!r}") from None
    if lo < 0 or hi <= lo:
        raise ConfigError(f"seed range {text!r} is empty or negative")
    return lo, hi


def _run_seed(seed: int) -> dict:
    """Fabric worker: one seed end to end, summarized as plain JSON.

    Must stay module-level (it crosses a process boundary by reference)
    and must return only what the merged report needs — the digest, the
    verdict, and the table row — not the full run context.
    """
    scenario = generate_scenario(seed)
    run_result = run_scenario(scenario)
    return {
        "run_digest": run_result.run_digest,
        "ok": run_result.ok,
        "invariants": sorted({v.invariant
                              for v in run_result.violations}),
        "jobs": len(scenario.jobs),
        "faults": len(scenario.faults),
        "advs": len(scenario.adversaries),
    }


def run(seeds: tuple[int, int] = DEFAULT_SEEDS, jobs: int = 1,
        journal: Optional[str] = None, console: Optional[str] = None,
        console_html: Optional[str] = None,
        live: bool = False) -> ExperimentResult:
    """Run the campaign over ``[lo, hi)`` and tabulate any violations.

    ``jobs`` shards the seeds over that many worker processes; the
    digests are byte-identical to the serial path regardless.

    ``console`` names a sidecar JSONL stream: workers and the parent
    append progress/RSS records to it, and after the run a control-room
    HTML report lands at ``console_html`` (default: the stream path with
    ``.html`` appended).  ``live`` additionally renders a ``\\r`` status
    line to stderr while the campaign runs.  The control-room digest in
    the notes hashes only sim-time content, so it is byte-identical
    across processes and ``--jobs`` levels even though the stream itself
    is wall-clock data.
    """
    lo, hi = seeds
    result = ExperimentResult(
        experiment_id="fuzz",
        title=f"Fuzz campaign: seeds {lo}..{hi} vs the invariant suite",
        columns=("seed", "jobs", "faults", "advs", "violations"))
    scenarios = [generate_scenario(seed) for seed in range(lo, hi)]

    tailer = None
    on_poll = None
    if console is not None:
        from repro.parallel import ConsoleTailer
        tailer = ConsoleTailer(console)
        last_render = [0.0]

        def on_poll() -> None:
            now = time.monotonic()
            if now - last_render[0] < 0.5:
                return
            last_render[0] = now
            tailer.poll()
            if live:
                print("\r" + tailer.status_line(), end="",
                      file=sys.stderr, flush=True)

    sharded = run_sharded(list(range(lo, hi)), _run_seed, jobs=jobs,
                          journal=journal, console=console,
                          on_poll=on_poll)
    # The campaign digest folds run digests in ascending-seed order —
    # the fabric returns results in input order, so this line is
    # byte-identical to the pre-fabric serial loop.
    campaign = hashlib.sha256()
    failing = 0
    fabric_failures = 0
    for seed, item in zip(range(lo, hi), sharded.results):
        if not item.ok:  # worker death/timeout — environmental, recorded
            fabric_failures += 1
            campaign.update(f"{seed}:fabric-error\n".encode())
            result.add(seed, "-", "-", "-", f"fabric: {item.error}")
            continue
        payload = item.value
        campaign.update(f"{seed}:{payload['run_digest']}\n".encode())
        if not payload["ok"]:
            failing += 1
            result.add(seed, payload["jobs"], payload["faults"],
                       payload["advs"], "; ".join(payload["invariants"]))
    result.note(f"{hi - lo} scenarios, {failing} with violations"
                + ("" if failing or fabric_failures
                   else " — all invariants held"))
    if fabric_failures:
        result.note(f"{fabric_failures} seeds lost to worker failures "
                    "(digest poisoned with fabric-error markers)")
    if jobs > 1:
        result.note(f"sharded over {jobs} worker processes")
    if sharded.n_resumed:
        result.note(f"{sharded.n_resumed} seeds resumed from journal")
    result.note(f"corpus digest: {corpus_digest(scenarios)}")
    result.note(f"campaign digest: {campaign.hexdigest()[:16]}")

    if console is not None:
        from repro.experiments.service import burn_timelines
        from repro.parallel import control_room_digest, write_control_room
        tailer.poll()
        if live:
            print("\r" + tailer.status_line(), file=sys.stderr, flush=True)
        burn_series, burn_digests = burn_timelines()
        digest = control_room_digest(sharded.digest(),
                                     campaign.hexdigest()[:16],
                                     burn_digests)
        html_path = console_html or console + ".html"
        write_control_room(
            html_path, tailer,
            title=f"fuzz seeds {lo}:{hi} x{jobs} jobs",
            digest=digest,
            notes=[f"campaign digest {campaign.hexdigest()[:16]}",
                   f"corpus digest {corpus_digest(scenarios)}",
                   f"{failing} failing seeds, {fabric_failures} "
                   f"fabric failures",
                   "burn-rate timelines from the quick burst-burn "
                   "service universe (sim-time, deterministic)"],
            series=burn_series)
        if sharded.workers:
            result.note(
                f"fleet peak rss {sharded.peak_rss_mb:.0f} MB over "
                f"{len(sharded.workers)} workers "
                f"({sum(w.items_completed for w in sharded.workers)} "
                f"items)")
        result.note(f"control room: {html_path}")
        result.note(f"control room digest: {digest}")
    return result


def replay(path: str) -> ExperimentResult:
    """Replay one shrunk repro file and report on its pinned invariant."""
    scenario, pinned = load_repro(path)
    run_result = replay_repro(path)
    result = ExperimentResult(
        experiment_id="fuzz",
        title=f"Repro replay: {path}",
        columns=("digest", "jobs", "faults", "pinned invariant", "verdict"))
    violated = {v.invariant for v in run_result.violations}
    verdict = ("STILL FAILING" if pinned.invariant in violated
               else "fixed (pinned invariant holds)")
    result.add(scenario.digest(), len(scenario.jobs), len(scenario.faults),
               pinned.invariant, verdict)
    result.note(f"run: {summarize(run_result.violations)}")
    result.note(f"run digest: {run_result.run_digest}")
    return result
