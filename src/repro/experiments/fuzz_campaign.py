"""Fuzz campaign — the adversarial autopilot as a CLI experiment.

Expands a contiguous seed range into scenarios, runs each against the
platform, and judges every run with the
:class:`~repro.fuzz.invariants.InvariantSuite`.  The table lists only
the failing seeds (an empty table is the goal); the notes carry the
aggregate verdict plus two content digests:

``corpus digest``
    Hash of the generated scenarios — pins the generator itself, so a
    generator change that silently re-maps seeds is caught even when
    every run still passes.

``campaign digest``
    Hash over every run's trace-derived ``run_digest`` — pins platform
    *behaviour* across the whole campaign.  CI gates on these digests,
    never on wall time.

``--replay PATH`` runs a single shrunk repro file instead (the format
written by :func:`repro.fuzz.write_repro`), reporting whether the
pinned invariant still fires.

Seeds are independent, so the campaign rides the
:mod:`repro.parallel` fabric: ``--jobs N`` shards the seed range over N
worker processes and the merge is order-independent — both digests are
byte-identical for ``--jobs 1``, ``--jobs 8``, and any interleaving
(the parallel-smoke CI job pins exactly that).  ``--journal PATH``
checkpoints resolved seeds so an interrupted campaign resumes instead
of restarting.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult
from repro.fuzz import (corpus_digest, generate_scenario, load_repro,
                        replay_repro, run_scenario, summarize)
from repro.parallel import run_sharded

#: Default seed window for ``vhadoop fuzz`` / ``vhadoop all``.
DEFAULT_SEEDS = (0, 50)
QUICK_SEEDS = (0, 10)


def parse_seed_range(text: str) -> tuple[int, int]:
    """``"A:B"`` → ``(A, B)``, the half-open seed window."""
    try:
        lo_s, hi_s = text.split(":", 1)
        lo, hi = int(lo_s), int(hi_s)
    except ValueError:
        raise ConfigError(
            f"--seed-range wants 'LO:HI' (half-open), got {text!r}") from None
    if lo < 0 or hi <= lo:
        raise ConfigError(f"seed range {text!r} is empty or negative")
    return lo, hi


def _run_seed(seed: int) -> dict:
    """Fabric worker: one seed end to end, summarized as plain JSON.

    Must stay module-level (it crosses a process boundary by reference)
    and must return only what the merged report needs — the digest, the
    verdict, and the table row — not the full run context.
    """
    scenario = generate_scenario(seed)
    run_result = run_scenario(scenario)
    return {
        "run_digest": run_result.run_digest,
        "ok": run_result.ok,
        "invariants": sorted({v.invariant
                              for v in run_result.violations}),
        "jobs": len(scenario.jobs),
        "faults": len(scenario.faults),
        "advs": len(scenario.adversaries),
    }


def run(seeds: tuple[int, int] = DEFAULT_SEEDS, jobs: int = 1,
        journal: Optional[str] = None) -> ExperimentResult:
    """Run the campaign over ``[lo, hi)`` and tabulate any violations.

    ``jobs`` shards the seeds over that many worker processes; the
    digests are byte-identical to the serial path regardless.
    """
    lo, hi = seeds
    result = ExperimentResult(
        experiment_id="fuzz",
        title=f"Fuzz campaign: seeds {lo}..{hi} vs the invariant suite",
        columns=("seed", "jobs", "faults", "advs", "violations"))
    scenarios = [generate_scenario(seed) for seed in range(lo, hi)]
    sharded = run_sharded(list(range(lo, hi)), _run_seed, jobs=jobs,
                          journal=journal)
    # The campaign digest folds run digests in ascending-seed order —
    # the fabric returns results in input order, so this line is
    # byte-identical to the pre-fabric serial loop.
    campaign = hashlib.sha256()
    failing = 0
    fabric_failures = 0
    for seed, item in zip(range(lo, hi), sharded.results):
        if not item.ok:  # worker death/timeout — environmental, recorded
            fabric_failures += 1
            campaign.update(f"{seed}:fabric-error\n".encode())
            result.add(seed, "-", "-", "-", f"fabric: {item.error}")
            continue
        payload = item.value
        campaign.update(f"{seed}:{payload['run_digest']}\n".encode())
        if not payload["ok"]:
            failing += 1
            result.add(seed, payload["jobs"], payload["faults"],
                       payload["advs"], "; ".join(payload["invariants"]))
    result.note(f"{hi - lo} scenarios, {failing} with violations"
                + ("" if failing or fabric_failures
                   else " — all invariants held"))
    if fabric_failures:
        result.note(f"{fabric_failures} seeds lost to worker failures "
                    "(digest poisoned with fabric-error markers)")
    if jobs > 1:
        result.note(f"sharded over {jobs} worker processes")
    if sharded.n_resumed:
        result.note(f"{sharded.n_resumed} seeds resumed from journal")
    result.note(f"corpus digest: {corpus_digest(scenarios)}")
    result.note(f"campaign digest: {campaign.hexdigest()[:16]}")
    return result


def replay(path: str) -> ExperimentResult:
    """Replay one shrunk repro file and report on its pinned invariant."""
    scenario, pinned = load_repro(path)
    run_result = replay_repro(path)
    result = ExperimentResult(
        experiment_id="fuzz",
        title=f"Repro replay: {path}",
        columns=("digest", "jobs", "faults", "pinned invariant", "verdict"))
    violated = {v.invariant for v in run_result.violations}
    verdict = ("STILL FAILING" if pinned.invariant in violated
               else "fixed (pinned invariant holds)")
    result.add(scenario.digest(), len(scenario.jobs), len(scenario.faults),
               pinned.invariant, verdict)
    result.note(f"run: {summarize(run_result.violations)}")
    result.note(f"run digest: {run_result.run_digest}")
    return result
