"""Fuzz campaign — the adversarial autopilot as a CLI experiment.

Expands a contiguous seed range into scenarios, runs each against the
platform, and judges every run with the
:class:`~repro.fuzz.invariants.InvariantSuite`.  The table lists only
the failing seeds (an empty table is the goal); the notes carry the
aggregate verdict plus two content digests:

``corpus digest``
    Hash of the generated scenarios — pins the generator itself, so a
    generator change that silently re-maps seeds is caught even when
    every run still passes.

``campaign digest``
    Hash over every run's trace-derived ``run_digest`` — pins platform
    *behaviour* across the whole campaign.  CI gates on these digests,
    never on wall time.

``--replay PATH`` runs a single shrunk repro file instead (the format
written by :func:`repro.fuzz.write_repro`), reporting whether the
pinned invariant still fires.
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult
from repro.fuzz import (corpus_digest, generate_scenario, load_repro,
                        replay_repro, run_scenario, summarize)

#: Default seed window for ``vhadoop fuzz`` / ``vhadoop all``.
DEFAULT_SEEDS = (0, 50)
QUICK_SEEDS = (0, 10)


def parse_seed_range(text: str) -> tuple[int, int]:
    """``"A:B"`` → ``(A, B)``, the half-open seed window."""
    try:
        lo_s, hi_s = text.split(":", 1)
        lo, hi = int(lo_s), int(hi_s)
    except ValueError:
        raise ConfigError(
            f"--seed-range wants 'LO:HI' (half-open), got {text!r}") from None
    if lo < 0 or hi <= lo:
        raise ConfigError(f"seed range {text!r} is empty or negative")
    return lo, hi


def run(seeds: tuple[int, int] = DEFAULT_SEEDS) -> ExperimentResult:
    """Run the campaign over ``[lo, hi)`` and tabulate any violations."""
    lo, hi = seeds
    result = ExperimentResult(
        experiment_id="fuzz",
        title=f"Fuzz campaign: seeds {lo}..{hi} vs the invariant suite",
        columns=("seed", "jobs", "faults", "advs", "violations"))
    scenarios = [generate_scenario(seed) for seed in range(lo, hi)]
    campaign = hashlib.sha256()
    failing = 0
    for seed, scenario in zip(range(lo, hi), scenarios):
        run_result = run_scenario(scenario)
        campaign.update(f"{seed}:{run_result.run_digest}\n".encode())
        if not run_result.ok:
            failing += 1
            result.add(seed, len(scenario.jobs), len(scenario.faults),
                       len(scenario.adversaries),
                       "; ".join(sorted({v.invariant
                                         for v in run_result.violations})))
    result.note(f"{hi - lo} scenarios, {failing} with violations"
                + ("" if failing else " — all invariants held"))
    result.note(f"corpus digest: {corpus_digest(scenarios)}")
    result.note(f"campaign digest: {campaign.hexdigest()[:16]}")
    return result


def replay(path: str) -> ExperimentResult:
    """Replay one shrunk repro file and report on its pinned invariant."""
    scenario, pinned = load_repro(path)
    run_result = replay_repro(path)
    result = ExperimentResult(
        experiment_id="fuzz",
        title=f"Repro replay: {path}",
        columns=("digest", "jobs", "faults", "pinned invariant", "verdict"))
    violated = {v.invariant for v in run_result.violations}
    verdict = ("STILL FAILING" if pinned.invariant in violated
               else "fixed (pinned invariant holds)")
    result.add(scenario.digest(), len(scenario.jobs), len(scenario.faults),
               pinned.invariant, verdict)
    result.note(f"run: {summarize(run_result.violations)}")
    result.note(f"run digest: {run_result.run_digest}")
    return result
